"""Software-only versus hybrid fault tolerance: the TOCTOU window, live.

Section 2.2 of the paper argues that no software-only scheme can fully
protect stores: a fault between the software's compare and the
conventional store slips through.  This demo compiles one program three
ways -- unprotected, SWIFT-style software-only, and TAL-FT hybrid -- and

1. shows all three produce identical fault-free output,
2. runs the same sampled fault campaign against the two protected builds:
   the software-only build leaks silent corruptions, the hybrid build
   does not, and
3. shows only the hybrid build carries a proof (type-checks).

Run:  python examples/swift_vs_hybrid.py
"""

from repro.compiler import compile_source
from repro.compiler.swift import ERROR_PORT
from repro.core import run_to_completion
from repro.injection import CampaignConfig, run_campaign
from repro.simulator import simulate
from repro.types import TypeCheckError

SOURCE = """
// Prefix sums with a data-dependent twist.
array data[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
array out[16];
var acc = 0;
var i = 0;
while (i < 16) {
    if (data[i] > 4) { acc = acc + data[i] * 2; }
    else { acc = acc + data[i]; }
    out[i] = acc;
    i = i + 1;
}
"""


def main() -> None:
    baseline = compile_source(SOURCE, mode="baseline")
    hybrid = compile_source(SOURCE, mode="ft")
    software = compile_source(SOURCE, mode="swift")

    runs = {name: run_to_completion(build.program.boot())
            for name, build in [("baseline", baseline), ("hybrid", hybrid),
                                ("software", software)]}
    assert runs["baseline"].outputs == runs["hybrid"].outputs \
        == runs["software"].outputs
    print("all three builds agree fault-free "
          f"({len(runs['baseline'].outputs)} observable writes)")

    base_cycles = simulate(baseline).cycles
    print(f"cost:    hybrid {simulate(hybrid).cycles / base_cycles:.2f}x   "
          f"software-only {simulate(software).cycles / base_cycles:.2f}x")
    print()

    config = CampaignConfig(max_injection_steps=60, max_values_per_site=3,
                            max_sites_per_step=12, seed=13)
    hybrid_report = run_campaign(hybrid.program, config)
    swift_config = CampaignConfig(
        **{**config.__dict__, "error_port": ERROR_PORT})
    software_report = run_campaign(software.program, swift_config)
    print(f"hybrid campaign       : {hybrid_report.summary()}")
    print(f"software-only campaign: {software_report.summary()}")
    assert hybrid_report.silent == 0
    if software_report.silent:
        record = software_report.violations[0]
        print(f"  e.g. {record.fault.describe()} at step {record.step} "
              "slipped through the check-to-store window")
    print()

    hybrid.program.check()
    print("hybrid build type-checks: fault tolerance is *proved*")
    try:
        software.program.check()
    except TypeCheckError as error:
        print(f"software-only build rejected: {str(error)[:70]}...")
        print("  (plain-ISA code carries no reliability proof at all)")


if __name__ == "__main__":
    main()
