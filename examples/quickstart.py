"""Quickstart: assemble, type-check, run, and fault a TAL_FT program.

This walks the paper's Section 2.2 store example end to end:

1. assemble textual TAL_FT (with a typed block precondition),
2. type-check it (``Psi |- C``),
3. run it fault-free and observe the memory-mapped output,
4. inject a single-event upset and watch the hardware detect it.

Run:  python examples/quickstart.py
"""

from repro.asm import format_program, parse_program
from repro.core import Machine, RegZap

SOURCE = """
; The Section 2.2 example: store 5 to address 256, redundantly.
.gprs 8
.data
  word 256 = 0

.code
main:
  .pre [m: mem] { rest: zero } mem m
  mov r1, G 5        ; green copy of the value
  mov r2, G 256      ; green copy of the address
  stG r2, r1         ; announce the store (enters the store queue)
  mov r3, B 5        ; blue copy of the value
  mov r4, B 256      ; blue copy of the address
  stB r4, r3         ; check against the queue, then commit
  halt
"""


def main() -> None:
    program = parse_program(SOURCE)
    print("assembled program:")
    print(format_program(program))
    print()

    program.check()
    print("type check: OK (the program is provably fault tolerant)")
    print()

    trace = Machine(program.boot()).run()
    print(f"fault-free run: {trace.outcome.value}, "
          f"observable output = {trace.outputs}")

    # Now flip register r1 (the green copy of the value) right after the
    # first instruction executed -- a transient particle strike.
    machine = Machine(program.boot())
    faulty = machine.run(fault=RegZap("r1", 1_000_000), fault_at_step=2)
    print(f"faulty run:     {faulty.outcome.value}, "
          f"observable output = {faulty.outputs}")
    assert faulty.detected and faulty.outputs == []
    print()
    print("the corrupted value never reached memory: the blue store's")
    print("comparison against the store queue caught the mismatch.")


if __name__ == "__main__":
    main()
