"""A single-event-upset campaign over a compiled benchmark kernel.

Compiles the ``jpeg`` stand-in kernel (8-point integer DCT) with the
reliability transformation, then sweeps faults over its execution:
at sampled dynamic steps, every register and store-queue slot is struck
with representative corrupt values, and each faulty run is classified
against the fault-free reference output:

* masked    -- output identical (the corrupt value was dead or checked),
* detected  -- the hardware signalled ``fault`` before any deviation,
* silent    -- output deviated without detection (never happens for
               well-typed code: Theorem 4).

Run:  python examples/fault_campaign.py
"""

import collections

from repro.injection import CampaignConfig, FaultResult, run_campaign
from repro.workloads import compile_kernel, KERNELS

KERNEL = "jpeg"


def main() -> None:
    kernel = KERNELS[KERNEL]
    compiled = compile_kernel(KERNEL, "ft")
    compiled.program.check()
    print(f"kernel: {KERNEL} -- {kernel.description}")
    print(f"        {compiled.program.size} instructions, type-checked")
    print()

    config = CampaignConfig(
        max_injection_steps=60,
        max_values_per_site=3,
        max_sites_per_step=10,
        seed=42,
        keep_records=True,
    )
    report = run_campaign(compiled.program, config)
    print(f"reference run: {report.reference.steps} steps, "
          f"{len(report.reference.outputs)} observable writes")
    print(f"campaign: {report.summary()}")
    print()

    by_kind = collections.Counter()
    for record in report.records:
        kind = type(record.fault).__name__
        if record.result is FaultResult.DETECTED:
            by_kind[kind] += 1
    print("detections by fault kind:")
    for kind, count in sorted(by_kind.items()):
        print(f"  {kind:18s} {count}")
    print()
    assert report.coverage == 1.0
    print("coverage is 100%: every upset was masked or detected, exactly")
    print("as the Fault Tolerance theorem guarantees for well-typed code.")


if __name__ == "__main__":
    main()
