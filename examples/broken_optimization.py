"""The Section 2.2 story: why type-checking beats testing.

Common-subexpression elimination across the green/blue boundary looks
harmless -- the optimized program computes the same values with fewer
instructions, and *no amount of fault-free testing can tell the builds
apart*.  But it silently destroys fault tolerance: with both stores
reading the same registers, a single particle strike corrupts both copies
at once and the hardware check passes on corrupt data.

This example shows all three acts:

1. the broken build runs perfectly fault-free (testing is happy);
2. the TAL_FT type checker rejects it immediately, with a pinpointed
   error (the compiler-debugging story of Section 1);
3. fault injection confirms the latent bug: silent output corruption.

Run:  python examples/broken_optimization.py
"""

from repro.compiler import compile_source
from repro.core import run_to_completion
from repro.injection import CampaignConfig, run_campaign
from repro.types import TypeCheckError

SOURCE = """
array out[4];
var i = 0;
while (i < 3) { out[i] = i * 10 + 7; i = i + 1; }
"""


def main() -> None:
    good = compile_source(SOURCE, mode="ft")
    broken = compile_source(SOURCE, mode="ft", cross_color_cse=True)

    print(f"correct build: {good.program.size} instructions")
    print(f"broken build : {broken.program.size} instructions "
          "(cross-color CSE merged the blue copies)")
    print()

    # Act 1: testing cannot tell them apart.
    good_trace = run_to_completion(good.program.boot())
    broken_trace = run_to_completion(broken.program.boot())
    assert good_trace.outputs == broken_trace.outputs
    print(f"fault-free outputs agree: {good_trace.outputs}")
    print("  -> conventional testing finds nothing wrong.")
    print()

    # Act 2: the type checker rejects the broken build statically.
    good.program.check()
    print("correct build type-checks.")
    try:
        broken.program.check()
        raise SystemExit("BUG: the broken build type-checked!")
    except TypeCheckError as error:
        print(f"broken build REJECTED by the checker:\n    {error}")
    print()

    # Act 3: fault injection demonstrates the latent vulnerability.
    config = CampaignConfig(max_injection_steps=40, max_values_per_site=3,
                            max_sites_per_step=10, seed=7)
    good_report = run_campaign(good.program, config)
    broken_report = run_campaign(broken.program, config)
    print(f"correct build campaign: {good_report.summary()}")
    print(f"broken build campaign : {broken_report.summary()}")
    assert good_report.silent == 0
    assert broken_report.silent > 0
    record = broken_report.violations[0] if broken_report.violations else None
    if record is not None:
        print(f"  e.g. {record.fault.describe()} at step {record.step} "
              f"silently produced {list(record.outputs)}")


if __name__ == "__main__":
    main()
