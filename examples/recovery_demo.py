"""Detection + recovery = masking.

The paper provides provable *detection* and leaves recovery "orthogonal".
This demo composes the two: a kernel runs under the checkpoint/rollback/
replay executor (`repro.recovery`), a particle strike is injected, the
hardware detects it, the executor rolls back past the corruption and
replays -- and the observable output ends up *exactly* the fault-free
sequence, at a measured replay cost.

Run:  python examples/recovery_demo.py
"""

from repro.core import Outcome, RegZap, run_to_completion
from repro.recovery import RecoveringMachine
from repro.workloads import compile_kernel

KERNEL = "adpcm"


def main() -> None:
    compiled = compile_kernel(KERNEL, "ft")
    compiled.program.check()
    reference = run_to_completion(compiled.program.boot(), max_steps=2_000_000)
    print(f"kernel: {KERNEL} (type-checked TAL-FT build)")
    print(f"fault-free: {reference.steps} steps, "
          f"{len(reference.outputs)} observable writes")
    print()

    # Find a strike that the hardware actually detects (many upsets hit
    # dead values and are simply masked).
    from repro.core import Machine

    fault = None
    at_step = reference.steps // 2
    for register in [f"r{i}" for i in range(1, compiled.program.num_gprs)]:
        candidate = RegZap(register, 123456789)
        probe = Machine(compiled.program.boot()).run(
            max_steps=2_000_000, fault=candidate, fault_at_step=at_step
        )
        if probe.outcome is Outcome.FAULT_DETECTED:
            fault = candidate
            plain = probe
            break
    assert fault is not None, "no detectable strike found"
    print(f"injecting {fault.describe()} at step {at_step} ...")
    print(f"without recovery: {plain.outcome.value} after {plain.steps} "
          f"steps, {len(plain.outputs)} writes committed (a clean prefix)")

    # With recovery: rollback + replay completes the exact behavior.
    machine = RecoveringMachine(compiled.program, checkpoint_interval=128)
    trace = machine.run(max_steps=4_000_000, fault=fault,
                        fault_at_step=at_step)
    assert trace.outcome is Outcome.HALTED
    assert trace.outputs == reference.outputs
    print(f"with recovery   : {trace.outcome.value}; output identical to "
          "the fault-free run")
    print(f"                  {trace.recoveries} rollback(s), "
          f"{trace.replayed_steps} steps replayed "
          f"({100 * trace.replayed_steps / reference.steps:.1f}% overhead), "
          f"{trace.checkpoints} checkpoints")


if __name__ == "__main__":
    main()
