"""Compile an MWL program with and without fault tolerance.

Demonstrates the compiler pipeline on a realistic kernel (a histogram):

* the *baseline* backend emits ordinary unprotected code;
* the *fault-tolerant* backend applies the paper's reliability
  transformation (green/blue duplication + checked stores and jumps), and
  its output **type-checks**;
* both produce identical observable output;
* the timing model reports the Figure 10-style overhead.

Run:  python examples/compile_and_run.py
"""

from repro.compiler import compile_source
from repro.core import run_to_completion
from repro.simulator import DEFAULT_CONFIG, RELAXED_CONFIG, simulate

SOURCE = """
// Histogram of 64 pseudo-random values into 8 buckets.
array hist[8];
array out[8];
var seed = 12345;
var i = 0;
while (i < 64) {
    seed = ((seed * 1103 + 12345) >> 2) & 32767;
    var bucket = seed & 7;
    hist[bucket] = hist[bucket] + 1;
    i = i + 1;
}
var b = 0;
while (b < 8) { out[b] = hist[b]; b = b + 1; }
"""


def main() -> None:
    baseline = compile_source(SOURCE, mode="baseline")
    protected = compile_source(SOURCE, mode="ft")

    print(f"baseline: {baseline.program.size} instructions")
    print(f"TAL-FT  : {protected.program.size} instructions "
          f"({protected.program.size / baseline.program.size:.2f}x)")

    protected.program.check()
    print("TAL-FT build type-checks: provably fault tolerant")
    print()

    base_trace = run_to_completion(baseline.program.boot())
    ft_trace = run_to_completion(protected.program.boot())
    assert base_trace.outputs == ft_trace.outputs
    layout = protected.lowered.layout
    final = {}
    for address, value in ft_trace.outputs:
        final[layout.describe(address)] = value
    histogram = [final.get(("out", i), 0) for i in range(8)]
    print(f"histogram (both builds agree): {histogram}")
    print()

    base_cycles = simulate(baseline).cycles
    ft_cycles = simulate(protected, DEFAULT_CONFIG).cycles
    relaxed_cycles = simulate(protected, RELAXED_CONFIG).cycles
    print("timing on the 6-wide in-order model:")
    print(f"  baseline              {base_cycles:6d} cycles")
    print(f"  TAL-FT                {ft_cycles:6d} cycles "
          f"({ft_cycles / base_cycles:.2f}x)")
    print(f"  TAL-FT w/o ordering   {relaxed_cycles:6d} cycles "
          f"({relaxed_cycles / base_cycles:.2f}x)")
    print()
    print("paper (Figure 10): 1.34x with ordering, 1.30x without.")


if __name__ == "__main__":
    main()
