"""Textual assembler for TAL_FT programs."""

from repro.asm.lexer import Token, TokenStream, tokenize
from repro.asm.emitter import emit_tal, render_expr
from repro.asm.parser import assemble_file, parse_program
from repro.asm.printer import format_context, format_program

__all__ = [
    "Token",
    "TokenStream",
    "assemble_file",
    "emit_tal",
    "format_context",
    "format_program",
    "parse_program",
    "render_expr",
    "tokenize",
]
