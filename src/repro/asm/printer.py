"""Pretty-printer: :class:`~repro.program.Program` back to textual assembly.

The printer emits instruction listings with addresses and label comments --
primarily a debugging and documentation aid (the compiler uses it to dump
generated code).  Printing preconditions in full re-parsable form is
supported for solved-form contexts.
"""

from __future__ import annotations

from typing import List

from repro.core.instructions import Instruction
from repro.program import Program
from repro.statics.expressions import Expr
from repro.types.syntax import (
    CodeType,
    CondType,
    IntType,
    RefType,
    RegType,
    StaticContext,
)


def format_basic(basic, labels_by_address=None) -> str:
    if isinstance(basic, IntType):
        return "int"
    if isinstance(basic, RefType):
        return f"{format_basic(basic.pointee, labels_by_address)} ref"
    if isinstance(basic, CodeType):
        return "code"
    return str(basic)


def format_context(context: StaticContext) -> List[str]:
    """A human-readable rendering of a static context."""
    lines = [f".pre [{context.delta}]"]
    for name, assign in sorted(context.gamma.items()):
        if isinstance(assign, RegType):
            lines.append(
                f"  {name}: ({assign.color}, {format_basic(assign.basic)}, "
                f"{assign.expr})"
            )
        elif isinstance(assign, CondType):
            lines.append(
                f"  {name}: {assign.guard} = 0 => ({assign.inner.color}, "
                f"{format_basic(assign.inner.basic)}, {assign.inner.expr})"
            )
    queue = ", ".join(f"({ed}, {es})" for ed, es in context.queue)
    lines.append(f"  queue [{queue}] mem {context.mem}")
    return lines


def format_program(program: Program, preconditions: bool = False) -> str:
    """An address-annotated listing of ``program``."""
    labels_by_address = {
        address: name for name, address in program.labels_by_name.items()
    }
    lines: List[str] = [f".gprs {program.num_gprs}"]
    if program.initial_memory:
        lines.append(".data")
        for address in sorted(program.initial_memory):
            pointee = program.data_psi.get(address)
            type_note = (
                f" : {format_basic(pointee.pointee)}"
                if isinstance(pointee, RefType) else ""
            )
            lines.append(
                f"  word {address} = {program.initial_memory[address]}"
                f"{type_note}"
            )
    lines.append(".code")
    for address in sorted(program.code):
        if address in program.label_types:
            label = labels_by_address.get(address, f"L{address}")
            lines.append(f"{label}:")
            if preconditions:
                lines.extend(
                    "  ; " + text
                    for text in format_context(
                        program.label_types[address].context
                    )
                )
        lines.append(f"  {address:4d}: {program.code[address]}")
    return "\n".join(lines)


def format_instruction(address: int, instruction: Instruction) -> str:
    return f"{address:4d}: {instruction}"
