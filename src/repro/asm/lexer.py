"""Tokenizer for textual TAL_FT assembly.

Comments run from ``;`` to end of line.  Newlines are significant (they
terminate instructions and directives) and are emitted as NEWLINE tokens;
consecutive newlines collapse.  Inside bracketed groups the parser simply
skips NEWLINE tokens, so preconditions may span lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.core.errors import AsmError

#: Multi-character punctuation, longest first.
_MULTI = ("=>", "..")
_SINGLE = "()[]{},:;=@*+-/<>"


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT | INT | PUNCT | NEWLINE | EOF
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`AsmError` on bad characters."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)
    pending_newline = False

    def emit(kind: str, text: str, at_line: int, at_column: int) -> None:
        nonlocal pending_newline
        if kind != "NEWLINE" and pending_newline:
            if tokens:  # no leading NEWLINE
                tokens.append(Token("NEWLINE", "\n", at_line, 0))
            pending_newline = False
        tokens.append(Token(kind, text, at_line, at_column))

    while index < length:
        char = source[index]
        if char == "\n":
            pending_newline = True
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == ";":
            while index < length and source[index] != "\n":
                index += 1
            continue
        start_line, start_column = line, column
        two = source[index : index + 2]
        if two in _MULTI:
            emit("PUNCT", two, start_line, start_column)
            index += 2
            column += 2
            continue
        if char.isdigit() or (
            char == "-" and index + 1 < length and source[index + 1].isdigit()
        ):
            end = index + 1
            while end < length and source[end].isdigit():
                end += 1
            emit("INT", source[index:end], start_line, start_column)
            column += end - index
            index = end
            continue
        if char.isalpha() or char == "_" or char == ".":
            end = index + 1
            while end < length and (source[end].isalnum() or source[end] in "_."):
                end += 1
            emit("IDENT", source[index:end], start_line, start_column)
            column += end - index
            index = end
            continue
        if char in _SINGLE:
            emit("PUNCT", char, start_line, start_column)
            index += 1
            column += 1
            continue
        raise AsmError(f"unexpected character {char!r}", line, column)

    tokens.append(Token("EOF", "", line, column))
    return tokens


class TokenStream:
    """A cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    def peek(self, skip_newlines: bool = False) -> Token:
        index = self._index
        if skip_newlines:
            while self._tokens[index].kind == "NEWLINE":
                index += 1
        return self._tokens[index]

    def next(self, skip_newlines: bool = False) -> Token:
        if skip_newlines:
            while self._tokens[self._index].kind == "NEWLINE":
                self._index += 1
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def expect(self, kind: str, text: str = None,
               skip_newlines: bool = False) -> Token:
        token = self.next(skip_newlines=skip_newlines)
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise AsmError(
                f"expected {wanted!r}, found {token.text!r}",
                token.line, token.column,
            )
        return token

    def match(self, kind: str, text: str = None,
              skip_newlines: bool = False) -> bool:
        token = self.peek(skip_newlines=skip_newlines)
        if token.kind == kind and (text is None or token.text == text):
            self.next(skip_newlines=skip_newlines)
            return True
        return False

    def at_end(self) -> bool:
        return self.peek(skip_newlines=True).kind == "EOF"

    def skip_newlines(self) -> None:
        while self._tokens[self._index].kind == "NEWLINE":
            self._index += 1
