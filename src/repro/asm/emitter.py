"""Serializer: :class:`~repro.program.Program` to re-parseable ``.tal``.

The inverse of :func:`repro.asm.parser.parse_program`: emits directives,
data segment, labeled blocks with full ``.pre`` preconditions, and jump
hints, such that parsing the output yields an equivalent program (same
code, same types up to expression normalization, same boot state).  The
round trip is exercised by the test-suite on compiled kernels.

Main use: ``talft compile prog.mwl --emit-tal out.tal`` -- persist the
reliability transformation's output (with its typing interface) as a
standalone checkable artifact.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.colors import Color
from repro.core.errors import ReproError
from repro.core.instructions import (
    ArithRRI,
    ArithRRR,
    Bz,
    Halt,
    Instruction,
    Jmp,
    Load,
    Mov,
    PlainBz,
    PlainJmp,
    PlainLoad,
    PlainStore,
    Store,
)
from repro.core.registers import DEST, PC_B, PC_G, gpr, gpr_index
from repro.program import Program
from repro.statics.expressions import (
    BinExpr,
    EmptyMem,
    Expr,
    IntConst,
    Sel,
    Upd,
    Var,
)
from repro.statics.kinds import KIND_INT, KIND_MEM
from repro.types.syntax import (
    CodeType,
    CondType,
    IntType,
    RefType,
    RegType,
    StaticContext,
    context_equal,
)


def render_expr(expr: Expr) -> str:
    """A parser-compatible rendering of a static expression."""
    if isinstance(expr, IntConst):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, EmptyMem):
        return "emp"
    if isinstance(expr, BinExpr):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, Sel):
        return f"sel({render_expr(expr.mem)}, {render_expr(expr.addr)})"
    if isinstance(expr, Upd):
        return (f"upd({render_expr(expr.mem)}, {render_expr(expr.addr)}, "
                f"{render_expr(expr.value)})")
    raise ReproError(f"cannot render expression {expr!r}")


class _Emitter:
    def __init__(self, program: Program):
        self.program = program
        self.names: Dict[int, str] = {
            address: name for name, address in program.labels_by_name.items()
        }
        for address in program.label_types:
            self.names.setdefault(address, f"L{address}")

    # -- types ---------------------------------------------------------------

    def label_of_code_type(self, code_type: CodeType) -> str:
        for address, declared in self.program.label_types.items():
            if declared is code_type or \
                    context_equal(declared.context, code_type.context):
                return self.names[address]
        raise ReproError(
            "cannot serialize a code type that matches no label precondition"
        )

    def render_basic(self, basic) -> str:
        if isinstance(basic, IntType):
            return "int"
        if isinstance(basic, RefType):
            return f"{self.render_basic(basic.pointee)} ref"
        if isinstance(basic, CodeType):
            return f"code @{self.label_of_code_type(basic)}"
        raise ReproError(f"cannot render basic type {basic!r}")

    def render_reg_type(self, assign) -> str:
        if isinstance(assign, CondType):
            return (f"{render_expr(assign.guard)} = 0 => "
                    f"{self.render_reg_type(assign.inner)}")
        assert isinstance(assign, RegType)
        return (f"({assign.color}, {self.render_basic(assign.basic)}, "
                f"{render_expr(assign.expr)})")

    def render_precondition(self, address: int,
                            context: StaticContext) -> List[str]:
        bindings = ", ".join(
            f"{name}: {kind}" for name, kind in sorted(context.delta.items())
        )
        zero_default = RegType(Color.GREEN, IntType(), IntConst(0))
        entries: List[str] = []
        for name in sorted(context.gamma.gprs(), key=gpr_index):
            assign = context.gamma.get(name)
            if assign == zero_default:
                continue  # covered by 'rest: zero'
            entries.append(f"{name}: {self.render_reg_type(assign)}")
        dest = context.gamma.get(DEST)
        if dest != zero_default:
            entries.append(f"d: {self.render_reg_type(dest)}")
        for pc, color in ((PC_G, Color.GREEN), (PC_B, Color.BLUE)):
            assign = context.gamma.get(pc)
            default = RegType(color, IntType(), IntConst(address))
            if assign != default:
                entries.append(f"{pc}: {self.render_reg_type(assign)}")
        entries.append("rest: zero")
        queue = ", ".join(
            f"({render_expr(ed)}, {render_expr(es)})"
            for ed, es in context.queue
        )
        lines = [f"  .pre [{bindings}] {{"]
        for entry in entries:
            lines.append(f"      {entry},")
        lines.append(f"  }} queue [{queue}] mem {render_expr(context.mem)}")
        return lines

    # -- instructions ----------------------------------------------------------

    def render_immediate(self, imm) -> str:
        return f"{imm.color} {imm.value}"

    def render_instruction(self, address: int,
                           instruction: Instruction) -> str:
        hint = self.program.hints.get(address)
        suffix = ""
        if hint is not None and hint.subst is not None:
            parts = ", ".join(
                f"{name} = {render_expr(expr)}"
                for name, expr in sorted(hint.subst.items())
            )
            suffix = f" with [{parts}]"
        if isinstance(instruction, Mov):
            note = ""
            if hint is not None and hint.mov_basic is not None:
                note = " : int"
            return (f"mov {instruction.rd}, "
                    f"{self.render_immediate(instruction.imm)}{note}")
        if isinstance(instruction, ArithRRR):
            return (f"{instruction.op} {instruction.rd}, {instruction.rs}, "
                    f"{instruction.rt}")
        if isinstance(instruction, ArithRRI):
            return (f"{instruction.op} {instruction.rd}, {instruction.rs}, "
                    f"{self.render_immediate(instruction.imm)}")
        if isinstance(instruction, Load):
            return f"ld{instruction.color} {instruction.rd}, {instruction.rs}"
        if isinstance(instruction, Store):
            return f"st{instruction.color} {instruction.rd}, {instruction.rs}"
        if isinstance(instruction, Jmp):
            return f"jmp{instruction.color} {instruction.rd}{suffix}"
        if isinstance(instruction, Bz):
            return (f"bz{instruction.color} {instruction.rz}, "
                    f"{instruction.rd}{suffix}")
        if isinstance(instruction, Halt):
            return "halt"
        if isinstance(instruction, PlainLoad):
            return f"ld {instruction.rd}, {instruction.rs}"
        if isinstance(instruction, PlainStore):
            return f"st {instruction.rd}, {instruction.rs}"
        if isinstance(instruction, PlainJmp):
            return f"jmp {instruction.rd}"
        if isinstance(instruction, PlainBz):
            return f"bz {instruction.rz}, {instruction.rd}"
        raise ReproError(f"cannot render instruction {instruction!r}")

    # -- whole program -----------------------------------------------------

    def emit(self) -> str:
        program = self.program
        lines: List[str] = [
            "; emitted by repro.asm.emitter -- re-parseable TAL_FT assembly",
            f".gprs {program.num_gprs}",
        ]
        blue = sorted(
            gpr_index(name)
            for name, color in program.gpr_colors.items()
            if color is Color.BLUE
        )
        if blue:
            low, high = blue[0], blue[-1]
            if blue != list(range(low, high + 1)):
                raise ReproError(
                    "only contiguous blue boot pools can be serialized"
                )
            lines.append(f".bluepool {low} {high}")
        if program.observable_min:
            lines.append(f".observable {program.observable_min}")
        entry_name = self.names.get(program.entry)
        if entry_name is None:
            raise ReproError("entry address carries no label")
        lines.append(f".entry {entry_name}")
        if program.initial_memory:
            lines.append("")
            lines.append(".data")
            for address in sorted(program.initial_memory):
                declared = program.data_psi.get(address)
                note = ""
                if isinstance(declared, RefType) and \
                        not isinstance(declared.pointee, IntType):
                    note = f" : {self.render_basic(declared.pointee)}"
                lines.append(
                    f"  word {address} = "
                    f"{program.initial_memory[address]}{note}"
                )
        lines.append("")
        lines.append(".code")
        for address in sorted(program.code):
            declared = program.label_types.get(address)
            if declared is not None:
                lines.append(f"{self.names[address]}:")
                lines.extend(
                    self.render_precondition(address, declared.context)
                )
            lines.append(
                f"  {self.render_instruction(address, program.code[address])}"
            )
        return "\n".join(lines) + "\n"


def emit_tal(program: Program) -> str:
    """Serialize ``program`` (with its typing interface) to ``.tal`` text."""
    return _Emitter(program).emit()
