"""Parser and assembler for textual TAL_FT programs.

Grammar sketch (``;`` comments, newline-terminated lines)::

    .gprs 16                      ; machine register count (default 16)
    .entry main                   ; entry label (default: first label)

    .data
      word 256 = 0                ; one int cell
      word 300 = @done : code @done   ; a cell holding a code pointer
      block 400 8 = 0             ; eight int cells starting at 400

    .code
    main:
      .pre [m: mem] { rest: zero } mem m
      mov r1, G 5
      mov r2, G 256
      stG r2, r1
      ...
      jmpB r8 with [n = 5, ml = m]    ; optional jump hint
      halt

    loop:
      .pre [ml: mem, n: int] {
          r1: (G, int, n), r2: (B, int, n), rest: zero
      } queue [] mem ml
      ...

Register-type entries are separated by commas or newlines (``;`` starts a
comment).  Register types are ``(color, basic, expr)`` or the conditional
``expr = 0 => (color, basic, expr)``; basic types are ``int``,
``code @label`` and suffix ``ref`` (e.g. ``int ref``).  Expressions are
integers, variables, ``@label`` address literals, ``emp``,
``sel(E, E)``, ``upd(E, E, E)`` and parenthesized binary operations
``(E + E)``, ``(E - E)``, ``(E * E)`` or ``(E op E)`` with a named ALU op.

The precondition shorthand ``rest: zero`` types every unmentioned
general-purpose register as ``(G, int, 0)``; ``pcG``/``pcB`` default to the
label's own address and ``d`` to ``(G, int, 0)``.

Code types are resolved by label reference; cyclic references are rejected
(the frozen type representation cannot express recursive types -- type the
register as ``int`` and re-establish the pointer with ``mov`` instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.colors import Color, ColoredValue
from repro.core.errors import AsmError
from repro.core.instructions import (
    ALU_OPS,
    ArithRRI,
    ArithRRR,
    Bz,
    Halt,
    Instruction,
    Jmp,
    Load,
    Mov,
    PlainBz,
    PlainJmp,
    PlainLoad,
    PlainStore,
    Store,
)
from repro.core.registers import DEST, PC_B, PC_G, gpr_range, is_register
from repro.asm.lexer import Token, TokenStream, tokenize
from repro.program import Program
from repro.statics.expressions import (
    BinExpr,
    EmptyMem,
    Expr,
    IntConst,
    Sel,
    Upd,
    Var,
)
from repro.statics.kinds import KIND_INT, KIND_MEM, Kind, KindContext
from repro.statics.substitution import Subst
from repro.types.instructions import InstructionHint
from repro.types.syntax import (
    INT,
    BasicType,
    CodeType,
    CondType,
    RefType,
    RegAssign,
    RegFileType,
    RegType,
    StaticContext,
)

_OP_SYMBOLS = {"+": "add", "-": "sub", "*": "mul"}


# ---------------------------------------------------------------------------
# Unresolved (label-referencing) intermediate forms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CodeRef:
    """An unresolved ``code @label`` basic type."""

    label: str


@dataclass(frozen=True)
class RefOf:
    base: object  # CodeRef | "int" | RefOf


@dataclass(frozen=True)
class RawRegType:
    color: Color
    basic: object
    expr: Expr
    guard: Optional[Expr] = None  # conditional types


@dataclass
class RawPrecondition:
    bindings: List[Tuple[str, Kind]]
    regs: Dict[str, RawRegType]
    rest_zero: bool
    queue: Optional[List[Tuple[Expr, Expr]]]
    mem: Optional[Expr]
    line: int


@dataclass
class RawBlock:
    label: str
    precondition: RawPrecondition
    instructions: List[Tuple[Instruction, Optional[InstructionHint]]]


@dataclass
class RawData:
    address: int
    value: int
    basic: object  # "int" | CodeRef | RefOf (pointee type)


# ---------------------------------------------------------------------------
# The parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, source: str):
        self.stream = TokenStream(tokenize(source))
        self.num_gprs = 16
        self.entry_label: Optional[str] = None
        self.data: List[RawData] = []
        self.blocks: List[RawBlock] = []
        #: Inclusive register-index range booted blue (``.bluepool lo hi``).
        self.blue_pool: Optional[Tuple[int, int]] = None
        #: First observable memory address (``.observable N``; default 0).
        self.observable_min = 0

    # -- error helper --------------------------------------------------------

    def _error(self, message: str, token: Optional[Token] = None) -> AsmError:
        if token is None:
            token = self.stream.peek()
        return AsmError(message, token.line, token.column)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self, label_addresses: bool = True) -> Expr:
        token = self.stream.next(skip_newlines=True)
        if token.kind == "INT":
            return IntConst(int(token.text))
        if token.kind == "PUNCT" and token.text == "@":
            name = self.stream.expect("IDENT").text
            return _LabelAddr(name)
        if token.kind == "IDENT":
            if token.text == "emp":
                return EmptyMem()
            if token.text == "sel":
                self.stream.expect("PUNCT", "(")
                mem = self.parse_expr()
                self.stream.expect("PUNCT", ",", skip_newlines=True)
                addr = self.parse_expr()
                self.stream.expect("PUNCT", ")", skip_newlines=True)
                return Sel(mem, addr)
            if token.text == "upd":
                self.stream.expect("PUNCT", "(")
                mem = self.parse_expr()
                self.stream.expect("PUNCT", ",", skip_newlines=True)
                addr = self.parse_expr()
                self.stream.expect("PUNCT", ",", skip_newlines=True)
                value = self.parse_expr()
                self.stream.expect("PUNCT", ")", skip_newlines=True)
                return Upd(mem, addr, value)
            return Var(token.text)
        if token.kind == "PUNCT" and token.text == "(":
            left = self.parse_expr()
            op_token = self.stream.next(skip_newlines=True)
            if op_token.kind == "PUNCT" and op_token.text in _OP_SYMBOLS:
                op = _OP_SYMBOLS[op_token.text]
            elif op_token.kind == "IDENT" and op_token.text in ALU_OPS:
                op = op_token.text
            else:
                raise self._error(f"unknown operator {op_token.text!r}", op_token)
            right = self.parse_expr()
            self.stream.expect("PUNCT", ")", skip_newlines=True)
            return BinExpr(op, left, right)
        raise self._error(f"expected an expression, found {token.text!r}", token)

    # -- types ----------------------------------------------------------------

    def parse_basic(self) -> object:
        token = self.stream.next(skip_newlines=True)
        if token.kind == "IDENT" and token.text == "int":
            base: object = "int"
        elif token.kind == "IDENT" and token.text == "code":
            self.stream.expect("PUNCT", "@", skip_newlines=True)
            base = CodeRef(self.stream.expect("IDENT").text)
        else:
            raise self._error(f"expected a basic type, found {token.text!r}", token)
        while self.stream.match("IDENT", "ref", skip_newlines=True):
            base = RefOf(base)
        return base

    def parse_color(self) -> Color:
        token = self.stream.next(skip_newlines=True)
        if token.kind == "IDENT" and token.text in ("G", "B"):
            return Color.GREEN if token.text == "G" else Color.BLUE
        raise self._error(f"expected a color (G or B), found {token.text!r}", token)

    def parse_reg_type(self) -> RawRegType:
        # Either "(c, b, E)" or "E = 0 => (c, b, E)".
        if self.stream.peek(skip_newlines=True).text == "(" and \
                self._looks_like_triple():
            return self._parse_triple()
        guard = self.parse_expr()
        self.stream.expect("PUNCT", "=", skip_newlines=True)
        zero = self.stream.expect("INT", skip_newlines=True)
        if zero.text != "0":
            raise self._error("conditional guard must compare with 0", zero)
        self.stream.expect("PUNCT", "=>", skip_newlines=True)
        inner = self._parse_triple()
        return RawRegType(inner.color, inner.basic, inner.expr, guard=guard)

    def _looks_like_triple(self) -> bool:
        # "(G," or "(B," begins a triple; anything else is an expression.
        token = self.stream.peek(skip_newlines=True)
        if token.text != "(":
            return False
        # Peek two tokens ahead without consuming.
        saved = self.stream._index  # noqa: SLF001 - controlled lookahead
        try:
            self.stream.next(skip_newlines=True)
            first = self.stream.next(skip_newlines=True)
            second = self.stream.peek(skip_newlines=True)
            return first.kind == "IDENT" and first.text in ("G", "B") \
                and second.text == ","
        finally:
            self.stream._index = saved  # noqa: SLF001

    def _parse_triple(self) -> RawRegType:
        self.stream.expect("PUNCT", "(", skip_newlines=True)
        color = self.parse_color()
        self.stream.expect("PUNCT", ",", skip_newlines=True)
        basic = self.parse_basic()
        self.stream.expect("PUNCT", ",", skip_newlines=True)
        expr = self.parse_expr()
        self.stream.expect("PUNCT", ")", skip_newlines=True)
        return RawRegType(color, basic, expr)

    # -- preconditions --------------------------------------------------------

    def parse_precondition(self) -> RawPrecondition:
        at = self.stream.peek(skip_newlines=True)
        self.stream.expect("IDENT", ".pre", skip_newlines=True)
        self.stream.expect("PUNCT", "[")
        bindings: List[Tuple[str, Kind]] = []
        while not self.stream.match("PUNCT", "]", skip_newlines=True):
            name = self.stream.expect("IDENT", skip_newlines=True).text
            self.stream.expect("PUNCT", ":", skip_newlines=True)
            kind_token = self.stream.expect("IDENT", skip_newlines=True)
            if kind_token.text == "int":
                bindings.append((name, KIND_INT))
            elif kind_token.text == "mem":
                bindings.append((name, KIND_MEM))
            else:
                raise self._error(
                    f"expected kind int or mem, found {kind_token.text!r}",
                    kind_token,
                )
            self.stream.match("PUNCT", ",", skip_newlines=True)
        self.stream.expect("PUNCT", "{", skip_newlines=True)
        regs: Dict[str, RawRegType] = {}
        rest_zero = False
        while not self.stream.match("PUNCT", "}", skip_newlines=True):
            name_token = self.stream.expect("IDENT", skip_newlines=True)
            self.stream.expect("PUNCT", ":", skip_newlines=True)
            if name_token.text == "rest":
                value = self.stream.expect("IDENT", skip_newlines=True)
                if value.text != "zero":
                    raise self._error("only 'rest: zero' is supported", value)
                rest_zero = True
            else:
                if not is_register(name_token.text):
                    raise self._error(
                        f"{name_token.text!r} is not a register", name_token
                    )
                regs[name_token.text] = self.parse_reg_type()
            self.stream.match("PUNCT", ",", skip_newlines=True)
        queue: Optional[List[Tuple[Expr, Expr]]] = None
        mem: Optional[Expr] = None
        while True:
            token = self.stream.peek()
            if token.kind == "IDENT" and token.text == "queue":
                self.stream.next()
                self.stream.expect("PUNCT", "[", skip_newlines=True)
                queue = []
                while not self.stream.match("PUNCT", "]", skip_newlines=True):
                    self.stream.expect("PUNCT", "(", skip_newlines=True)
                    addr = self.parse_expr()
                    self.stream.expect("PUNCT", ",", skip_newlines=True)
                    value = self.parse_expr()
                    self.stream.expect("PUNCT", ")", skip_newlines=True)
                    queue.append((addr, value))
                    self.stream.match("PUNCT", ",", skip_newlines=True)
            elif token.kind == "IDENT" and token.text == "mem":
                self.stream.next()
                mem = self.parse_expr()
            else:
                break
        return RawPrecondition(bindings, regs, rest_zero, queue, mem, at.line)

    # -- instructions ----------------------------------------------------------

    def parse_operand_value(self) -> ColoredValue:
        color = self.parse_color()
        token = self.stream.next()
        if token.kind == "INT":
            return ColoredValue(color, int(token.text))
        if token.kind == "PUNCT" and token.text == "@":
            name = self.stream.expect("IDENT").text
            return _pending_label_value(color, name)
        raise self._error(
            f"expected an immediate after color, found {token.text!r}", token
        )

    def parse_register(self) -> str:
        token = self.stream.expect("IDENT")
        if not is_register(token.text):
            raise self._error(f"{token.text!r} is not a register", token)
        return token.text

    def parse_hint(self) -> Optional[InstructionHint]:
        if not self.stream.match("IDENT", "with"):
            return None
        self.stream.expect("PUNCT", "[")
        mapping: Dict[str, Expr] = {}
        while not self.stream.match("PUNCT", "]", skip_newlines=True):
            name = self.stream.expect("IDENT", skip_newlines=True).text
            self.stream.expect("PUNCT", "=", skip_newlines=True)
            mapping[name] = self.parse_expr()
            self.stream.match("PUNCT", ",", skip_newlines=True)
        return InstructionHint(subst=Subst(mapping))

    def parse_instruction(self) -> Tuple[Instruction, Optional[InstructionHint]]:
        opcode = self.stream.expect("IDENT", skip_newlines=True)
        name = opcode.text
        hint: Optional[InstructionHint] = None
        if name == "halt":
            instruction: Instruction = Halt()
        elif name == "mov":
            rd = self.parse_register()
            self.stream.expect("PUNCT", ",")
            imm = self.parse_operand_value()
            if self.stream.match("PUNCT", ":"):
                type_token = self.stream.expect("IDENT")
                if type_token.text != "int":
                    raise self._error(
                        "only ': int' mov annotations are supported", type_token
                    )
                hint = InstructionHint(mov_basic=INT)
            instruction = Mov(rd, imm)
        elif name in ALU_OPS:
            rd = self.parse_register()
            self.stream.expect("PUNCT", ",")
            rs = self.parse_register()
            self.stream.expect("PUNCT", ",")
            token = self.stream.peek()
            if token.kind == "IDENT" and token.text in ("G", "B"):
                imm = self.parse_operand_value()
                instruction = ArithRRI(name, rd, rs, imm)
            else:
                rt = self.parse_register()
                instruction = ArithRRR(name, rd, rs, rt)
        elif name in ("ldG", "ldB"):
            color = Color.GREEN if name.endswith("G") else Color.BLUE
            rd = self.parse_register()
            self.stream.expect("PUNCT", ",")
            rs = self.parse_register()
            instruction = Load(color, rd, rs)
        elif name in ("stG", "stB"):
            color = Color.GREEN if name.endswith("G") else Color.BLUE
            rd = self.parse_register()
            self.stream.expect("PUNCT", ",")
            rs = self.parse_register()
            instruction = Store(color, rd, rs)
        elif name in ("jmpG", "jmpB"):
            color = Color.GREEN if name.endswith("G") else Color.BLUE
            rd = self.parse_register()
            if name == "jmpB":
                hint = self.parse_hint()
            instruction = Jmp(color, rd)
        elif name in ("bzG", "bzB"):
            color = Color.GREEN if name.endswith("G") else Color.BLUE
            rz = self.parse_register()
            self.stream.expect("PUNCT", ",")
            rd = self.parse_register()
            if name == "bzB":
                hint = self.parse_hint()
            instruction = Bz(color, rz, rd)
        elif name == "ld":
            rd = self.parse_register()
            self.stream.expect("PUNCT", ",")
            rs = self.parse_register()
            instruction = PlainLoad(rd, rs)
        elif name == "st":
            rd = self.parse_register()
            self.stream.expect("PUNCT", ",")
            rs = self.parse_register()
            instruction = PlainStore(rd, rs)
        elif name == "jmp":
            instruction = PlainJmp(self.parse_register())
        elif name == "bz":
            rz = self.parse_register()
            self.stream.expect("PUNCT", ",")
            rd = self.parse_register()
            instruction = PlainBz(rz, rd)
        else:
            raise self._error(f"unknown opcode {name!r}", opcode)
        return instruction, hint

    # -- sections ----------------------------------------------------------

    def parse_data_section(self) -> None:
        while True:
            token = self.stream.peek(skip_newlines=True)
            if token.kind == "IDENT" and token.text == "word":
                self.stream.next(skip_newlines=True)
                address = int(self.stream.expect("INT").text)
                self.stream.expect("PUNCT", "=")
                value_token = self.stream.next()
                if value_token.kind == "INT":
                    value: object = int(value_token.text)
                elif value_token.kind == "PUNCT" and value_token.text == "@":
                    value = _PendingLabel(self.stream.expect("IDENT").text)
                else:
                    raise self._error("expected a data value", value_token)
                basic: object = "int"
                if self.stream.match("PUNCT", ":"):
                    basic = self.parse_basic()
                self.data.append(RawData(address, value, basic))
            elif token.kind == "IDENT" and token.text == "block":
                self.stream.next(skip_newlines=True)
                address = int(self.stream.expect("INT").text)
                count = int(self.stream.expect("INT").text)
                self.stream.expect("PUNCT", "=")
                value = int(self.stream.expect("INT").text)
                for offset in range(count):
                    self.data.append(RawData(address + offset, value, "int"))
            else:
                break

    def parse_code_section(self) -> None:
        while True:
            token = self.stream.peek(skip_newlines=True)
            if token.kind != "IDENT" or token.text.startswith("."):
                break
            # A label is IDENT ':' at the start of a line.
            label = self.stream.expect("IDENT", skip_newlines=True).text
            self.stream.expect("PUNCT", ":")
            precondition = self.parse_precondition()
            instructions: List[Tuple[Instruction, Optional[InstructionHint]]] = []
            while True:
                self.stream.skip_newlines()
                peeked = self.stream.peek()
                if peeked.kind == "EOF" or peeked.text.startswith("."):
                    break
                # Label ahead?  IDENT followed by ':'.
                saved = self.stream._index  # noqa: SLF001
                if peeked.kind == "IDENT":
                    self.stream.next()
                    if self.stream.peek().text == ":":
                        self.stream._index = saved  # noqa: SLF001
                        break
                    self.stream._index = saved  # noqa: SLF001
                instructions.append(self.parse_instruction())
            if not instructions:
                raise self._error(f"block {label!r} has no instructions")
            self.blocks.append(RawBlock(label, precondition, instructions))

    def parse(self) -> "_Parser":
        while not self.stream.at_end():
            token = self.stream.peek(skip_newlines=True)
            if token.kind == "IDENT" and token.text == ".gprs":
                self.stream.next(skip_newlines=True)
                self.num_gprs = int(self.stream.expect("INT").text)
            elif token.kind == "IDENT" and token.text == ".observable":
                # First device-mapped address; stores below it are silent.
                self.stream.next(skip_newlines=True)
                self.observable_min = int(self.stream.expect("INT").text)
            elif token.kind == "IDENT" and token.text == ".bluepool":
                # Registers r<lo> .. r<hi> boot as blue zeroes (so block
                # preconditions may type them blue at entry).
                self.stream.next(skip_newlines=True)
                low = int(self.stream.expect("INT").text)
                high = int(self.stream.expect("INT").text)
                self.blue_pool = (low, high)
            elif token.kind == "IDENT" and token.text == ".entry":
                self.stream.next(skip_newlines=True)
                self.entry_label = self.stream.expect("IDENT").text
            elif token.kind == "IDENT" and token.text == ".data":
                self.stream.next(skip_newlines=True)
                self.parse_data_section()
            elif token.kind == "IDENT" and token.text == ".code":
                self.stream.next(skip_newlines=True)
                self.parse_code_section()
            else:
                raise self._error(
                    f"expected a directive or section, found {token.text!r}",
                    token,
                )
        if not self.blocks:
            raise AsmError("program has no code blocks")
        return self


# ---------------------------------------------------------------------------
# Label-reference placeholders
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _PendingLabel:
    name: str


class _LabelAddr(Var):
    """An ``@label`` literal inside an expression; resolved to IntConst.

    Implemented as a Var subclass so it flows through expression structure
    until resolution; the resolver rewrites it before any typing happens.
    """


def _pending_label_value(color: Color, name: str) -> ColoredValue:
    # Encoded as a ColoredValue with a placeholder; the assembler resolves
    # it once label addresses are known.
    return _PendingImmediate(color, name)  # type: ignore[return-value]


@dataclass(frozen=True)
class _PendingImmediate:
    color: Color
    label: str


# ---------------------------------------------------------------------------
# Resolution: raw forms -> Program
# ---------------------------------------------------------------------------


class _Resolver:
    def __init__(self, parsed: _Parser):
        self.parsed = parsed
        self.addresses: Dict[str, int] = {}
        self.preconditions: Dict[str, RawPrecondition] = {}
        self.code_types: Dict[str, CodeType] = {}
        self._resolving: List[str] = []

    def resolve(self) -> Program:
        address = 1
        for block in self.parsed.blocks:
            if block.label in self.addresses:
                raise AsmError(f"duplicate label {block.label!r}")
            self.addresses[block.label] = address
            self.preconditions[block.label] = block.precondition
            address += len(block.instructions)

        data_psi: Dict[int, BasicType] = {}
        initial_memory: Dict[int, int] = {}
        for raw in self.parsed.data:
            if raw.address in initial_memory:
                raise AsmError(f"duplicate data address {raw.address}")
            pointee = self.resolve_basic(raw.basic)
            data_psi[raw.address] = RefType(pointee)
            if isinstance(raw.value, _PendingLabel):
                initial_memory[raw.address] = self.address_of(raw.value.name)
            else:
                initial_memory[raw.address] = raw.value

        label_types: Dict[int, CodeType] = {}
        for block in self.parsed.blocks:
            label_types[self.addresses[block.label]] = \
                self.code_type_of(block.label)

        code: Dict[int, Instruction] = {}
        hints: Dict[int, InstructionHint] = {}
        for block in self.parsed.blocks:
            address = self.addresses[block.label]
            for instruction, hint in block.instructions:
                code[address] = self.resolve_instruction(instruction)
                if hint is not None:
                    resolved = self.resolve_hint(hint)
                    hints[address] = resolved
                address += 1

        entry_label = self.parsed.entry_label or self.parsed.blocks[0].label
        if entry_label not in self.addresses:
            raise AsmError(f"entry label {entry_label!r} is not defined")
        gpr_colors = {}
        if self.parsed.blue_pool is not None:
            from repro.core.colors import Color
            from repro.core.registers import gpr as gpr_name

            low, high = self.parsed.blue_pool
            if not 1 <= low <= high <= self.parsed.num_gprs:
                raise AsmError(
                    f".bluepool {low} {high} is outside r1..r"
                    f"{self.parsed.num_gprs}"
                )
            for index in range(low, high + 1):
                gpr_colors[gpr_name(index)] = Color.BLUE
        return Program(
            code=code,
            label_types=label_types,
            data_psi=data_psi,
            hints=hints,
            entry=self.addresses[entry_label],
            initial_memory=initial_memory,
            num_gprs=self.parsed.num_gprs,
            labels_by_name=dict(self.addresses),
            gpr_colors=gpr_colors,
            observable_min=self.parsed.observable_min,
        )

    def address_of(self, label: str) -> int:
        try:
            return self.addresses[label]
        except KeyError:
            raise AsmError(f"undefined label {label!r}") from None

    # -- expressions ---------------------------------------------------------

    def resolve_expr(self, expr: Expr) -> Expr:
        if isinstance(expr, _LabelAddr):
            return IntConst(self.address_of(expr.name))
        if isinstance(expr, (IntConst, EmptyMem, Var)):
            return expr
        if isinstance(expr, BinExpr):
            return BinExpr(expr.op, self.resolve_expr(expr.left),
                           self.resolve_expr(expr.right))
        if isinstance(expr, Sel):
            return Sel(self.resolve_expr(expr.mem), self.resolve_expr(expr.addr))
        if isinstance(expr, Upd):
            return Upd(self.resolve_expr(expr.mem), self.resolve_expr(expr.addr),
                       self.resolve_expr(expr.value))
        raise AsmError(f"cannot resolve expression {expr!r}")

    # -- types ----------------------------------------------------------------

    def resolve_basic(self, raw: object) -> BasicType:
        if raw == "int":
            return INT
        if isinstance(raw, CodeRef):
            return self.code_type_of(raw.label)
        if isinstance(raw, RefOf):
            return RefType(self.resolve_basic(raw.base))
        raise AsmError(f"cannot resolve basic type {raw!r}")

    def code_type_of(self, label: str) -> CodeType:
        if label in self.code_types:
            return self.code_types[label]
        if label in self._resolving:
            cycle = " -> ".join(self._resolving + [label])
            raise AsmError(
                f"recursive code types are not supported ({cycle}); type the "
                "register as int and re-establish the pointer with mov"
            )
        if label not in self.preconditions:
            raise AsmError(f"undefined label {label!r}")
        self._resolving.append(label)
        try:
            context = self.build_context(label, self.preconditions[label])
        finally:
            self._resolving.pop()
        code_type = CodeType(context)
        self.code_types[label] = code_type
        return code_type

    def build_context(self, label: str, raw: RawPrecondition) -> StaticContext:
        address = self.addresses[label]
        delta = KindContext(dict(raw.bindings))
        assigns: Dict[str, RegAssign] = {}
        for name, raw_type in raw.regs.items():
            expr = self.resolve_expr(raw_type.expr)
            basic = self.resolve_basic(raw_type.basic)
            reg_type = RegType(raw_type.color, basic, expr)
            if raw_type.guard is not None:
                assigns[name] = CondType(self.resolve_expr(raw_type.guard),
                                         reg_type)
            else:
                assigns[name] = reg_type
        if PC_G not in assigns:
            assigns[PC_G] = RegType(Color.GREEN, INT, IntConst(address))
        if PC_B not in assigns:
            assigns[PC_B] = RegType(Color.BLUE, INT, IntConst(address))
        if DEST not in assigns:
            assigns[DEST] = RegType(Color.GREEN, INT, IntConst(0))
        for name in gpr_range(self.parsed.num_gprs):
            if name not in assigns:
                if not raw.rest_zero:
                    raise AsmError(
                        f"label {label!r}: register {name} has no declared "
                        "type (add it or use 'rest: zero')",
                        raw.line,
                    )
                assigns[name] = RegType(Color.GREEN, INT, IntConst(0))
        queue = tuple(
            (self.resolve_expr(addr), self.resolve_expr(value))
            for addr, value in (raw.queue or [])
        )
        if raw.mem is not None:
            mem = self.resolve_expr(raw.mem)
        else:
            mem_vars = [name for name, kind in raw.bindings if kind is KIND_MEM]
            if len(mem_vars) != 1:
                raise AsmError(
                    f"label {label!r}: no 'mem' clause and no unique memory "
                    "variable to default to",
                    raw.line,
                )
            mem = Var(mem_vars[0])
        return StaticContext(delta=delta, gamma=RegFileType(assigns),
                             queue=queue, mem=mem)

    # -- instructions ----------------------------------------------------------

    def resolve_instruction(self, instruction: Instruction) -> Instruction:
        imm = getattr(instruction, "imm", None)
        if isinstance(imm, _PendingImmediate):
            value = ColoredValue(imm.color, self.address_of(imm.label))
            if isinstance(instruction, Mov):
                return Mov(instruction.rd, value)
            if isinstance(instruction, ArithRRI):
                return ArithRRI(instruction.op, instruction.rd,
                                instruction.rs, value)
        return instruction

    def resolve_hint(self, hint: InstructionHint) -> InstructionHint:
        if hint.subst is None:
            return hint
        resolved = {name: self.resolve_expr(expr)
                    for name, expr in hint.subst.items()}
        return InstructionHint(subst=Subst(resolved),
                               mov_basic=hint.mov_basic)


def parse_program(source: str) -> Program:
    """Assemble textual TAL_FT source into a :class:`Program`."""
    return _Resolver(_Parser(source).parse()).resolve()


def assemble_file(path: str) -> Program:
    """Assemble a ``.tal`` file."""
    with open(path) as handle:
        return parse_program(handle.read())
