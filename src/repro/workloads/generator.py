"""Synthetic workload generator: kernels with dialed-in characteristics.

Figure 10's per-benchmark spread comes from how much instruction-level
parallelism, memory traffic and branching each program has -- the wide
machine hides duplicated work exactly when the baseline leaves issue slots
idle.  This generator produces MWL kernels with those three properties as
knobs, so the characterization bench can map overhead as a function of
program shape rather than anecdote:

* ``chains``      -- independent accumulator chains (ILP: 1 = one serial
  dependence chain, 8 = eight parallel ones);
* ``loads_per_chain`` -- array reads feeding each chain per iteration
  (memory-port pressure);
* ``branches``    -- data-dependent if/else diamonds per iteration
  (control-flow checking pressure);
* ``iterations``, ``seed`` -- run length and deterministic input data.

Generated kernels are ordinary MWL programs: they parse, check,
interpret, compile in both modes, and their FT builds type-check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Data array size (power of two, masked indexing).
_DATA_SIZE = 64


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs for one synthetic kernel."""

    chains: int = 4
    loads_per_chain: int = 1
    branches: int = 0
    iterations: int = 32
    seed: int = 1

    def name(self) -> str:
        return (f"synth_c{self.chains}_l{self.loads_per_chain}"
                f"_b{self.branches}_i{self.iterations}")


def generate_source(spec: WorkloadSpec) -> str:
    """MWL source text for ``spec``."""
    if spec.chains < 1 or spec.iterations < 1 or spec.loads_per_chain < 0 \
            or spec.branches < 0:
        raise ValueError(f"invalid workload spec {spec!r}")
    rng = random.Random(spec.seed)
    data = [rng.randrange(1, 256) for _ in range(_DATA_SIZE)]
    data_literal = ", ".join(str(value) for value in data)

    lines = [
        f"// generated workload: {spec.name()}",
        f"array data[{_DATA_SIZE}] = {{{data_literal}}};",
        f"array out[{max(1, spec.chains)}];",
    ]
    for chain in range(spec.chains):
        lines.append(f"var acc{chain} = {chain + 1};")
    lines.append("var i = 0;")
    lines.append(f"while (i < {spec.iterations}) {{")

    for chain in range(spec.chains):
        # Each chain is serially dependent on itself only; chains are
        # mutually independent (the ILP the machine can exploit).
        terms = []
        for load in range(spec.loads_per_chain):
            stride = 3 + 2 * load + chain
            # Masked indexing, as the module contract promises: without
            # the explicit ``& (_DATA_SIZE - 1)`` a spec with
            # ``iterations * stride >= _DATA_SIZE`` would index past the
            # declared array and lean on the runtime's implicit wrap.
            terms.append(
                f"data[((i * {stride} + {chain}) & {_DATA_SIZE - 1})]")
        if terms:
            combined = " + ".join(terms)
            lines.append(
                f"    acc{chain} = acc{chain} * 3 + ({combined});"
            )
        else:
            lines.append(
                f"    acc{chain} = acc{chain} * 3 + i + {chain + 1};"
            )

    for branch in range(spec.branches):
        target = branch % spec.chains
        lines.append(f"    if (((i >> {branch % 4}) & 1) == 0) {{")
        lines.append(f"        acc{target} = acc{target} + {branch + 1};")
        lines.append("    } else {")
        lines.append(f"        acc{target} = acc{target} - {branch + 1};")
        lines.append("    }")

    lines.append("    i = i + 1;")
    lines.append("}")
    for chain in range(spec.chains):
        lines.append(f"out[{chain}] = acc{chain};")
    return "\n".join(lines) + "\n"


def generate_compiled(spec: WorkloadSpec, mode: str = "ft"):
    """Convenience: generate and compile in one call."""
    from repro.compiler import compile_source

    return compile_source(generate_source(spec), mode=mode)
