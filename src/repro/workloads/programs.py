"""SPEC CINT2000 / MediaBench stand-in kernels, written in MWL.

The paper's evaluation compiles SPEC CINT2000 and MediaBench with the
reliability transformation and reports execution time normalized to the
unprotected binaries (Figure 10).  Those suites (and their reference
inputs) cannot be redistributed or run on this substrate, so each entry
here is a small kernel capturing the *computational character* of the
corresponding program -- pointer-light integer codes with the same flavor
of control flow and memory behavior (see DESIGN.md, substitution table).

Every kernel is deterministic, self-initializing (a seeded LCG written in
MWL generates inputs), and writes its results to an ``out`` array --
observable output on the machine, so the differential and fault-injection
harnesses can compare runs.

Conventions: scalars stay few (the FT backend has 31 registers per color),
array sizes are powers of two, and loop bounds keep the unprotected
dynamic instruction count in the low thousands so exhaustive tooling stays
fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: A seeded 15-bit LCG used by several kernels (BSD rand flavor).
_LCG = """
fn lcg(s) {
    return ((s * 1103 + 12345) >> 2) & 32767;
}
"""


@dataclass(frozen=True)
class Kernel:
    """One benchmark kernel."""

    name: str
    suite: str  # "spec" or "media"
    description: str
    source: str


_KERNELS = []


def _kernel(name: str, suite: str, description: str, source: str) -> None:
    _KERNELS.append(Kernel(name, suite, description, source))


# ---------------------------------------------------------------------------
# SPEC CINT2000 stand-ins
# ---------------------------------------------------------------------------

_kernel("gzip", "spec", "LZ77-style longest-match search over a window", _LCG + """
array text[128];
array out[32];
var seed = 7;
var i = 0;
while (i < 128) {
    seed = lcg(seed);
    text[i] = seed & 15;
    i = i + 1;
}
var pos = 32;
var emitted = 0;
while (pos < 120) {
    var best_len = 0;
    var best_off = 0;
    var off = 1;
    while (off < 24) {
        var len = 0;
        while (len < 8 && text[pos + len] == text[pos - off + len]) {
            len = len + 1;
        }
        if (len > best_len) { best_len = len; best_off = off; }
        off = off + 1;
    }
    if (best_len >= 3) {
        out[emitted & 31] = (best_off << 8) | best_len;
        pos = pos + best_len;
    } else {
        out[emitted & 31] = text[pos];
        pos = pos + 1;
    }
    emitted = emitted + 1;
}
""")

_kernel("vpr", "spec", "placement cost: Manhattan wire lengths on a grid", _LCG + """
array xs[32];
array ys[32];
array out[32];
var seed = 99;
var i = 0;
while (i < 32) {
    seed = lcg(seed);
    xs[i] = seed & 63;
    seed = lcg(seed);
    ys[i] = seed & 63;
    i = i + 1;
}
var net = 0;
while (net < 31) {
    var dx = xs[net] - xs[net + 1];
    var dy = ys[net] - ys[net + 1];
    if (dx < 0) { dx = 0 - dx; }
    if (dy < 0) { dy = 0 - dy; }
    out[net] = dx + dy;
    net = net + 1;
}
""")

_kernel("gcc", "spec", "bytecode dispatch: a tiny stack-machine evaluator", _LCG + """
array prog[64];
array stack[16];
array out[16];
var seed = 3;
var i = 0;
while (i < 64) {
    seed = lcg(seed);
    prog[i] = seed & 3;
    i = i + 1;
}
var sp = 0;
var pc = 0;
var acc = 1;
while (pc < 64) {
    var op = prog[pc];
    if (op == 0) {
        stack[sp & 15] = acc;
        sp = sp + 1;
        acc = pc + 1;
    } else {
        if (op == 1) {
            if (sp > 0) { sp = sp - 1; acc = acc + stack[sp & 15]; }
            else { acc = acc + 1; }
        } else {
            if (op == 2) { acc = acc * 3; }
            else { acc = acc - (acc >> 2); }
        }
    }
    pc = pc + 1;
}
out[0] = acc;
out[1] = sp;
""")

_kernel("mcf", "spec", "shortest-path relaxation sweeps over an edge list", _LCG + """
array src[64];
array dst[64];
array weight[64];
array dist[16];
var seed = 17;
var i = 0;
while (i < 64) {
    seed = lcg(seed);
    src[i] = seed & 15;
    seed = lcg(seed);
    dst[i] = seed & 15;
    seed = lcg(seed);
    weight[i] = (seed & 31) + 1;
    i = i + 1;
}
var node = 1;
dist[0] = 0;
while (node < 16) { dist[node] = 16384; node = node + 1; }
var sweep = 0;
while (sweep < 6) {
    var e = 0;
    while (e < 64) {
        var candidate = dist[src[e]] + weight[e];
        if (candidate < dist[dst[e]]) { dist[dst[e]] = candidate; }
        e = e + 1;
    }
    sweep = sweep + 1;
}
""")

_kernel("crafty", "spec", "bitboard scans: popcount and lowest-set-bit loops", _LCG + """
array boards[16];
array out[32];
var seed = 23;
var i = 0;
while (i < 16) {
    seed = lcg(seed);
    var high = seed;
    seed = lcg(seed);
    boards[i] = (high << 15) | seed;
    i = i + 1;
}
var b = 0;
while (b < 16) {
    var bits = boards[b];
    var count = 0;
    var lowest = -1;
    var position = 0;
    while (position < 30) {
        if ((bits >> position) & 1) {
            count = count + 1;
            if (lowest < 0) { lowest = position; }
        }
        position = position + 1;
    }
    out[b * 2] = count;
    out[b * 2 + 1] = lowest;
    b = b + 1;
}
""")

_kernel("parser", "spec", "token scanner: a finite-state machine over characters", _LCG + """
array chars[128];
array out[32];
var seed = 41;
var i = 0;
while (i < 128) {
    seed = lcg(seed);
    chars[i] = seed & 7;
    i = i + 1;
}
var state = 0;
var tokens = 0;
var longest = 0;
var current = 0;
i = 0;
while (i < 128) {
    var c = chars[i];
    if (state == 0) {
        if (c < 4) { state = 1; current = 1; }
    } else {
        if (c < 4) { current = current + 1; }
        else {
            tokens = tokens + 1;
            if (current > longest) { longest = current; }
            out[tokens & 31] = current;
            state = 0;
        }
    }
    i = i + 1;
}
out[0] = tokens;
out[1] = longest;
""")

_kernel("vortex", "spec", "hash table: open-addressing inserts and probes", _LCG + """
array keys[64];
array table[64];
array out[16];
var seed = 57;
var i = 0;
while (i < 64) {
    seed = lcg(seed);
    keys[i] = (seed & 1023) + 1;
    i = i + 1;
}
var inserted = 0;
var probes = 0;
var k = 0;
while (k < 48) {
    var key = keys[k];
    var slot = (key * 2654435) & 63;
    var tries = 0;
    var done = 0;
    while (tries < 64 && done == 0) {
        probes = probes + 1;
        if (table[slot] == 0) { table[slot] = key; inserted = inserted + 1; done = 1; }
        else {
            if (table[slot] == key) { done = 1; }
            else { slot = (slot + 1) & 63; tries = tries + 1; }
        }
    }
    k = k + 1;
}
out[0] = inserted;
out[1] = probes;
""")

_kernel("bzip2", "spec", "move-to-front transform plus run-length encoding", _LCG + """
array data[64];
array mtf[16];
array out[64];
var seed = 71;
var i = 0;
while (i < 64) {
    seed = lcg(seed);
    data[i] = seed & 15;
    i = i + 1;
}
i = 0;
while (i < 16) { mtf[i] = i; i = i + 1; }
var produced = 0;
var run = 0;
i = 0;
while (i < 64) {
    var symbol = data[i];
    var rank = 0;
    while (mtf[rank] != symbol) { rank = rank + 1; }
    var j = rank;
    while (j > 0) { mtf[j] = mtf[j - 1]; j = j - 1; }
    mtf[0] = symbol;
    if (rank == 0) { run = run + 1; }
    else {
        if (run > 0) { out[produced & 63] = run << 8; produced = produced + 1; run = 0; }
        out[produced & 63] = rank;
        produced = produced + 1;
    }
    i = i + 1;
}
out[63] = produced;
""")

_kernel("twolf", "spec", "cell-swap cost minimization (deterministic annealing)", _LCG + """
array cells[16];
array out[16];
var seed = 5;
var i = 0;
while (i < 16) {
    seed = lcg(seed);
    cells[i] = seed & 255;
    i = i + 1;
}
var pass = 0;
var improved = 0;
while (pass < 8) {
    var a = 0;
    while (a < 15) {
        var left = cells[a];
        var right = cells[a + 1];
        var cost_now = left * (a + 1) + right * (a + 2);
        var cost_swapped = right * (a + 1) + left * (a + 2);
        if (cost_swapped < cost_now) {
            cells[a] = right;
            cells[a + 1] = left;
            improved = improved + 1;
        }
        a = a + 1;
    }
    pass = pass + 1;
}
out[0] = improved;
""")

_kernel("go", "spec", "territory influence map over a game board", _LCG + """
array board[64];
array influence[64];
var seed = 83;
var placed = 0;
while (placed < 20) {
    seed = lcg(seed);
    var cell = seed & 63;
    if (board[cell] == 0) {
        board[cell] = 1 + (seed & 1);
        placed = placed + 1;
    }
}
var pos = 0;
while (pos < 64) {
    var row = pos >> 3;
    var col = pos & 7;
    var score = 0;
    var other = 0;
    while (other < 64) {
        var stone = board[other];
        if (stone != 0) {
            var dr = row - (other >> 3);
            var dc = col - (other & 7);
            if (dr < 0) { dr = 0 - dr; }
            if (dc < 0) { dc = 0 - dc; }
            var dist = dr + dc;
            if (dist < 4) {
                var weight = 8 >> dist;
                if (stone == 1) { score = score + weight; }
                else { score = score - weight; }
            }
        }
        other = other + 1;
    }
    influence[pos] = score;
    pos = pos + 1;
}
""")

# ---------------------------------------------------------------------------
# MediaBench stand-ins
# ---------------------------------------------------------------------------

_kernel("adpcm", "media", "ADPCM encode: step-size adaptive quantization", _LCG + """
array samples[64];
array out[64];
array steps[16] = {7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31};
var seed = 11;
var i = 0;
while (i < 64) {
    seed = lcg(seed);
    samples[i] = (seed & 255) - 128;
    i = i + 1;
}
var predicted = 0;
var index = 0;
i = 0;
while (i < 64) {
    var diff = samples[i] - predicted;
    var code = 0;
    if (diff < 0) { code = 8; diff = 0 - diff; }
    var step = steps[index];
    if (diff >= step) { code = code | 4; diff = diff - step; }
    if (diff >= (step >> 1)) { code = code | 2; diff = diff - (step >> 1); }
    if (diff >= (step >> 2)) { code = code | 1; }
    out[i] = code;
    var delta = (step >> 3) + (step >> 2) * ((code >> 2) & 1);
    if (code & 8) { predicted = predicted - delta; }
    else { predicted = predicted + delta; }
    if ((code & 7) >= 4) { index = index + 2; } else { index = index - 1; }
    if (index < 0) { index = 0; }
    if (index > 15) { index = 15; }
    i = i + 1;
}
""")

_kernel("epic", "media", "pyramid image filter: weighted 1-D convolutions", _LCG + """
array image[64];
array filtered[64];
var seed = 13;
var i = 0;
while (i < 64) {
    seed = lcg(seed);
    image[i] = seed & 255;
    i = i + 1;
}
i = 2;
while (i < 62) {
    filtered[i] = (image[i - 2] + 4 * image[i - 1] + 6 * image[i]
                   + 4 * image[i + 1] + image[i + 2]) >> 4;
    i = i + 1;
}
""")

_kernel("g721", "media", "G.721 quantizer: table-driven level decisions", _LCG + """
array inputs[64];
array out[64];
array thresholds[8] = {0, 2, 4, 9, 15, 26, 43, 68};
var seed = 29;
var i = 0;
while (i < 64) {
    seed = lcg(seed);
    inputs[i] = seed & 127;
    i = i + 1;
}
i = 0;
while (i < 64) {
    var magnitude = inputs[i];
    var level = 0;
    var t = 0;
    while (t < 8) {
        if (magnitude >= thresholds[t]) { level = t; }
        t = t + 1;
    }
    out[i] = level;
    i = i + 1;
}
""")

_kernel("jpeg", "media", "8-point integer DCT butterflies over image rows", _LCG + """
array block[64];
array coeffs[64];
var seed = 31;
var i = 0;
while (i < 64) {
    seed = lcg(seed);
    block[i] = (seed & 255) - 128;
    i = i + 1;
}
var row = 0;
while (row < 8) {
    var base = row * 8;
    var s07 = block[base] + block[base + 7];
    var d07 = block[base] - block[base + 7];
    var s16 = block[base + 1] + block[base + 6];
    var d16 = block[base + 1] - block[base + 6];
    var s25 = block[base + 2] + block[base + 5];
    var d25 = block[base + 2] - block[base + 5];
    var s34 = block[base + 3] + block[base + 4];
    var d34 = block[base + 3] - block[base + 4];
    coeffs[base] = s07 + s16 + s25 + s34;
    coeffs[base + 4] = s07 - s34 + s16 - s25;
    coeffs[base + 2] = (d07 * 3 + d34) >> 1;
    coeffs[base + 6] = (d07 - d34 * 3) >> 1;
    coeffs[base + 1] = d16 * 2 + d25;
    coeffs[base + 5] = d16 - d25 * 2;
    coeffs[base + 3] = s16 - s25 + d34;
    coeffs[base + 7] = d07 - d16 + d25;
    row = row + 1;
}
""")

_kernel("mpeg2", "media", "motion estimation: sum-of-absolute-differences search", _LCG + """
array frame[128];
array out[16];
var seed = 37;
var i = 0;
while (i < 128) {
    seed = lcg(seed);
    frame[i] = seed & 255;
    i = i + 1;
}
var best_sad = 1048576;
var best_offset = 0;
var offset = 0;
while (offset < 8) {
    var sad = 0;
    var p = 0;
    while (p < 16) {
        var diff = frame[p + 16] - frame[p + 48 + offset];
        if (diff < 0) { diff = 0 - diff; }
        sad = sad + diff;
        p = p + 1;
    }
    out[offset] = sad;
    if (sad < best_sad) { best_sad = sad; best_offset = offset; }
    offset = offset + 1;
}
out[8] = best_offset;
out[9] = best_sad;
""")

_kernel("gsm", "media", "LPC analysis: autocorrelation dot products", _LCG + """
array speech[64];
array out[8];
var seed = 43;
var i = 0;
while (i < 64) {
    seed = lcg(seed);
    speech[i] = ((seed & 63) - 32);
    i = i + 1;
}
var lag = 0;
while (lag < 8) {
    var acc = 0;
    var t = lag;
    while (t < 64) {
        acc = acc + speech[t] * speech[t - lag];
        t = t + 1;
    }
    out[lag] = acc >> 4;
    lag = lag + 1;
}
""")


_kernel("pegwit", "media", "public-key flavor: square-and-multiply modular exponentiation", _LCG + """
array bases[16];
array exps[16];
array out[16];
var seed = 91;
var i = 0;
while (i < 16) {
    seed = lcg(seed);
    bases[i] = (seed & 1023) | 1;
    seed = lcg(seed);
    exps[i] = seed & 255;
    i = i + 1;
}
i = 0;
while (i < 16) {
    var base = bases[i];
    var exponent = exps[i];
    var result = 1;
    var bit = 0;
    while (bit < 8) {
        result = (result * result) & 32767;
        if ((exponent >> (7 - bit)) & 1) {
            result = (result * base) & 32767;
        }
        bit = bit + 1;
    }
    out[i] = result;
    i = i + 1;
}
""")


#: All kernels, keyed by name, in suite order.
KERNELS: Dict[str, Kernel] = {kernel.name: kernel for kernel in _KERNELS}

#: Names grouped by suite (layout order of Figure 10).
SPEC_KERNELS: Tuple[str, ...] = tuple(
    k.name for k in _KERNELS if k.suite == "spec"
)
MEDIA_KERNELS: Tuple[str, ...] = tuple(
    k.name for k in _KERNELS if k.suite == "media"
)
