"""Benchmark workloads: SPEC CINT2000 / MediaBench stand-in kernels."""

from functools import lru_cache
from typing import Tuple

from repro.compiler import CompiledProgram, compile_source
from repro.workloads.generator import (
    WorkloadSpec,
    generate_compiled,
    generate_source,
)
from repro.workloads.programs import (
    KERNELS,
    MEDIA_KERNELS,
    SPEC_KERNELS,
    Kernel,
)

ALL_KERNELS: Tuple[str, ...] = SPEC_KERNELS + MEDIA_KERNELS


@lru_cache(maxsize=None)
def compile_kernel(name: str, mode: str = "ft") -> CompiledProgram:
    """Compile a kernel by name (cached -- kernels are immutable)."""
    kernel = KERNELS[name]
    return compile_source(kernel.source, mode=mode)


def kernel_source(name: str) -> str:
    return KERNELS[name].source


__all__ = [
    "ALL_KERNELS",
    "KERNELS",
    "Kernel",
    "MEDIA_KERNELS",
    "SPEC_KERNELS",
    "WorkloadSpec",
    "compile_kernel",
    "generate_compiled",
    "generate_source",
    "kernel_source",
]
