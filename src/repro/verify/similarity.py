"""Similarity relations between machine states (Figure 9).

``sim_Z`` relates a fault-free object to a faulty one: when ``Z`` is empty
the objects must be identical; when ``Z`` is a color ``c``, values tagged
``c`` may differ arbitrarily (they may have been corrupted) while everything
else must agree.  The store queue is a green structure, so its entries are
compared as green values (rule ``sim-Q``).

The Fault Tolerance checker uses these relations to compare faulty and
fault-free executions of the same program.
"""

from __future__ import annotations

from repro.core.colors import ColoredValue
from repro.core.state import MachineState, RegisterFile, Status, StoreQueue
from repro.core.colors import Color
from repro.types.syntax import ZapTag


def sim_value(left: ColoredValue, right: ColoredValue, zap: ZapTag) -> bool:
    """``v1 sim_Z v2`` -- rules ``sim-val`` and ``sim-val-zap``."""
    if left.color is not right.color:
        return False
    if zap is not None and left.color is zap:
        return True  # corrupted color: any payloads are related
    return left.value == right.value


def sim_registers(left: RegisterFile, right: RegisterFile, zap: ZapTag) -> bool:
    """``R sim_Z R'`` -- pointwise over every register (rule ``sim-R``)."""
    left_names = set(left.names())
    if left_names != set(right.names()):
        return False
    return all(sim_value(left.get(name), right.get(name), zap)
               for name in left_names)


def sim_queues(left: StoreQueue, right: StoreQueue, zap: ZapTag) -> bool:
    """``Q sim_Z Q'`` -- entries are green values (rules ``sim-Q*``)."""
    if len(left) != len(right):
        return False
    if zap is Color.GREEN:
        return True  # all entries are green, hence arbitrarily corrupted
    return left.pairs() == right.pairs()


def sim_states(left: MachineState, right: MachineState, zap: ZapTag) -> bool:
    """``S1 sim_Z S2`` -- rule ``sim-S``.

    Requires identical code, memory, current instruction and status, with
    registers and queue related by ``sim_Z``.
    """
    if left.status is not right.status:
        return False
    if left.status is not Status.RUNNING:
        # Terminal states carry no comparable components.
        return True
    return (
        left.code == right.code
        and left.memory == right.memory
        and left.ir == right.ir
        and sim_registers(left.regs, right.regs, zap)
        and sim_queues(left.queue, right.queue, zap)
    )


def similar_under_some_color(left: MachineState, right: MachineState) -> bool:
    """``exists c. S1 sim_c S2`` -- the post-fault relation of Theorem 4."""
    return sim_states(left, right, Color.GREEN) or \
        sim_states(left, right, Color.BLUE)
