"""Executable metatheory: similarity relations and theorem checkers."""

from repro.verify.similarity import (
    sim_queues,
    sim_registers,
    sim_states,
    sim_value,
    similar_under_some_color,
)
from repro.verify.theorems import (
    FaultToleranceReport,
    check_fault_tolerance,
    check_no_false_positives,
    check_preservation_under_fault,
    check_similarity_along_faulty_run,
    check_type_safety,
)
from repro.verify.typed_execution import (
    TheoremViolation,
    TypedExecution,
    TypedRun,
    zap_color_of,
)

__all__ = [
    "FaultToleranceReport",
    "TheoremViolation",
    "TypedExecution",
    "TypedRun",
    "check_fault_tolerance",
    "check_no_false_positives",
    "check_preservation_under_fault",
    "check_similarity_along_faulty_run",
    "check_type_safety",
    "sim_queues",
    "sim_registers",
    "sim_states",
    "sim_value",
    "similar_under_some_color",
    "zap_color_of",
]
