"""Typed execution: the executable form of Progress and Preservation.

A :class:`TypedExecution` runs a machine while re-establishing the
machine-state typing judgment ``|-_Z S`` before every small step:

* **Progress** (Theorem 1): a well-typed state always steps -- the runner
  treats :class:`~repro.core.errors.MachineStuck` as a theorem violation;
* **Preservation** (Theorem 2): the state reached by a non-faulty step is
  again well-typed under the same zap tag, and the state reached by a fault
  transition is well-typed under the corrupted color.

The existential substitution of rule ``S-t`` is threaded along execution:
at block entries (label addresses) it is re-inferred from the concrete
state, which is complete for the solved-form preconditions compilers emit;
inside blocks the binder does not change, so the substitution is reused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.colors import Color
from repro.core.errors import MachineStuck
from repro.core.faults import Fault, QueueZapAddress, QueueZapValue, RegZap, apply_fault
from repro.core.registers import PC_B, PC_G
from repro.core.semantics import OobPolicy, step
from repro.core.state import MachineState, Status
from repro.program import Program
from repro.types.code import CheckedProgram
from repro.types.errors import StateTypeError
from repro.types.states import check_state, infer_closing_subst
from repro.types.syntax import ZapTag


class TheoremViolation(AssertionError):
    """A metatheory check failed: the implementation contradicts the paper."""


def zap_color_of(state: MachineState, fault: Fault) -> Color:
    """The color corrupted by ``fault`` (queue entries are green)."""
    if isinstance(fault, RegZap):
        return state.regs.color(fault.reg)
    if isinstance(fault, (QueueZapAddress, QueueZapValue)):
        return Color.GREEN
    raise ValueError(f"unknown fault {fault!r}")


@dataclass
class TypedRun:
    """Outcome of a typed (theorem-checking) run."""

    status: Status
    steps: int
    outputs: List[Tuple[int, int]]
    checks: int  # number of successful |-_Z S re-derivations


class TypedExecution:
    """Steps a program while re-checking ``|-_Z S`` at every step."""

    def __init__(
        self,
        program: Program,
        checked: Optional[CheckedProgram] = None,
        oob_policy: OobPolicy = OobPolicy.TRAP,
        check_stride: int = 1,
    ):
        """``check_stride`` re-derives ``|-_Z S`` every N-th step (default:
        every step).  Striding keeps long verified runs affordable; the
        state right after boot, after every fault injection, and at stride
        points is always checked."""
        self.program = program
        self.checked = checked if checked is not None else program.check()
        self.state = program.boot()
        self.zap: ZapTag = None
        self.oob_policy = oob_policy
        self.check_stride = max(1, check_stride)
        self.outputs: List[Tuple[int, int]] = []
        self.steps = 0
        self.checks = 0
        entry_context = self.checked.contexts[program.entry]
        self.subst = infer_closing_subst(entry_context, self.state)

    # -- addressing ---------------------------------------------------------

    def current_address(self) -> Optional[int]:
        """The trusted program counter (the non-zapped color's)."""
        if self.zap is Color.GREEN:
            return self.state.regs.value(PC_B)
        if self.zap is Color.BLUE:
            return self.state.regs.value(PC_G)
        pc_g = self.state.regs.value(PC_G)
        pc_b = self.state.regs.value(PC_B)
        if pc_g != pc_b:
            raise TheoremViolation(
                "program counters disagree in a fault-free execution"
            )
        return pc_g

    # -- theorem checks -----------------------------------------------------

    def _refresh_subst_at_label(self) -> None:
        """Re-infer the closing substitution when sitting at a block entry.

        The binder changes at labels; inside a block it is stable, so the
        previous substitution continues to close the interior contexts.
        """
        if self.state.ir is not None:
            return
        address = self.current_address()
        if address in self.checked.labels:
            context = self.checked.contexts[address]
            self.subst = infer_closing_subst(context, self.state, self.zap)

    def check_current_state(self) -> None:
        """Re-derive ``|-_Z S`` for the current state."""
        address = self.current_address()
        context = self.checked.contexts.get(address)
        if context is None:
            raise TheoremViolation(
                f"execution reached untyped code address {address}"
            )
        try:
            check_state(
                self.checked.psi, self.program.code, context, self.subst,
                self.state, self.zap,
            )
        except StateTypeError as exc:
            raise TheoremViolation(
                f"Preservation violated at step {self.steps}, address "
                f"{address}: {exc}"
            ) from exc
        self.checks += 1

    # -- stepping -----------------------------------------------------------

    def inject(self, fault: Fault) -> None:
        """Apply a single fault transition; the zap tag becomes its color.

        Afterwards Preservation part 2 is checked: the faulty state must be
        well-typed under the new zap tag (unless the trusted pc left typed
        code, which only a pc-zap of the trusted color could cause -- and
        the zap color *is* that color, so the trusted pc is unaffected).
        """
        if self.zap is not None:
            raise MachineStuck("single-event-upset budget exhausted")
        color = zap_color_of(self.state, fault)
        apply_fault(self.state, fault)
        self.zap = color
        self._refresh_subst_at_label()
        self.check_current_state()

    def step(self) -> None:
        """One checked small step.

        The current state is re-checked *before* stepping (Preservation of
        the previous step / boot typing), then Progress is exercised.
        """
        if self.state.is_terminal:
            raise MachineStuck("cannot step a terminal state")
        self._refresh_subst_at_label()
        if self.steps % self.check_stride == 0:
            self.check_current_state()
        try:
            result = step(self.state, self.oob_policy)
        except MachineStuck as exc:
            raise TheoremViolation(
                f"Progress violated at step {self.steps}: {exc}"
            ) from exc
        if self.state.status is Status.FAULT_DETECTED and self.zap is None:
            raise TheoremViolation(
                f"No-False-Positives violated at step {self.steps}: rule "
                f"{result.rule} signalled a fault in a fault-free run"
            )
        self.outputs.extend(result.outputs)
        self.steps += 1

    def run(
        self,
        max_steps: int = 100_000,
        fault: Optional[Fault] = None,
        fault_at_step: int = 0,
    ) -> TypedRun:
        """Run to a terminal state (or ``max_steps``) with checks on."""
        pending = fault
        while self.steps < max_steps and not self.state.is_terminal:
            if pending is not None and self.steps == fault_at_step:
                self.inject(pending)
                pending = None
            if self.state.is_terminal:
                break
            self.step()
        return TypedRun(self.state.status, self.steps, list(self.outputs),
                        self.checks)
