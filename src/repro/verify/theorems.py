"""Executable statements of the paper's four theorems (Section 4).

These functions *test* the theorems on concrete programs (the paper proves
them once and for all; a Python reproduction can only check instances):

* :func:`check_type_safety`   -- Progress + Preservation along a fault-free
  run, by re-deriving ``|- S`` before every small step;
* :func:`check_no_false_positives` -- Corollary 3: a fault-free run of a
  well-typed program never enters the ``fault`` state;
* :func:`check_preservation_under_fault` -- Theorem 2 part 2: after a fault
  transition the state is well-typed under the corrupted color, and stays
  well-typed (or faults) thereafter;
* :func:`check_fault_tolerance` -- Theorem 4, via an exhaustive SEU
  campaign: every single-fault run's output is the reference sequence
  (masked) or a detected-prefix of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.faults import Fault
from repro.core.semantics import OobPolicy
from repro.core.state import Status
from repro.injection.campaign import (
    CampaignConfig,
    CampaignReport,
    FaultResult,
    run_campaign,
)
from repro.program import Program
from repro.types.code import CheckedProgram
from repro.verify.typed_execution import TheoremViolation, TypedExecution, TypedRun


def check_type_safety(
    program: Program,
    checked: Optional[CheckedProgram] = None,
    max_steps: int = 50_000,
    check_stride: int = 1,
) -> TypedRun:
    """Progress + Preservation + No-False-Positives on a fault-free run.

    Raises :class:`TheoremViolation` if any step gets stuck, any reached
    state fails ``|- S``, or the hardware claims a fault.
    ``check_stride`` thins the per-step ``|- S`` re-derivations on long
    runs (see :class:`TypedExecution`).
    """
    execution = TypedExecution(program, checked, check_stride=check_stride)
    run = execution.run(max_steps=max_steps)
    if run.status is Status.RUNNING:
        raise TheoremViolation(
            f"program did not terminate within {max_steps} steps; "
            "type-safety checking needs a bounded run"
        )
    return run


def check_no_false_positives(
    program: Program,
    max_steps: int = 50_000,
    check_stride: int = 1,
) -> TypedRun:
    """Corollary 3 on a fault-free run (also implied by type safety)."""
    run = check_type_safety(program, max_steps=max_steps,
                            check_stride=check_stride)
    if run.status is Status.FAULT_DETECTED:
        raise TheoremViolation(
            "hardware detected a fault during a fault-free run"
        )
    return run


def check_preservation_under_fault(
    program: Program,
    fault: Fault,
    fault_at_step: int,
    checked: Optional[CheckedProgram] = None,
    max_steps: int = 50_000,
    oob_policy: OobPolicy = OobPolicy.TRAP,
) -> TypedRun:
    """Theorem 2 part 2 for one specific fault.

    Runs with checking enabled, injecting ``fault`` before step
    ``fault_at_step``; every state after the fault is checked under the
    corrupted color's zap tag.
    """
    execution = TypedExecution(program, checked, oob_policy=oob_policy)
    return execution.run(
        max_steps=max_steps, fault=fault, fault_at_step=fault_at_step
    )


@dataclass
class FaultToleranceReport:
    """Outcome of a Theorem 4 check."""

    campaign: CampaignReport
    violations: List[str]

    @property
    def holds(self) -> bool:
        return not self.violations


def check_fault_tolerance(
    program: Program,
    config: Optional[CampaignConfig] = None,
    require_typed: bool = True,
) -> FaultToleranceReport:
    """Theorem 4 via an injection campaign.

    When ``require_typed`` is set the program is type-checked first -- the
    theorem only speaks about well-typed programs.  Returns a report whose
    :attr:`~FaultToleranceReport.holds` is True iff no faulty run silently
    corrupted output, got stuck, or overran its budget.
    """
    if require_typed:
        program.check()
    campaign = run_campaign(program, config)
    violations = [
        f"step {record.step}: {record.fault.describe()} -> "
        f"{record.result.value} (outputs {list(record.outputs)[:8]})"
        for record in campaign.violations
    ]
    return FaultToleranceReport(campaign=campaign, violations=violations)


def check_similarity_along_faulty_run(
    program: Program,
    fault: Fault,
    fault_at_step: int,
    max_steps: int = 100_000,
) -> int:
    """Theorem 4 part 1, in its strong (stepwise simulation) form.

    Runs the fault-free and the faulty execution side by side.  The fault
    transition consumes no machine step here, so the two runs stay aligned
    step-for-step; after the fault, every pair of states must be related by
    ``sim_c`` for the corrupted color ``c`` until the faulty run either
    terminates (same outputs) or enters the ``fault`` state (prefix
    outputs).  Returns the number of state pairs compared.

    Raises :class:`TheoremViolation` if the simulation relation breaks.
    """
    from repro.core.machine import Machine
    from repro.core.state import Status
    from repro.verify.similarity import sim_states
    from repro.verify.typed_execution import zap_color_of

    reference = Machine(program.boot())
    faulty = Machine(program.boot())
    zap = None
    compared = 0
    outputs_ref: List = []
    outputs_faulty: List = []
    for step_index in range(max_steps):
        if step_index == fault_at_step:
            zap = zap_color_of(faulty.state, fault)
            faulty.inject(fault)
        if faulty.state.status is Status.FAULT_DETECTED:
            if outputs_faulty != outputs_ref[: len(outputs_faulty)]:
                raise TheoremViolation(
                    "detected run's outputs are not a prefix of the "
                    "reference outputs"
                )
            return compared
        if faulty.state.is_terminal and reference.state.is_terminal:
            if outputs_faulty != outputs_ref:
                raise TheoremViolation(
                    "masked faulty run produced different outputs"
                )
            return compared
        if zap is not None:
            if not sim_states(reference.state, faulty.state, zap):
                raise TheoremViolation(
                    f"states not similar under sim_{zap} at step {step_index}"
                )
            compared += 1
        if reference.state.is_terminal or faulty.state.is_terminal:
            raise TheoremViolation(
                "faulty and reference runs terminated at different steps "
                "without a detected fault"
            )
        outputs_ref.extend(reference.step().outputs)
        outputs_faulty.extend(faulty.step().outputs)
    raise TheoremViolation("similarity check exceeded the step budget")
