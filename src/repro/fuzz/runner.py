"""The fuzz campaign loop behind ``talft fuzz``.

Deterministic end to end: program ``index`` of a run is generated from
``random.Random(f"fuzz:{seed}:{index}")`` (the campaign engine's
string-seeding convention), the oracle's campaign matrix is seeded from
:class:`repro.fuzz.oracle.OracleConfig`, and the minimizer is greedy --
so ``talft fuzz --programs N --seed S`` reproduces byte-identical
findings on any machine, and any single finding replays from just
``(seed, index)``.

Failures are persisted to the corpus (original + minimized reproducer +
JSON sidecars) and summarized in a :class:`FuzzReport`.  Observability
rides the PR-5 rails: ``fuzz.*`` counters and histograms in the metrics
registry, a :class:`ProgressReporter` heartbeat, and structured events.
"""

from __future__ import annotations

import dataclasses
import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fuzz.corpus import Corpus
from repro.fuzz.generator import PROFILES, FuzzProgram, generate_program
from repro.fuzz.minimize import minimize_program
from repro.fuzz.oracle import OracleConfig, OracleVerdict, check_program
from repro.observe import ProgressReporter, emit, get_registry


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz run: how many programs, from which seed, checked how."""

    programs: int = 100
    seed: int = 0
    #: Force one generator profile (``None`` = rotate pseudo-randomly).
    profile: Optional[str] = None
    #: Force ``"mwl"`` or ``"tal"`` (``None`` = mix by ``tal_fraction``).
    kind: Optional[str] = None
    tal_fraction: float = 0.25
    #: Corpus directory for failures/repros (``None`` = don't persist).
    corpus_dir: Optional[str] = None
    #: Delta-debug each failure down to a minimal reproducer.
    minimize: bool = True
    max_minimize_checks: int = 250
    #: Stop after this many failing programs (0 = never stop early).
    max_failures: int = 10
    oracle: OracleConfig = field(default_factory=OracleConfig)
    progress: bool = False

    def __post_init__(self) -> None:
        if self.programs < 1:
            raise ValueError("programs must be >= 1")
        if self.profile is not None and self.profile not in PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r}; "
                f"choose from {sorted(PROFILES)}")
        if self.kind not in (None, "mwl", "tal"):
            raise ValueError("kind must be 'mwl' or 'tal'")
        if not 0.0 <= self.tal_fraction <= 1.0:
            raise ValueError("tal_fraction must be within [0, 1]")


@dataclass(frozen=True)
class FuzzFailure:
    """One program the oracle rejected (plus its minimized form)."""

    program: FuzzProgram
    index: int
    stage: str
    detail: str
    minimized_source: Optional[str] = None
    minimize_checks: int = 0


@dataclass
class FuzzReport:
    """What one fuzz run established."""

    config: FuzzConfig
    programs: int = 0
    ok: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    #: Verdict-stage histogram over all programs ("ok" included).
    by_stage: Dict[str, int] = field(default_factory=dict)
    by_profile: Dict[str, int] = field(default_factory=dict)
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: Faulty runs classified across every oracle campaign matrix.
    injections: int = 0
    elapsed: float = 0.0
    stopped_early: bool = False

    @property
    def failed(self) -> int:
        return len(self.failures)

    def summary(self) -> Dict[str, object]:
        return {
            "seed": self.config.seed,
            "programs": self.programs,
            "ok": self.ok,
            "failed": self.failed,
            "by_stage": dict(sorted(self.by_stage.items())),
            "by_profile": dict(sorted(self.by_profile.items())),
            "by_kind": dict(sorted(self.by_kind.items())),
            "injections": self.injections,
            "elapsed_seconds": round(self.elapsed, 3),
            "stopped_early": self.stopped_early,
            "failures": [
                {
                    "name": failure.program.name,
                    "index": failure.index,
                    "stage": failure.stage,
                    "detail": failure.detail,
                    "minimized": failure.minimized_source is not None,
                }
                for failure in self.failures
            ],
        }


def _normalize_detail(detail: str) -> str:
    return re.sub(r"\d+", "#", detail)


def _minimize_failure(program: FuzzProgram, verdict: OracleVerdict,
                      config: FuzzConfig):
    """Shrink ``program`` preserving "fails the same way".

    For deep stages (differential, fingerprint, theorems...) "the same
    way" is the oracle stage: details quote registers and values that
    legitimately change as the program shrinks.  For front-end stages the
    diagnostic text is stable (modulo line numbers), and stage-only
    matching would let the reducer drift onto an unrelated error of the
    same kind -- e.g. shrink an undeclared-variable repro into a
    degenerate program whose *array* is undeclared."""
    pinned = verdict.stage in ("parse", "check-source")
    wanted = _normalize_detail(verdict.detail)

    def predicate(source: str) -> bool:
        candidate = dataclasses.replace(program, source=source)
        result = check_program(candidate, config.oracle)
        if result.stage != verdict.stage:
            return False
        return _normalize_detail(result.detail) == wanted if pinned else True

    return minimize_program(program, predicate,
                            max_checks=config.max_minimize_checks)


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Generate, verify and (on failure) minimize+persist ``config.programs``
    programs; returns the aggregate :class:`FuzzReport`."""
    registry = get_registry()
    oracle_seconds = registry.histogram("fuzz.oracle.seconds")
    report = FuzzReport(config=config)
    corpus = Corpus(config.corpus_dir) if config.corpus_dir else None
    reporter = ProgressReporter(config.programs, label="fuzz",
                                unit="programs") if config.progress else None
    started = time.perf_counter()
    for index in range(config.programs):
        program = generate_program(
            config.seed, index, profile=config.profile, kind=config.kind,
            tal_fraction=config.tal_fraction)
        verdict = check_program(program, config.oracle)
        report.programs += 1
        report.injections += verdict.injections
        report.by_stage[verdict.stage] = \
            report.by_stage.get(verdict.stage, 0) + 1
        report.by_profile[program.profile] = \
            report.by_profile.get(program.profile, 0) + 1
        report.by_kind[program.kind] = \
            report.by_kind.get(program.kind, 0) + 1
        registry.counter("fuzz.programs", stage=verdict.stage).inc()
        oracle_seconds.observe(verdict.elapsed)
        if verdict.ok:
            report.ok += 1
        else:
            emit("fuzz-failure", name=program.name, index=index,
                 stage=verdict.stage, detail=verdict.detail)
            failure = FuzzFailure(program=program, index=index,
                                  stage=verdict.stage, detail=verdict.detail)
            if corpus is not None:
                corpus.save("failures", program, {
                    "index": index,
                    "stage": verdict.stage,
                    "detail": verdict.detail,
                    "fingerprints": verdict.fingerprints,
                })
            if config.minimize:
                result = _minimize_failure(program, verdict, config)
                minimized = dataclasses.replace(
                    result.program, name=f"{program.name}_min")
                failure = dataclasses.replace(
                    failure, minimized_source=minimized.source,
                    minimize_checks=result.checks)
                if corpus is not None:
                    corpus.save("minimized", minimized, {
                        "index": index,
                        "stage": verdict.stage,
                        "detail": verdict.detail,
                        "minimize_checks": result.checks,
                        "original": program.name,
                    })
            report.failures.append(failure)
            if config.max_failures and \
                    report.failed >= config.max_failures:
                report.stopped_early = True
                if reporter is not None:
                    reporter.advance()
                break
        if reporter is not None:
            reporter.advance()
    report.elapsed = time.perf_counter() - started
    if reporter is not None:
        reporter.finish()
    if corpus is not None:
        corpus.write_manifest(
            f"manifest_{config.seed}", report.summary())
    emit("fuzz-finished", **{key: value for key, value in
                             report.summary().items()
                             if key != "failures"})
    return report
