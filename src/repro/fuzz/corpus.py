"""The persisted fuzz corpus: programs on disk, replayable forever.

A corpus is a plain directory -- sources as text, metadata as JSON --
so repros survive refactors of the fuzzer itself and diff readably in
review:

.. code-block:: text

    corpus/
      failures/       original failing programs, as generated
      minimized/      the delta-debugged reproducers
      seeds/          interesting passing programs worth keeping
      <name>.json     run manifests written by the runner

Each stored program is a ``<name>.mwl`` / ``<name>.tal`` source file
plus a ``<name>.json`` sidecar (kind, profile, seed, oracle stage and
detail...).  ``corpus/regressions`` in the repository root is such a
directory under version control: every divergence the fuzzer ever found
lands there minimized, and ``tests/test_fuzz.py`` replays all entries
through the oracle on every run -- a ratchet against reintroducing
fixed bugs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.fuzz.generator import FuzzProgram

_EXTENSIONS = {"mwl": ".mwl", "tal": ".tal"}
_CATEGORIES = ("failures", "minimized", "seeds")


@dataclass(frozen=True)
class CorpusEntry:
    """One stored program plus its sidecar metadata."""

    category: str
    program: FuzzProgram
    meta: Dict[str, object]
    path: Path


class Corpus:
    """Read/write view of one corpus directory (created lazily)."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # -- writing ----------------------------------------------------------

    def save(self, category: str, program: FuzzProgram,
             meta: Optional[Dict[str, object]] = None) -> Path:
        """Persist ``program`` under ``category``; returns the source
        path.  Saving the same name twice overwrites (deterministic
        generation makes that a re-run, not a collision)."""
        if category not in _CATEGORIES:
            raise ValueError(f"unknown corpus category {category!r}")
        directory = self.root / category
        directory.mkdir(parents=True, exist_ok=True)
        extension = _EXTENSIONS.get(program.kind)
        if extension is None:
            raise ValueError(f"unknown program kind {program.kind!r}")
        source_path = directory / f"{program.name}{extension}"
        source_path.write_text(program.source, encoding="utf-8")
        sidecar = {
            "name": program.name,
            "kind": program.kind,
            "profile": program.profile,
            "seed": program.seed,
        }
        sidecar.update(meta or {})
        (directory / f"{program.name}.json").write_text(
            json.dumps(sidecar, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return source_path

    def write_manifest(self, name: str, payload: Dict[str, object]) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return path

    # -- reading ----------------------------------------------------------

    def entries(self, categories: Optional[Iterable[str]] = None
                ) -> List[CorpusEntry]:
        """Every stored program, sorted by (category, name)."""
        found: List[CorpusEntry] = []
        for category in (categories or _CATEGORIES):
            directory = self.root / category
            if not directory.is_dir():
                continue
            for source_path in sorted(directory.iterdir()):
                kind = {v: k for k, v in _EXTENSIONS.items()}.get(
                    source_path.suffix)
                if kind is None:
                    continue
                meta: Dict[str, object] = {}
                sidecar = source_path.with_suffix(".json")
                if sidecar.is_file():
                    meta = json.loads(sidecar.read_text(encoding="utf-8"))
                program = FuzzProgram(
                    name=source_path.stem,
                    kind=kind,
                    source=source_path.read_text(encoding="utf-8"),
                    profile=str(meta.get("profile", "mixed")),
                    seed=meta.get("seed"),  # type: ignore[arg-type]
                )
                found.append(CorpusEntry(category=category, program=program,
                                         meta=meta, path=source_path))
        return found

    def __len__(self) -> int:
        return len(self.entries())
