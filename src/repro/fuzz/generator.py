"""Seeded generators of random well-typed programs.

Two program kinds come out of here, both guaranteed terminating by
construction:

* **MWL** source (:func:`generate_mwl`): random arithmetic expression
  trees over the full operator set, nested counter-bounded loops,
  if/else diamonds, multiple arrays (power-of-two and ragged sizes, so
  storage rounding is exercised), var/var and array aliasing, edge-case
  constants, and non-recursive inlinable functions that may write arrays.
  Loops only ever take the shape ``var c = 0; while (c < K) {...; c = c +
  1; }`` with the counter excluded from every other assignment, so every
  generated program terminates.

* **TAL_FT** assembly (:func:`generate_tal`): direct typed-block
  generation in the spirit of the mechanized TAL-0 metatheory --
  straight-line blocks that replicate constants and arithmetic across the
  green/blue register pairs and store through the queue discipline, plus
  countdown-style loop programs exercising the two-phase branch and jump
  rules with quantified preconditions.

Multiplications and shifts inside loops mask their operands (``& 0xffff``)
so accumulated values stay machine-scale across iterations; top-level
expressions occasionally multiply raw edge constants (up to ``1 << 40``)
to push lanes across the vector backend's overflow screen and force its
per-lane scalar fallback.

Everything is driven by one :class:`random.Random` -- the same seed
regenerates the same program, which is what the corpus stores.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

#: Constants chosen to sit on behavior boundaries: zero/sign edges, the
#: data-array masks, byte edges, and values big enough to cross the
#: vector backend's |v| <= 2^61 overflow screen when multiplied.
EDGE_CONSTANTS: Tuple[int, ...] = (
    0, 1, -1, 2, 3, 5, 7, 8, 15, 16, 63, 64, 100, 255, -255, 4096,
    1 << 20, -(1 << 20), 1 << 40,
)

#: Mask applied to multiply/shift operands inside loops (keeps repeated
#: squaring from exploding into million-bit integers).
_LOOP_MUL_MASK = 0xFFFF

#: Array sizes: powers of two and ragged sizes (storage rounds up).
_ARRAY_SIZES: Tuple[int, ...] = (1, 2, 3, 4, 5, 7, 8, 12, 16, 64)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for one random program."""

    #: Statements per body (top level and nested blocks).
    max_stmts: int = 6
    #: Expression tree depth.
    max_expr_depth: int = 3
    #: Declared arrays (at least 1; writes are the observable output).
    max_arrays: int = 3
    #: Global scalars.
    max_globals: int = 3
    #: Inlinable functions (0 disables calls).
    max_functions: int = 2
    #: Loop nesting depth (0 disables loops).
    max_loop_nest: int = 2
    #: Iterations per loop (small: dynamic cost multiplies per nest).
    max_iterations: int = 5
    #: If/else permission.
    allow_branches: bool = True
    #: Rough cap on interpreted dynamic statements (loops are skipped
    #: when their worst case would cross it).
    max_dynamic_cost: int = 3_000
    #: Operation groups in a straight-line TAL block.
    tal_max_groups: int = 10


#: Named knob profiles -- the generator dimension the bench reports by.
PROFILES = {
    "straightline": GeneratorConfig(max_stmts=8, max_loop_nest=0,
                                    allow_branches=False, max_functions=0),
    "branchy": GeneratorConfig(max_stmts=5, max_loop_nest=0,
                               max_functions=0),
    "loopy": GeneratorConfig(max_stmts=4, max_loop_nest=2,
                             max_functions=0),
    "calls": GeneratorConfig(max_stmts=4, max_loop_nest=1,
                             max_functions=2),
    "mixed": GeneratorConfig(),
}


@dataclass(frozen=True)
class FuzzProgram:
    """One generated program, ready for the oracle."""

    name: str
    #: ``"mwl"`` (compiler path) or ``"tal"`` (direct typed assembly).
    kind: str
    source: str
    profile: str = "mixed"
    seed: Optional[int] = None


# ---------------------------------------------------------------------------
# MWL generation
# ---------------------------------------------------------------------------


@dataclass
class _Scope:
    """Names visible at the current generation point."""

    #: Scalars readable AND assignable (globals + locals).
    scalars: List[str] = field(default_factory=list)
    #: Readable but never assigned (loop counters, function params).
    readonly: List[str] = field(default_factory=list)

    def readable(self) -> List[str]:
        return self.scalars + self.readonly

    def child(self) -> "_Scope":
        return _Scope(list(self.scalars), list(self.readonly))


class _MwlGen:
    def __init__(self, rng: random.Random, config: GeneratorConfig):
        self.rng = rng
        self.config = config
        self.counters = {}
        #: (name, declared size) of every array.
        self.arrays: List[Tuple[str, int]] = []
        #: (name, arity) of generated functions (all return a value).
        self.functions: List[Tuple[str, int]] = []
        self.lines: List[str] = []

    def fresh(self, prefix: str) -> str:
        index = self.counters.get(prefix, 0)
        self.counters[prefix] = index + 1
        return f"{prefix}{index}"

    def constant(self) -> int:
        rng = self.rng
        if rng.random() < 0.75:
            return rng.choice(EDGE_CONSTANTS)
        return rng.randint(-512, 512)

    # -- expressions --------------------------------------------------------

    def expr(self, depth: int, scope: _Scope, in_loop: bool) -> str:
        rng = self.rng
        readable = scope.readable()
        leafy = depth <= 0 or rng.random() < 0.3
        if leafy:
            if readable and rng.random() < 0.6:
                return rng.choice(readable)
            return str(self.constant())
        roll = rng.random()
        if self.arrays and roll < 0.2:
            name, _size = rng.choice(self.arrays)
            return f"{name}[{self.expr(depth - 1, scope, in_loop)}]"
        if self.functions and roll < 0.3:
            func, arity = rng.choice(self.functions)
            args = ", ".join(self.expr(depth - 1, scope, in_loop)
                             for _ in range(arity))
            return f"{func}({args})"
        if roll < 0.38:
            op = rng.choice(("-", "!"))
            return f"{op}({self.expr(depth - 1, scope, in_loop)})"
        op = rng.choice(("+", "-", "*", "&", "|", "^", "<<", ">>",
                        "==", "!=", "<", "<=", ">", ">=", "&&", "||"))
        left = self.expr(depth - 1, scope, in_loop)
        if op in ("<<", ">>"):
            # Bounded shift amounts; the machine clamps at 63 anyway, but
            # small counts keep the values arithmetic-scale.
            return f"({left} {op} {rng.randint(0, 8)})"
        right = self.expr(depth - 1, scope, in_loop)
        if op == "*" and (in_loop or rng.random() < 0.7):
            # Masked multiplication: repeated squaring under a loop would
            # otherwise grow million-bit values.  The unmasked variant
            # survives at top level to stress the vector overflow screen.
            return f"(({left} & {_LOOP_MUL_MASK}) * "\
                   f"({right} & {_LOOP_MUL_MASK}))"
        return f"({left} {op} {right})"

    # -- statements ---------------------------------------------------------

    def body(self, indent: int, scope: _Scope, budget: int, nest: int,
             cost_mult: int, in_function: bool) -> List[str]:
        """Generate up to ``budget`` statements at ``indent``."""
        rng = self.rng
        pad = "    " * indent
        lines: List[str] = []
        count = rng.randint(1, max(1, budget))
        in_loop = cost_mult > 1
        for _ in range(count):
            roll = rng.random()
            depth = rng.randint(1, self.config.max_expr_depth)
            if roll < 0.16:
                name = self.fresh("v")
                lines.append(f"{pad}var {name} = "
                             f"{self.expr(depth, scope, in_loop)};")
                scope.scalars.append(name)
            elif roll < 0.40 and scope.scalars:
                target = rng.choice(scope.scalars)
                if rng.random() < 0.2 and len(scope.readable()) > 1:
                    # Pure aliasing: copy one scalar into another.
                    source = rng.choice(
                        [n for n in scope.readable() if n != target])
                    lines.append(f"{pad}{target} = {source};")
                else:
                    lines.append(f"{pad}{target} = "
                                 f"{self.expr(depth, scope, in_loop)};")
            elif roll < 0.62 and self.arrays:
                name, _size = rng.choice(self.arrays)
                index = self.expr(min(2, depth), scope, in_loop)
                value = self.expr(depth, scope, in_loop)
                lines.append(f"{pad}{name}[{index}] = {value};")
            elif roll < 0.78 and self.config.allow_branches:
                cond = self.expr(depth, scope, in_loop)
                lines.append(f"{pad}if ({cond}) {{")
                lines.extend(self.body(indent + 1, scope.child(),
                                       budget // 2 + 1, nest, cost_mult,
                                       in_function))
                if rng.random() < 0.5:
                    lines.append(f"{pad}}} else {{")
                    lines.extend(self.body(indent + 1, scope.child(),
                                           budget // 2 + 1, nest,
                                           cost_mult, in_function))
                lines.append(f"{pad}}}")
            elif roll < 0.92 and nest < self.config.max_loop_nest \
                    and cost_mult * self.config.max_iterations * 4 \
                    <= self.config.max_dynamic_cost:
                iters = rng.randint(1, self.config.max_iterations)
                counter = self.fresh("c")
                lines.append(f"{pad}var {counter} = 0;")
                lines.append(f"{pad}while ({counter} < {iters}) {{")
                inner = scope.child()
                inner.readonly.append(counter)
                lines.extend(self.body(indent + 1, inner,
                                       budget // 2 + 1, nest + 1,
                                       cost_mult * max(1, iters),
                                       in_function))
                lines.append(f"{pad}    {counter} = {counter} + 1;")
                lines.append(f"{pad}}}")
            elif self.functions:
                func, arity = rng.choice(self.functions)
                args = ", ".join(self.expr(1, scope, in_loop)
                                 for _ in range(arity))
                lines.append(f"{pad}{func}({args});")
            elif scope.scalars:
                target = rng.choice(scope.scalars)
                lines.append(f"{pad}{target} = "
                             f"{self.expr(depth, scope, in_loop)};")
        return lines

    def function(self) -> List[str]:
        rng = self.rng
        name = self.fresh("f")
        params = [self.fresh("p") for _ in range(rng.randint(0, 3))]
        scope = _Scope(scalars=[g for g, _ in self._globals],
                       readonly=list(params))
        lines = [f"fn {name}({', '.join(params)}) {{"]
        lines.extend(self.body(1, scope, 3, self.config.max_loop_nest,
                               1, in_function=True))
        lines.append(f"    return {self.expr(2, scope, False)};")
        lines.append("}")
        # Registered only after its body is generated: no recursion.
        self.functions.append((name, len(params)))
        return lines

    def program(self) -> str:
        rng = self.rng
        config = self.config
        self._globals: List[Tuple[str, int]] = []
        lines: List[str] = []
        for _ in range(rng.randint(1, max(1, config.max_globals))):
            name = self.fresh("g")
            value = self.constant()
            self._globals.append((name, value))
            lines.append(f"var {name} = {value};")
        for _ in range(rng.randint(1, max(1, config.max_arrays))):
            name = self.fresh("a")
            size = rng.choice(_ARRAY_SIZES)
            self.arrays.append((name, size))
            init_len = rng.choice((0, min(size, 2), size))
            if init_len:
                init = ", ".join(str(self.constant())
                                 for _ in range(init_len))
                lines.append(f"array {name}[{size}] = {{{init}}};")
            else:
                lines.append(f"array {name}[{size}];")
        for _ in range(rng.randint(0, config.max_functions)):
            lines.extend(self.function())
        scope = _Scope(scalars=[g for g, _ in self._globals])
        lines.extend(self.body(0, scope, config.max_stmts, 0, 1,
                               in_function=False))
        # Guaranteed observable output: flush live scalars into the first
        # array so even a store-free random body has a differential
        # signal.
        sink, size = self.arrays[0]
        flushed = scope.readable()[:min(4, size)]
        for index, name in enumerate(flushed):
            lines.append(f"{sink}[{index}] = {name};")
        if not flushed:
            lines.append(f"{sink}[0] = {self.constant()};")
        return "\n".join(lines) + "\n"


def generate_mwl(rng: random.Random,
                 config: Optional[GeneratorConfig] = None) -> str:
    """One random, semantically valid, terminating MWL program."""
    return _MwlGen(rng, config or GeneratorConfig()).program()


# ---------------------------------------------------------------------------
# Direct TAL_FT generation
# ---------------------------------------------------------------------------

#: Green/blue register pairs used as replicated value slots (odd = green,
#: even = blue, the convention of the hand-written examples); (r7, r8)
#: stay free as the store-address scratch pair.
_TAL_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("r1", "r2"), ("r3", "r4"), ("r5", "r6"),
)

#: Data segment base address (past the code region, as the examples use).
_TAL_DATA_BASE = 256


def _tal_straight(rng: random.Random, config: GeneratorConfig,
                  addresses: Sequence[int]) -> List[str]:
    """Straight-line block: replicated constants/arithmetic + paired
    stores through the queue discipline."""
    lines = ["main:", "  .pre [m: mem] { rest: zero } mem m"]
    groups = rng.randint(2, max(2, config.tal_max_groups))
    #: Pairs whose green/blue halves currently hold equal values (every
    #: group preserves this replication invariant).
    for green, blue in _TAL_PAIRS:
        value = rng.choice(EDGE_CONSTANTS[:12])
        lines.append(f"  mov {green}, G {value}")
        lines.append(f"  mov {blue}, B {value}")
    for _ in range(groups):
        kind = rng.random()
        dest = rng.choice(_TAL_PAIRS)
        if kind < 0.35:
            value = rng.choice(EDGE_CONSTANTS[:12])
            lines.append(f"  mov {dest[0]}, G {value}")
            lines.append(f"  mov {dest[1]}, B {value}")
        elif kind < 0.75:
            op = rng.choice(("add", "sub", "mul"))
            source = rng.choice(_TAL_PAIRS)
            if rng.random() < 0.5:
                value = rng.choice((1, 2, 3, 5, 7, 16))
                lines.append(f"  {op} {dest[0]}, {source[0]}, G {value}")
                lines.append(f"  {op} {dest[1]}, {source[1]}, B {value}")
            else:
                other = rng.choice(_TAL_PAIRS)
                lines.append(
                    f"  {op} {dest[0]}, {source[0]}, {other[0]}")
                lines.append(
                    f"  {op} {dest[1]}, {source[1]}, {other[1]}")
        else:
            address = rng.choice(addresses)
            lines.append(f"  mov r7, G {address}")
            lines.append(f"  mov r8, B {address}")
            lines.append(f"  stG r7, {dest[0]}")
            lines.append(f"  stB r8, {dest[1]}")
    lines.append("  halt")
    return lines


def _tal_countdown(rng: random.Random,
                   addresses: Sequence[int]) -> List[str]:
    """Countdown-style typed loop: two-phase bz/jmp with quantified
    preconditions, structure from ``examples/programs/countdown.tal``
    with randomized count and store address."""
    count = rng.randint(1, 4)
    address = rng.choice(addresses)
    return [
        "main:",
        "  .pre [m: mem] { rest: zero } mem m",
        f"  mov r1, G {count}",
        f"  mov r2, B {count}",
        "  mov r4, B 0",
        "  mov r6, B 0",
        "  mov r8, B 0",
        "",
        "loop:",
        "  .pre [ml: mem, n: int, l3: int, l4: int, l5: int, l6: int, "
        "l7: int, l8: int] {",
        "      r1: (G, int, n), r2: (B, int, n),",
        "      r3: (G, int, l3), r4: (B, int, l4),",
        "      r5: (G, int, l5), r6: (B, int, l6),",
        "      r7: (G, int, l7), r8: (B, int, l8)",
        "  } queue [] mem ml",
        f"  mov r3, G {address}",
        f"  mov r4, B {address}",
        "  stG r3, r1",
        "  stB r4, r2",
        "  sub r1, r1, G 1",
        "  sub r2, r2, B 1",
        "  mov r5, G @done",
        "  mov r6, B @done",
        "  bzG r1, r5",
        "  bzB r2, r6",
        "  mov r7, G @loop",
        "  mov r8, B @loop",
        "  jmpG r7",
        "  jmpB r8",
        "",
        "done:",
        "  .pre [md: mem, d1: int, d2: int, d3: int, d4: int,",
        "        d5: int, d6: int, d7: int, d8: int] {",
        "      r1: (G, int, d1), r2: (B, int, d2),",
        "      r3: (G, int, d3), r4: (B, int, d4),",
        "      r5: (G, int, d5), r6: (B, int, d6),",
        "      r7: (G, int, d7), r8: (B, int, d8)",
        "  } queue [] mem md",
        "  halt",
    ]


def generate_tal(rng: random.Random,
                 config: Optional[GeneratorConfig] = None) -> str:
    """One random well-typed TAL_FT program (textual assembly)."""
    config = config or GeneratorConfig()
    words = rng.randint(1, 4)
    addresses = [_TAL_DATA_BASE + index for index in range(words)]
    lines = [
        "; fuzz-generated TAL_FT program",
        ".gprs 8",
        ".data",
    ]
    for address in addresses:
        lines.append(f"  word {address} = {rng.choice(EDGE_CONSTANTS[:12])}")
    lines.append("")
    lines.append(".code")
    if rng.random() < 0.6:
        lines.extend(_tal_straight(rng, config, addresses))
    else:
        lines.extend(_tal_countdown(rng, addresses))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def generate_program(
    seed: int,
    index: int = 0,
    profile: Optional[str] = None,
    kind: Optional[str] = None,
    tal_fraction: float = 0.25,
) -> FuzzProgram:
    """The ``index``-th program of a fuzz run seeded with ``seed``.

    Seeding follows the campaign engine's convention (one RNG per unit of
    work, derived from ``(seed, index)`` with string seeding) so any
    subset of a run regenerates byte-identical programs.
    """
    rng = random.Random(f"fuzz:{seed}:{index}")
    if kind is None:
        kind = "tal" if rng.random() < tal_fraction else "mwl"
    if profile is None:
        profile = rng.choice(sorted(PROFILES))
    config = PROFILES[profile]
    if kind == "tal":
        source = generate_tal(rng, config)
    elif kind == "mwl":
        source = generate_mwl(rng, config)
    else:
        raise ValueError(f"unknown program kind {kind!r}")
    return FuzzProgram(name=f"fuzz_{seed}_{index}_{profile}_{kind}",
                       kind=kind, source=source, profile=profile,
                       seed=seed)
