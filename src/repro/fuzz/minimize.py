"""Delta-debugging minimizer for failing fuzz programs.

Given a program the oracle rejects and a *predicate* (``source -> bool``,
true when the failure is preserved -- typically "the oracle fails at the
same stage"), :func:`minimize_program` greedily shrinks the program while
the predicate stays true and returns the smallest reproducer found.

MWL programs are reduced **structurally**: the source is parsed once and
every candidate is an AST edit re-rendered through
:func:`repro.lang.format_source`, so candidates are syntactically valid
by construction and the predicate only rejects semantic regressions
(e.g. deleting the statement the bug needs).  The passes, in order:

* drop top-level items (functions, arrays, globals, array initializers);
* delete statement chunks ddmin-style (whole bodies first, then halves,
  down to single statements);
* hoist block bodies (replace ``if``/``while`` by their straight-line
  contents);
* simplify expressions (replace a subtree by one of its operands or by
  ``0``; halve integer literals toward zero).

Every accepted edit strictly shrinks the AST, so the loop terminates
without a fuel argument; ``max_checks`` bounds predicate calls anyway
because each call replays the (comparatively expensive) oracle.

TAL programs have no AST here, so they get classic line-chunk ddmin: the
type checker inside the predicate rejects ill-formed candidates.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List, Sequence

from repro.lang import format_source, parse_source
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    Binary,
    Call,
    Expr,
    ExprStmt,
    If,
    Index,
    IntLit,
    Return,
    SourceProgram,
    Unary,
    VarDecl,
    While,
)

Predicate = Callable[[str], bool]

#: Default bound on predicate (= oracle) invocations per minimization.
DEFAULT_MAX_CHECKS = 250


# ---------------------------------------------------------------------------
# Generic AST plumbing: numbered bodies and numbered expressions
# ---------------------------------------------------------------------------


def _transform_bodies(program: SourceProgram, visit) -> SourceProgram:
    """Rebuild ``program`` passing every statement body (innermost first)
    through ``visit(body) -> body``.  Traversal order is deterministic,
    which is what the counter-targeted edits below rely on."""

    def walk_body(body):
        walked = tuple(walk_stmt(stmt) for stmt in body)
        return tuple(visit(walked))

    def walk_stmt(stmt):
        if isinstance(stmt, If):
            return dataclasses.replace(
                stmt,
                then_body=walk_body(stmt.then_body),
                else_body=walk_body(stmt.else_body))
        if isinstance(stmt, While):
            return dataclasses.replace(stmt, body=walk_body(stmt.body))
        return stmt

    return dataclasses.replace(
        program,
        functions=tuple(
            dataclasses.replace(fn, body=walk_body(fn.body))
            for fn in program.functions),
        main=walk_body(program.main))


def _list_bodies(program: SourceProgram) -> List[tuple]:
    bodies: List[tuple] = []

    def visit(body):
        bodies.append(body)
        return body

    _transform_bodies(program, visit)
    return bodies


def _edit_body(program: SourceProgram, target: int, edit) -> SourceProgram:
    """Apply ``edit(body) -> body`` to the ``target``-th body only."""
    state = {"index": -1}

    def visit(body):
        state["index"] += 1
        return edit(body) if state["index"] == target else body

    return _transform_bodies(program, visit)


def _transform_exprs(program: SourceProgram, visit) -> SourceProgram:
    """Rebuild ``program`` passing every expression node (children first)
    through ``visit(expr) -> expr``."""

    def walk_expr(expr):
        if expr is None:
            return None
        if isinstance(expr, Binary):
            expr = dataclasses.replace(
                expr, left=walk_expr(expr.left),
                right=walk_expr(expr.right))
        elif isinstance(expr, Unary):
            expr = dataclasses.replace(
                expr, operand=walk_expr(expr.operand))
        elif isinstance(expr, Index):
            expr = dataclasses.replace(expr, index=walk_expr(expr.index))
        elif isinstance(expr, Call):
            expr = dataclasses.replace(
                expr, args=tuple(walk_expr(arg) for arg in expr.args))
        return visit(expr)

    def walk_stmt(stmt):
        if isinstance(stmt, VarDecl):
            return dataclasses.replace(stmt, init=walk_expr(stmt.init))
        if isinstance(stmt, Assign):
            return dataclasses.replace(stmt, value=walk_expr(stmt.value))
        if isinstance(stmt, ArrayAssign):
            return dataclasses.replace(
                stmt, index=walk_expr(stmt.index),
                value=walk_expr(stmt.value))
        if isinstance(stmt, If):
            return dataclasses.replace(
                stmt, cond=walk_expr(stmt.cond),
                then_body=walk_body(stmt.then_body),
                else_body=walk_body(stmt.else_body))
        if isinstance(stmt, While):
            return dataclasses.replace(
                stmt, cond=walk_expr(stmt.cond),
                body=walk_body(stmt.body))
        if isinstance(stmt, ExprStmt):
            return dataclasses.replace(stmt, expr=walk_expr(stmt.expr))
        if isinstance(stmt, Return):
            return dataclasses.replace(stmt, value=walk_expr(stmt.value))
        return stmt

    def walk_body(body):
        return tuple(walk_stmt(stmt) for stmt in body)

    return dataclasses.replace(
        program,
        functions=tuple(
            dataclasses.replace(fn, body=walk_body(fn.body))
            for fn in program.functions),
        main=walk_body(program.main))


def _list_exprs(program: SourceProgram) -> List[Expr]:
    exprs: List[Expr] = []

    def visit(expr):
        exprs.append(expr)
        return expr

    _transform_exprs(program, visit)
    return exprs


def _edit_expr(program: SourceProgram, target: int,
               replacement: Expr) -> SourceProgram:
    state = {"index": -1}

    def visit(expr):
        state["index"] += 1
        return replacement if state["index"] == target else expr

    return _transform_exprs(program, visit)


# ---------------------------------------------------------------------------
# Candidate enumeration (each yields strictly smaller/simpler programs)
# ---------------------------------------------------------------------------


def _chunk_sizes(length: int) -> List[int]:
    sizes = []
    size = length
    while size >= 1:
        sizes.append(size)
        size //= 2
    return sizes


def _toplevel_candidates(program: SourceProgram
                         ) -> Iterator[SourceProgram]:
    for i in range(len(program.functions)):
        yield dataclasses.replace(
            program,
            functions=program.functions[:i] + program.functions[i + 1:])
    for i in range(len(program.arrays)):
        yield dataclasses.replace(
            program, arrays=program.arrays[:i] + program.arrays[i + 1:])
    for i, array in enumerate(program.arrays):
        if array.init:
            bare = dataclasses.replace(array, init=())
            yield dataclasses.replace(
                program,
                arrays=program.arrays[:i] + (bare,)
                + program.arrays[i + 1:])
    for i in range(len(program.globals)):
        yield dataclasses.replace(
            program, globals=program.globals[:i] + program.globals[i + 1:])


def _deletion_candidates(program: SourceProgram
                         ) -> Iterator[SourceProgram]:
    for body_index, body in enumerate(_list_bodies(program)):
        for size in _chunk_sizes(len(body)):
            for start in range(0, len(body), size):
                stop = min(start + size, len(body))

                def cut(body, start=start, stop=stop):
                    return body[:start] + body[stop:]

                yield _edit_body(program, body_index, cut)


def _hoist_candidates(program: SourceProgram) -> Iterator[SourceProgram]:
    for body_index, body in enumerate(_list_bodies(program)):
        for j, stmt in enumerate(body):
            inners: List[Sequence] = []
            if isinstance(stmt, If):
                inners.append(stmt.then_body)
                if stmt.else_body:
                    inners.append(stmt.else_body)
            elif isinstance(stmt, While):
                inners.append(stmt.body)
            for inner in inners:

                def splice(body, j=j, inner=tuple(inner)):
                    return body[:j] + inner + body[j + 1:]

                yield _edit_body(program, body_index, splice)


def _expr_options(expr: Expr) -> List[Expr]:
    options: List[Expr] = []
    if isinstance(expr, IntLit):
        if expr.value != 0:
            options.append(IntLit(value=0))
        if abs(expr.value) > 1:
            options.append(IntLit(value=expr.value // 2))
        return options
    if isinstance(expr, Binary):
        options.extend((expr.left, expr.right))
    elif isinstance(expr, Unary):
        options.append(expr.operand)
    options.append(IntLit(value=0))
    return options


def _expr_candidates(program: SourceProgram) -> Iterator[SourceProgram]:
    for index, expr in enumerate(_list_exprs(program)):
        for option in _expr_options(expr):
            if option == expr:
                continue
            yield _edit_expr(program, index, option)


_MWL_PASSES = (
    _toplevel_candidates,
    _deletion_candidates,
    _hoist_candidates,
    _expr_candidates,
)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


class _Budget:
    def __init__(self, max_checks: int, predicate: Predicate):
        self.remaining = max_checks
        self.predicate = predicate
        self.checks = 0

    def holds(self, source: str) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        self.checks += 1
        return self.predicate(source)


def _minimize_mwl(source: str, budget: _Budget) -> str:
    program = parse_source(source)
    current = format_source(program)
    improved = True
    while improved and budget.remaining > 0:
        improved = False
        for make_candidates in _MWL_PASSES:
            # First-improvement with restart: an accepted edit shifts
            # every index, so re-enumerate from the new program.
            changed = True
            while changed and budget.remaining > 0:
                changed = False
                for candidate in make_candidates(program):
                    text = format_source(candidate)
                    if text == current:
                        continue
                    if budget.holds(text):
                        program, current = candidate, text
                        changed = improved = True
                        break
    return current


def _minimize_lines(source: str, budget: _Budget) -> str:
    lines = source.splitlines()
    improved = True
    while improved and budget.remaining > 0:
        improved = False
        for size in _chunk_sizes(len(lines)):
            start = 0
            while start < len(lines) and budget.remaining > 0:
                stop = min(start + size, len(lines))
                candidate = lines[:start] + lines[stop:]
                if candidate and budget.holds("\n".join(candidate) + "\n"):
                    lines = candidate
                    improved = True
                    # Re-scan the same offset: the next chunk slid here.
                else:
                    start = stop
    return "\n".join(lines) + "\n"


def minimize_program(program, predicate: Predicate,
                     max_checks: int = DEFAULT_MAX_CHECKS,
                     ) -> "MinimizeResult":
    """Shrink ``program`` (a :class:`repro.fuzz.generator.FuzzProgram`)
    while ``predicate(source)`` stays true.

    The original source is returned unchanged if the predicate does not
    hold on it (nothing to preserve) or if no edit survives.
    """
    budget = _Budget(max_checks, predicate)
    if not budget.holds(program.source):
        return MinimizeResult(program=program, checks=budget.checks,
                              reduced=False)
    if program.kind == "mwl":
        reduced_source = _minimize_mwl(program.source, budget)
    else:
        reduced_source = _minimize_lines(program.source, budget)
    reduced = dataclasses.replace(program, source=reduced_source)
    return MinimizeResult(program=reduced, checks=budget.checks,
                          reduced=reduced_source != program.source)


@dataclasses.dataclass(frozen=True)
class MinimizeResult:
    """The minimized program plus how much work it took."""

    program: object
    checks: int
    reduced: bool

    @property
    def source(self) -> str:
        return self.program.source
