"""Well-typed program fuzzer with differential verification.

The paper's metatheory is proved once and for all; a Python reproduction
can only check instances -- and 17 hand-picked kernels are a tiny
workload universe for a system with three execution backends, equivalence
pruning, sharding and a service on top.  This package turns the empirical
claims into a property-based fleet:

* :mod:`repro.fuzz.generator` -- a seeded generator of random well-typed
  MWL programs (random expression trees, nested loops and branches,
  multiple arrays, aliasing, edge-case constants, inlinable functions)
  and of direct TAL_FT assembly (straight-line replicated blocks and
  countdown-style typed loops);
* :mod:`repro.fuzz.oracle` -- the differential oracle: per program,
  parse -> check -> FT build type-checks, the :mod:`repro.verify`
  theorem checkers pass, and every execution backend x prune mode
  produces bit-identical traces and campaign fingerprints;
* :mod:`repro.fuzz.minimize` -- a delta-debugging minimizer that shrinks
  a failing program to a minimal reproducer preserving the failure;
* :mod:`repro.fuzz.corpus` -- the persisted corpus (seed manifests,
  failures, minimized repros) replayed by the test suite;
* :mod:`repro.fuzz.runner` -- the campaign loop behind ``talft fuzz``.

See ``docs/FUZZING.md``.
"""

from repro.fuzz.corpus import Corpus
from repro.fuzz.generator import (
    PROFILES,
    FuzzProgram,
    GeneratorConfig,
    generate_program,
)
from repro.fuzz.minimize import MinimizeResult, minimize_program
from repro.fuzz.oracle import OracleConfig, OracleVerdict, check_program
from repro.fuzz.runner import FuzzConfig, FuzzReport, run_fuzz

__all__ = [
    "Corpus",
    "FuzzConfig",
    "FuzzProgram",
    "FuzzReport",
    "GeneratorConfig",
    "MinimizeResult",
    "OracleConfig",
    "OracleVerdict",
    "PROFILES",
    "check_program",
    "generate_program",
    "minimize_program",
    "run_fuzz",
]
