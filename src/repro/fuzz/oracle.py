"""The differential oracle: everything one program must satisfy.

For an MWL program the oracle asserts, in order:

1. **front end** -- it parses and passes the semantic checks;
2. **reference semantics** -- the MWL interpreter runs it to completion
   within budget;
3. **compilation** -- the baseline and FT builds compile, and the FT
   build type-checks (the paper's static guarantee);
4. **differential execution** -- on both machine backends (``step`` and
   ``compiled``), both builds produce exactly the interpreter's write
   sequence, and the two backends' traces are bit-identical (outcome,
   outputs *and* step counts);
5. **metatheory** -- the :mod:`repro.verify` theorem checkers pass on a
   fault-free run (Progress + Preservation + Corollary 3);
6. **campaign parity** -- a seeded SEU campaign per execution backend x
   prune mode produces one fingerprint (and one latency histogram), with
   zero Theorem-4 violations on the FT build.

Direct TAL_FT programs skip the interpreter/compiler stages (there is no
MWL reference) and run 3..6 against the assembled program.

A verdict is a :class:`OracleVerdict`; ``ok`` means every stage passed,
otherwise ``stage`` names the first failing property -- the oracle stops
at the first failure so the minimizer has a stable predicate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ReproError, SourceError
from repro.core.machine import Machine, Outcome, Trace
from repro.exec.vector import vector_available
from repro.injection.campaign import CampaignConfig, run_campaign
from repro.injection.chaos import report_fingerprint
from repro.types.errors import TypeCheckError


@dataclass(frozen=True)
class OracleConfig:
    """Budgets and campaign knobs for one oracle pass."""

    #: Interpreter step budget (generated programs are cost-capped far
    #: below this; exhausting it is itself a finding).
    interp_max_steps: int = 500_000
    #: Machine step budget for differential runs.
    machine_max_steps: int = 200_000
    #: ``|- S`` re-derivation stride for the theorem checkers (1 checks
    #: every small step; generated programs are small enough that a
    #: modest stride keeps the fuzzer fast without losing the property).
    check_stride: int = 4
    #: Theorem-checker step budget.
    theorem_max_steps: int = 60_000
    #: Campaign sampling knobs (small but non-trivial: every backend
    #: executes the same faults, so parity is meaningful at any size).
    injection_steps: int = 3
    sites_per_step: int = 4
    values_per_site: int = 2
    campaign_seed: int = 20260808
    #: Also run the campaign matrix on the unprotected baseline build
    #: (fingerprint parity only -- baseline violations are expected).
    campaign_baseline: bool = True
    #: Execution backends to compare (``None`` = every available one).
    backends: Optional[Tuple[str, ...]] = None
    prune_modes: Tuple[bool, ...] = (True, False)

    def resolved_backends(self) -> Tuple[str, ...]:
        if self.backends is not None:
            return self.backends
        backends = ["step", "compiled"]
        if vector_available():
            backends.append("vector")
        return tuple(backends)


@dataclass
class OracleVerdict:
    """What the oracle concluded about one program."""

    ok: bool
    #: ``"ok"`` or the first failing stage: ``parse``, ``check-source``,
    #: ``interp``, ``compile``, ``typecheck``, ``differential``,
    #: ``trace-parity``, ``theorems``, ``campaign-violation``,
    #: ``fingerprint``, ``crash``.
    stage: str
    detail: str = ""
    #: Total faulty runs classified across the campaign matrix.
    injections: int = 0
    #: ``(build, backend, prune) -> fingerprint digest`` for diagnosis.
    fingerprints: Dict[str, str] = field(default_factory=dict)
    elapsed: float = 0.0


def _fingerprint_digest(report) -> str:
    import hashlib

    return hashlib.sha256(
        repr(report_fingerprint(report)).encode("utf-8")).hexdigest()[:16]


def _trace_key(trace: Trace) -> Tuple:
    return (trace.outcome, tuple(trace.outputs), trace.steps)


def _campaign_matrix(
    program,
    config: OracleConfig,
    verdict: OracleVerdict,
    build: str,
    require_tolerant: bool,
) -> Optional[OracleVerdict]:
    """Run the backend x prune matrix; fill ``verdict``; return a failed
    verdict on divergence, ``None`` when the matrix agrees."""
    baseline_key = None
    baseline_fp = None
    baseline_buckets = None
    for backend in config.resolved_backends():
        for prune in config.prune_modes:
            campaign_config = CampaignConfig(
                max_injection_steps=config.injection_steps,
                max_sites_per_step=config.sites_per_step,
                max_values_per_site=config.values_per_site,
                seed=config.campaign_seed,
                max_steps=config.machine_max_steps,
                backend=backend,
                prune=prune,
            )
            report = run_campaign(program, campaign_config)
            key = f"{build}/{backend}/{'prune' if prune else 'noprune'}"
            digest = _fingerprint_digest(report)
            verdict.fingerprints[key] = digest
            verdict.injections += report.injections
            if require_tolerant and report.violations:
                record = report.violations[0]
                verdict.ok = False
                verdict.stage = "campaign-violation"
                verdict.detail = (
                    f"{key}: step {record.step}, "
                    f"{record.fault.describe()} -> {record.result.value}")
                return verdict
            if baseline_key is None:
                baseline_key = key
                baseline_fp = digest
                baseline_buckets = report.latency_buckets
            elif digest != baseline_fp \
                    or report.latency_buckets != baseline_buckets:
                verdict.ok = False
                verdict.stage = "fingerprint"
                verdict.detail = (f"{key} diverges from {baseline_key} "
                                  f"({digest} != {baseline_fp})")
                return verdict
    return None


def _check_machine_stages(
    program,
    config: OracleConfig,
    verdict: OracleVerdict,
    build: str,
    expected_outputs: Optional[List[Tuple[int, int]]],
    require_tolerant: bool,
) -> Optional[OracleVerdict]:
    """Stages 4..6 on one assembled machine program."""
    traces = {}
    for backend in ("step", "compiled"):
        trace = Machine(program.boot(), backend=backend).run(
            max_steps=config.machine_max_steps)
        traces[backend] = trace
    if _trace_key(traces["step"]) != _trace_key(traces["compiled"]):
        verdict.ok = False
        verdict.stage = "trace-parity"
        verdict.detail = (
            f"{build}: step {_trace_key(traces['step'])!r} != compiled "
            f"{_trace_key(traces['compiled'])!r}")
        return verdict
    trace = traces["step"]
    if trace.outcome is not Outcome.HALTED:
        verdict.ok = False
        verdict.stage = "differential"
        verdict.detail = f"{build}: machine run ended {trace.outcome.value}"
        return verdict
    if expected_outputs is not None \
            and list(trace.outputs) != expected_outputs:
        verdict.ok = False
        verdict.stage = "differential"
        verdict.detail = (
            f"{build}: machine outputs {list(trace.outputs)[:8]!r}... != "
            f"interpreter writes {expected_outputs[:8]!r}...")
        return verdict
    if require_tolerant:
        from repro.verify.typed_execution import TheoremViolation
        from repro.verify.theorems import check_no_false_positives

        try:
            check_no_false_positives(
                program, max_steps=config.theorem_max_steps,
                check_stride=config.check_stride)
        except TheoremViolation as error:
            verdict.ok = False
            verdict.stage = "theorems"
            verdict.detail = f"{build}: {error}"
            return verdict
    return _campaign_matrix(program, config, verdict, build,
                            require_tolerant)


def _check_mwl(source: str, config: OracleConfig,
               verdict: OracleVerdict) -> OracleVerdict:
    from repro.compiler import compile_source
    from repro.lang import check_source, interpret, parse_source
    from repro.lang.interp import InterpLimit

    try:
        ast = parse_source(source)
    except SourceError as error:
        verdict.ok = False
        verdict.stage = "parse"
        verdict.detail = str(error)
        return verdict
    try:
        check_source(ast)
    except SourceError as error:
        verdict.ok = False
        verdict.stage = "check-source"
        verdict.detail = str(error)
        return verdict
    try:
        reference = interpret(ast, max_steps=config.interp_max_steps)
    except InterpLimit as error:
        verdict.ok = False
        verdict.stage = "interp"
        verdict.detail = str(error)
        return verdict
    builds = {}
    for mode in ("baseline", "ft"):
        try:
            builds[mode] = compile_source(source, mode=mode)
        except (SourceError, ReproError) as error:
            verdict.ok = False
            verdict.stage = "compile"
            verdict.detail = f"{mode}: {error}"
            return verdict
    try:
        builds["ft"].program.check()
    except TypeCheckError as error:
        verdict.ok = False
        verdict.stage = "typecheck"
        verdict.detail = str(error)
        return verdict
    expected = [(array, index, value)
                for array, index, value in reference.writes]
    for mode in ("baseline", "ft") if config.campaign_baseline \
            else ("ft",):
        compiled = builds[mode]
        layout = compiled.lowered.layout
        trace = Machine(compiled.program.boot(), backend="step").run(
            max_steps=config.machine_max_steps)
        if trace.outcome is not Outcome.HALTED:
            verdict.ok = False
            verdict.stage = "differential"
            verdict.detail = f"{mode}: run ended {trace.outcome.value}"
            return verdict
        observed = [layout.describe(address) + (value,)
                    for address, value in trace.outputs]
        if observed != expected:
            verdict.ok = False
            verdict.stage = "differential"
            verdict.detail = (
                f"{mode}: writes {observed[:8]!r}... != interpreter "
                f"{expected[:8]!r}...")
            return verdict
        failed = _check_machine_stages(
            compiled.program, config, verdict, mode,
            expected_outputs=list(trace.outputs),
            require_tolerant=(mode == "ft"))
        if failed is not None:
            return failed
    return verdict


def _check_tal(source: str, config: OracleConfig,
               verdict: OracleVerdict) -> OracleVerdict:
    from repro.asm import parse_program

    try:
        program = parse_program(source)
    except (SourceError, ReproError) as error:
        verdict.ok = False
        verdict.stage = "parse"
        verdict.detail = str(error)
        return verdict
    try:
        program.check()
    except TypeCheckError as error:
        verdict.ok = False
        verdict.stage = "typecheck"
        verdict.detail = str(error)
        return verdict
    failed = _check_machine_stages(program, config, verdict, "tal",
                                   expected_outputs=None,
                                   require_tolerant=True)
    if failed is not None:
        return failed
    return verdict


def check_program(program, config: Optional[OracleConfig] = None
                  ) -> OracleVerdict:
    """Run the full differential oracle over one :class:`FuzzProgram`
    (anything with ``kind`` and ``source`` attributes works)."""
    config = config or OracleConfig()
    verdict = OracleVerdict(ok=True, stage="ok")
    started = time.perf_counter()
    try:
        if program.kind == "tal":
            verdict = _check_tal(program.source, config, verdict)
        elif program.kind == "mwl":
            verdict = _check_mwl(program.source, config, verdict)
        else:
            raise ValueError(f"unknown program kind {program.kind!r}")
    except Exception as error:  # noqa: BLE001 -- crashes are findings
        verdict.ok = False
        verdict.stage = "crash"
        verdict.detail = f"{type(error).__name__}: {error}"
    verdict.elapsed = time.perf_counter() - started
    return verdict
