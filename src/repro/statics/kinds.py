"""Kinds and kind checking for static expressions.

Static expressions are classified as integers (``iota_int``) or memories
(``iota_mem``).  The context Delta maps expression variables to kinds; the
judgment ``Delta |- E : kappa`` is :func:`infer_kind` / :func:`check_kind`.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.core.caching import LRUCache
from repro.statics.expressions import (
    BinExpr,
    EmptyMem,
    Expr,
    IntConst,
    Sel,
    StaticsError,
    Upd,
    Var,
)


class Kind(enum.Enum):
    """The two kinds of static expression."""

    INT = "int"
    MEM = "mem"

    def __str__(self) -> str:
        return self.value


KIND_INT = Kind.INT
KIND_MEM = Kind.MEM


class KindContext:
    """The context Delta: an immutable map from variable names to kinds."""

    __slots__ = ("_bindings", "_hash")

    def __init__(self, bindings: Mapping[str, Kind] = {}):
        self._bindings: Dict[str, Kind] = dict(bindings)
        self._hash: Optional[int] = None

    @classmethod
    def of(cls, **bindings: Kind) -> "KindContext":
        return cls(bindings)

    def lookup(self, name: str) -> Optional[Kind]:
        return self._bindings.get(name)

    def extend(self, name: str, kind: Kind) -> "KindContext":
        extended = dict(self._bindings)
        extended[name] = kind
        return KindContext(extended)

    def merge(self, other: "KindContext") -> "KindContext":
        """The union of two contexts; conflicting kinds are an error."""
        merged = dict(self._bindings)
        for name, kind in other.items():
            if merged.get(name, kind) is not kind:
                raise StaticsError(
                    f"variable {name!r} bound at both kinds in merged context"
                )
            merged[name] = kind
        return KindContext(merged)

    def items(self) -> Iterable[Tuple[str, Kind]]:
        return self._bindings.items()

    def names(self) -> Tuple[str, ...]:
        return tuple(self._bindings)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KindContext) and self._bindings == other._bindings

    def __hash__(self) -> int:
        # Consistent with __eq__ (order-insensitive); computed lazily and
        # cached -- contexts are immutable after construction.
        cached = self._hash
        if cached is None:
            cached = hash(frozenset(self._bindings.items()))
            self._hash = cached
        return cached

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {k}" for n, k in sorted(self._bindings.items()))
        return f"{{{inner}}}"


EMPTY_CONTEXT = KindContext()


#: Memoized kind derivations.  Hash-consed expressions make the keys O(1)
#: to hash and compare; closed expressions are cached context-free (their
#: kind cannot depend on Delta), open ones per (expression, context) pair.
#: Only *successful* derivations are cached -- failures re-raise each time.
_KIND_CACHE: LRUCache = LRUCache(1 << 16)


def clear_kind_cache() -> None:
    """Drop the memoized kind derivations (for benchmarks and tests)."""
    _KIND_CACHE.clear()


def infer_kind(expr: Expr, ctx: KindContext = EMPTY_CONTEXT) -> Kind:
    """The kind of ``expr`` under ``ctx`` (``Delta |- E : kappa``).

    Raises :class:`StaticsError` on unbound variables or ill-kinded
    applications.
    """
    node_type = type(expr)
    if node_type is IntConst:
        return KIND_INT
    if node_type is EmptyMem:
        return KIND_MEM
    if node_type is Var:
        kind = ctx.lookup(expr.name)
        if kind is None:
            raise StaticsError(f"unbound static variable {expr.name!r}")
        return kind
    if not isinstance(expr, Expr):
        raise StaticsError(f"not a static expression: {expr!r}")
    key = expr if not expr._free else (expr, ctx)
    cached = _KIND_CACHE.get(key)
    if cached is not None:
        return cached
    if node_type is BinExpr:
        check_kind(expr.left, KIND_INT, ctx)
        check_kind(expr.right, KIND_INT, ctx)
        kind = KIND_INT
    elif node_type is Sel:
        check_kind(expr.mem, KIND_MEM, ctx)
        check_kind(expr.addr, KIND_INT, ctx)
        kind = KIND_INT
    elif node_type is Upd:
        check_kind(expr.mem, KIND_MEM, ctx)
        check_kind(expr.addr, KIND_INT, ctx)
        check_kind(expr.value, KIND_INT, ctx)
        kind = KIND_MEM
    else:
        raise StaticsError(f"not a static expression: {expr!r}")
    _KIND_CACHE.put(key, kind)
    return kind


def check_kind(expr: Expr, expected: Kind, ctx: KindContext = EMPTY_CONTEXT) -> None:
    """Assert ``Delta |- E : expected``."""
    actual = infer_kind(expr, ctx)
    if actual is not expected:
        raise StaticsError(f"{expr} has kind {actual}, expected {expected}")


def well_kinded(expr: Expr, ctx: KindContext = EMPTY_CONTEXT) -> bool:
    """True if ``expr`` kind-checks at all under ``ctx``."""
    try:
        infer_kind(expr, ctx)
    except StaticsError:
        return False
    return True
