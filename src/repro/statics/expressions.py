"""Static expressions (Figure 5): the Hoare-logic half of TAL_FT.

The type system tracks, for every value, a *static expression* ``E`` drawn
from the classical theory of arithmetic and arrays::

    E ::= x | n | E op E | sel Em En | emp | upd Em En1 En2

Expressions are classified by kind: integers (``KIND_INT``) or memories
(``KIND_MEM``).  ``sel Em En`` is the integer stored at address ``En`` of
memory ``Em``; ``upd Em En1 En2`` is ``Em`` with address ``En1`` updated to
hold ``En2``; ``emp`` is the empty memory.

Expressions are immutable, hashable dataclasses.  The denotation function
``[[E]]`` of Appendix A.2 is :func:`denote`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Union

from repro.core.errors import ReproError
from repro.core.instructions import ALU_OPS


class StaticsError(ReproError):
    """Ill-kinded expression, unbound variable, or undefined denotation."""


@dataclass(frozen=True)
class Expr:
    """Base class of static expressions."""

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        return repr(self)


@dataclass(frozen=True)
class Var(Expr):
    """An expression variable ``x`` (kind given by the context Delta)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntConst(Expr):
    """An integer literal ``n``."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BinExpr(Expr):
    """``E1 op E2`` for an ALU operation ``op``.

    The paper's grammar has the three ops of its ALU; ours mirrors the
    (documented) extended ALU so that every ``op2r``/``op1r`` instruction has
    a corresponding static expression.
    """

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ALU_OPS:
            raise StaticsError(f"unknown static operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Sel(Expr):
    """``sel Em En`` -- the contents of address ``En`` in memory ``Em``."""

    mem: Expr
    addr: Expr

    def __str__(self) -> str:
        return f"sel({self.mem}, {self.addr})"


@dataclass(frozen=True)
class Upd(Expr):
    """``upd Em En1 En2`` -- memory ``Em`` with ``En1`` mapped to ``En2``."""

    mem: Expr
    addr: Expr
    value: Expr

    def __str__(self) -> str:
        return f"upd({self.mem}, {self.addr}, {self.value})"


@dataclass(frozen=True)
class EmptyMem(Expr):
    """``emp`` -- the empty memory."""

    def __str__(self) -> str:
        return "emp"


#: What a closed expression denotes: an integer or a memory (address map).
Denotation = Union[int, Dict[int, int]]

#: An environment giving denotations to free variables.
Env = Mapping[str, Denotation]


def free_vars(expr: Expr) -> FrozenSet[str]:
    """The free expression variables of ``expr``."""
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, IntConst) or isinstance(expr, EmptyMem):
        return frozenset()
    if isinstance(expr, BinExpr):
        return free_vars(expr.left) | free_vars(expr.right)
    if isinstance(expr, Sel):
        return free_vars(expr.mem) | free_vars(expr.addr)
    if isinstance(expr, Upd):
        return free_vars(expr.mem) | free_vars(expr.addr) | free_vars(expr.value)
    raise StaticsError(f"not a static expression: {expr!r}")


def is_closed(expr: Expr) -> bool:
    """True if ``expr`` has no free variables."""
    return not free_vars(expr)


def denote(expr: Expr, env: Env = {}) -> Denotation:
    """The denotation ``[[E]]`` of Appendix A.2, under ``env``.

    * ``[[n]] = n``
    * ``[[E1 op E2]] = [[E1]] op [[E2]]``
    * ``[[emp]]`` is the empty memory
    * ``[[sel Em En]] = [[Em]]([[En]])`` (undefined outside the domain)
    * ``[[upd Em E1 E2]] = [[Em]][[[E1]] -> [[E2]]]``

    Raises :class:`StaticsError` for unbound variables, ill-kinded
    applications, and selects outside the memory's domain.
    """
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise StaticsError(f"unbound static variable {expr.name!r}") from None
    if isinstance(expr, IntConst):
        return expr.value
    if isinstance(expr, BinExpr):
        left = denote(expr.left, env)
        right = denote(expr.right, env)
        if not isinstance(left, int) or not isinstance(right, int):
            raise StaticsError(f"arithmetic on a memory in {expr}")
        return ALU_OPS[expr.op](left, right)
    if isinstance(expr, EmptyMem):
        return {}
    if isinstance(expr, Sel):
        memory = denote(expr.mem, env)
        address = denote(expr.addr, env)
        if not isinstance(memory, dict) or not isinstance(address, int):
            raise StaticsError(f"ill-kinded select in {expr}")
        if address not in memory:
            raise StaticsError(f"select outside memory domain: address {address}")
        return memory[address]
    if isinstance(expr, Upd):
        memory = denote(expr.mem, env)
        address = denote(expr.addr, env)
        value = denote(expr.value, env)
        if not isinstance(memory, dict) or not isinstance(address, int) \
                or not isinstance(value, int):
            raise StaticsError(f"ill-kinded update in {expr}")
        updated = dict(memory)
        updated[address] = value
        return updated
    raise StaticsError(f"not a static expression: {expr!r}")


def memory_to_expr(memory: Mapping[int, int]) -> Expr:
    """Reify a concrete memory as an update chain over ``emp``.

    Used when matching a run-time memory against a static description (e.g.
    when booting a machine or inferring a closing substitution).  Addresses
    are applied in sorted order so the reification is canonical.
    """
    expr: Expr = EmptyMem()
    for address in sorted(memory):
        expr = Upd(expr, IntConst(address), IntConst(memory[address]))
    return expr


# Convenience constructors ---------------------------------------------------


def add(left: Expr, right: Expr) -> BinExpr:
    return BinExpr("add", left, right)


def sub(left: Expr, right: Expr) -> BinExpr:
    return BinExpr("sub", left, right)


def mul(left: Expr, right: Expr) -> BinExpr:
    return BinExpr("mul", left, right)


def const(value: int) -> IntConst:
    return IntConst(value)


def var(name: str) -> Var:
    return Var(name)
