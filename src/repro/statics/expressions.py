"""Static expressions (Figure 5): the Hoare-logic half of TAL_FT.

The type system tracks, for every value, a *static expression* ``E`` drawn
from the classical theory of arithmetic and arrays::

    E ::= x | n | E op E | sel Em En | emp | upd Em En1 En2

Expressions are classified by kind: integers (``KIND_INT``) or memories
(``KIND_MEM``).  ``sel Em En`` is the integer stored at address ``En`` of
memory ``Em``; ``upd Em En1 En2`` is ``Em`` with address ``En1`` updated to
hold ``En2``; ``emp`` is the empty memory.

Expressions are immutable and **hash-consed**: every constructor interns its
node, so structurally equal expressions are pointer-identical.  That makes

* equality an identity test (``__eq__`` is ``is``),
* hashing O(1) (the structural hash is computed once at construction),
* free-variable sets free (cached on the node at construction), and
* memo tables keyed on expressions effectively keyed on object identity,

which is what lets the normalizer, the kind checker and substitution
application (:mod:`repro.statics.normalize`, :mod:`repro.statics.kinds`,
:mod:`repro.statics.substitution`) memoize aggressively.  The intern tables
hold their entries weakly, so expressions dropped by every client are
reclaimed -- a long-running checking service does not leak terms.

Interned nodes survive pickling: ``__reduce__`` rebuilds through the
constructor, so expressions shipped to worker processes (parallel block
checking) re-intern on arrival and keep the identity-equality invariant.

The denotation function ``[[E]]`` of Appendix A.2 is :func:`denote`.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Mapping, Tuple, Union

from repro.core.errors import ReproError
from repro.core.instructions import ALU_OPS


class StaticsError(ReproError):
    """Ill-kinded expression, unbound variable, or undefined denotation."""


_EMPTY_FROZENSET: FrozenSet[str] = frozenset()


def _union(left: FrozenSet[str], right: FrozenSet[str]) -> FrozenSet[str]:
    """Union that reuses an operand when the other is empty (no allocation)."""
    if not left:
        return right
    if not right:
        return left
    return left | right


class Expr:
    """Base class of static expressions (hash-consed, immutable).

    ``_hash`` is the precomputed structural hash; ``_free`` the cached
    frozenset of free variables.  Subclasses intern in :func:`__new__`.
    """

    __slots__ = ("_hash", "_free", "__weakref__")

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        # Interning guarantees structural equality iff identity.
        return self is other

    def __ne__(self, other: object) -> bool:
        return self is not other

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        return repr(self)


def _make(cls: type, fields: Tuple[str, ...], values: tuple, hashed: int,
          free: FrozenSet[str]) -> "Expr":
    node = object.__new__(cls)
    setattr_ = object.__setattr__
    for name, value in zip(fields, values):
        setattr_(node, name, value)
    setattr_(node, "_hash", hashed)
    setattr_(node, "_free", free)
    return node


_VAR_TABLE: "weakref.WeakValueDictionary[str, Var]" = weakref.WeakValueDictionary()
_INT_TABLE: "weakref.WeakValueDictionary[int, IntConst]" = weakref.WeakValueDictionary()
#: Strong intern table for small integer literals (bounded by the value
#: range, so it can never grow past 64K + 1K entries).
_INT_SMALL: "dict[int, IntConst]" = {}
_BIN_TABLE: "weakref.WeakValueDictionary[tuple, BinExpr]" = weakref.WeakValueDictionary()
_SEL_TABLE: "weakref.WeakValueDictionary[tuple, Sel]" = weakref.WeakValueDictionary()
_UPD_TABLE: "weakref.WeakValueDictionary[tuple, Upd]" = weakref.WeakValueDictionary()


class Var(Expr):
    """An expression variable ``x`` (kind given by the context Delta)."""

    __slots__ = ("name",)

    def __new__(cls, name: str) -> "Var":
        if not isinstance(name, str):
            raise StaticsError(f"variable name must be a string, got {name!r}")
        node = _VAR_TABLE.get(name)
        if node is not None:
            return node
        node = _make(cls, ("name",), (name,),
                     hash(("Var", name)), frozenset((name,)))
        return _VAR_TABLE.setdefault(name, node)

    def __reduce__(self):
        return (Var, (self.name,))

    def __repr__(self) -> str:
        return f"Var(name={self.name!r})"

    def __str__(self) -> str:
        return self.name


class IntConst(Expr):
    """An integer literal ``n``."""

    __slots__ = ("value",)

    def __new__(cls, value: int) -> "IntConst":
        if not isinstance(value, int) or isinstance(value, bool):
            raise StaticsError(f"integer literal must be an int, got {value!r}")
        node = _INT_SMALL.get(value)
        if node is not None:
            return node
        node = _INT_TABLE.get(value)
        if node is not None:
            return node
        node = _make(cls, ("value",), (value,),
                     hash(("IntConst", value)), _EMPTY_FROZENSET)
        if -1024 <= value < 65536:
            # Small literals (immediates, addresses, masks) are kept alive
            # in a strong bounded table: they churn constantly and the
            # weak-table round trip is measurable on the checker hot path.
            _INT_SMALL[value] = node
            return node
        return _INT_TABLE.setdefault(value, node)

    def __reduce__(self):
        return (IntConst, (self.value,))

    def __repr__(self) -> str:
        return f"IntConst(value={self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


class BinExpr(Expr):
    """``E1 op E2`` for an ALU operation ``op``.

    The paper's grammar has the three ops of its ALU; ours mirrors the
    (documented) extended ALU so that every ``op2r``/``op1r`` instruction has
    a corresponding static expression.
    """

    __slots__ = ("op", "left", "right")

    def __new__(cls, op: str, left: Expr, right: Expr) -> "BinExpr":
        if op not in ALU_OPS:
            raise StaticsError(f"unknown static operator {op!r}")
        if not isinstance(left, Expr) or not isinstance(right, Expr):
            raise StaticsError(f"operands of {op} must be static expressions")
        key = (op, left, right)
        node = _BIN_TABLE.get(key)
        if node is not None:
            return node
        node = _make(cls, ("op", "left", "right"), key,
                     hash(("BinExpr",) + key), _union(left._free, right._free))
        return _BIN_TABLE.setdefault(key, node)

    def __reduce__(self):
        return (BinExpr, (self.op, self.left, self.right))

    def __repr__(self) -> str:
        return f"BinExpr(op={self.op!r}, left={self.left!r}, right={self.right!r})"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class Sel(Expr):
    """``sel Em En`` -- the contents of address ``En`` in memory ``Em``."""

    __slots__ = ("mem", "addr")

    def __new__(cls, mem: Expr, addr: Expr) -> "Sel":
        if not isinstance(mem, Expr) or not isinstance(addr, Expr):
            raise StaticsError("operands of sel must be static expressions")
        key = (mem, addr)
        node = _SEL_TABLE.get(key)
        if node is not None:
            return node
        node = _make(cls, ("mem", "addr"), key,
                     hash(("Sel",) + key), _union(mem._free, addr._free))
        return _SEL_TABLE.setdefault(key, node)

    def __reduce__(self):
        return (Sel, (self.mem, self.addr))

    def __repr__(self) -> str:
        return f"Sel(mem={self.mem!r}, addr={self.addr!r})"

    def __str__(self) -> str:
        return f"sel({self.mem}, {self.addr})"


class Upd(Expr):
    """``upd Em En1 En2`` -- memory ``Em`` with ``En1`` mapped to ``En2``."""

    __slots__ = ("mem", "addr", "value")

    def __new__(cls, mem: Expr, addr: Expr, value: Expr) -> "Upd":
        if not isinstance(mem, Expr) or not isinstance(addr, Expr) \
                or not isinstance(value, Expr):
            raise StaticsError("operands of upd must be static expressions")
        key = (mem, addr, value)
        node = _UPD_TABLE.get(key)
        if node is not None:
            return node
        node = _make(cls, ("mem", "addr", "value"), key,
                     hash(("Upd",) + key),
                     _union(_union(mem._free, addr._free), value._free))
        return _UPD_TABLE.setdefault(key, node)

    def __reduce__(self):
        return (Upd, (self.mem, self.addr, self.value))

    def __repr__(self) -> str:
        return (f"Upd(mem={self.mem!r}, addr={self.addr!r}, "
                f"value={self.value!r})")

    def __str__(self) -> str:
        return f"upd({self.mem}, {self.addr}, {self.value})"


class EmptyMem(Expr):
    """``emp`` -- the empty memory."""

    __slots__ = ()

    _instance = None

    def __new__(cls) -> "EmptyMem":
        node = cls._instance
        if node is None:
            node = _make(cls, (), (), hash("EmptyMem"), _EMPTY_FROZENSET)
            EmptyMem._instance = node
        return node

    def __reduce__(self):
        return (EmptyMem, ())

    def __repr__(self) -> str:
        return "EmptyMem()"

    def __str__(self) -> str:
        return "emp"


def intern_table_sizes() -> Dict[str, int]:
    """Live entry counts of the intern tables (observability/tests)."""
    return {
        "Var": len(_VAR_TABLE),
        "IntConst": len(_INT_TABLE) + len(_INT_SMALL),
        "BinExpr": len(_BIN_TABLE),
        "Sel": len(_SEL_TABLE),
        "Upd": len(_UPD_TABLE),
    }


#: What a closed expression denotes: an integer or a memory (address map).
Denotation = Union[int, Dict[int, int]]

#: An environment giving denotations to free variables.
Env = Mapping[str, Denotation]


def free_vars(expr: Expr) -> FrozenSet[str]:
    """The free expression variables of ``expr`` (cached on the node)."""
    if not isinstance(expr, Expr):
        raise StaticsError(f"not a static expression: {expr!r}")
    return expr._free


def is_closed(expr: Expr) -> bool:
    """True if ``expr`` has no free variables."""
    return not free_vars(expr)


def denote(expr: Expr, env: Env = {}) -> Denotation:
    """The denotation ``[[E]]`` of Appendix A.2, under ``env``.

    * ``[[n]] = n``
    * ``[[E1 op E2]] = [[E1]] op [[E2]]``
    * ``[[emp]]`` is the empty memory
    * ``[[sel Em En]] = [[Em]]([[En]])`` (undefined outside the domain)
    * ``[[upd Em E1 E2]] = [[Em]][[[E1]] -> [[E2]]]``

    Raises :class:`StaticsError` for unbound variables, ill-kinded
    applications, and selects outside the memory's domain.
    """
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise StaticsError(f"unbound static variable {expr.name!r}") from None
    if isinstance(expr, IntConst):
        return expr.value
    if isinstance(expr, BinExpr):
        left = denote(expr.left, env)
        right = denote(expr.right, env)
        if not isinstance(left, int) or not isinstance(right, int):
            raise StaticsError(f"arithmetic on a memory in {expr}")
        return ALU_OPS[expr.op](left, right)
    if isinstance(expr, EmptyMem):
        return {}
    if isinstance(expr, Sel):
        memory = denote(expr.mem, env)
        address = denote(expr.addr, env)
        if not isinstance(memory, dict) or not isinstance(address, int):
            raise StaticsError(f"ill-kinded select in {expr}")
        if address not in memory:
            raise StaticsError(f"select outside memory domain: address {address}")
        return memory[address]
    if isinstance(expr, Upd):
        memory = denote(expr.mem, env)
        address = denote(expr.addr, env)
        value = denote(expr.value, env)
        if not isinstance(memory, dict) or not isinstance(address, int) \
                or not isinstance(value, int):
            raise StaticsError(f"ill-kinded update in {expr}")
        updated = dict(memory)
        updated[address] = value
        return updated
    raise StaticsError(f"not a static expression: {expr!r}")


def memory_to_expr(memory: Mapping[int, int]) -> Expr:
    """Reify a concrete memory as an update chain over ``emp``.

    Used when matching a run-time memory against a static description (e.g.
    when booting a machine or inferring a closing substitution).  Addresses
    are applied in sorted order so the reification is canonical.
    """
    expr: Expr = EmptyMem()
    for address in sorted(memory):
        expr = Upd(expr, IntConst(address), IntConst(memory[address]))
    return expr


# Convenience constructors ---------------------------------------------------


def add(left: Expr, right: Expr) -> BinExpr:
    return BinExpr("add", left, right)


def sub(left: Expr, right: Expr) -> BinExpr:
    return BinExpr("sub", left, right)


def mul(left: Expr, right: Expr) -> BinExpr:
    return BinExpr("mul", left, right)


def const(value: int) -> IntConst:
    return IntConst(value)


def var(name: str) -> Var:
    return Var(name)
