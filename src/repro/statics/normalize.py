"""Normalization of static expressions and the equality prover.

The paper's expression-equality judgment ``Delta |- E1 = E2`` is semantic:
it quantifies over all well-formed closing substitutions (rule ``E-eq`` of
Appendix A.2) and is therefore undecidable in general.  Following standard
practice for Hoare-logic-based TALs, the checker uses a *sound, incomplete*
decision procedure:

* integer expressions are put into a **polynomial normal form** -- a sum of
  monomials over "atoms" (variables, irreducible selects, and applications
  of the non-polynomial extension operators), with constant folding and a
  canonical term order;
* memory expressions are put into a canonical **update-chain normal form**
  over a base (a variable or ``emp``): shadowed updates (newer update to a
  provably-equal address) are dropped, and adjacent updates to *provably
  distinct* addresses are sorted by a canonical key;
* ``sel``/``upd`` redexes reduce by McCarthy's axioms, using provable
  address (dis)equality;
* two expressions are provably equal iff their normal forms are
  structurally identical, and provably distinct iff their difference
  normalizes to a nonzero constant.

Soundness (a ``True`` answer implies semantic equality) is what the type
system needs; the test-suite cross-checks it against randomized evaluation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.caching import LRUCache
from repro.core.instructions import ALU_OPS
from repro.statics.expressions import (
    BinExpr,
    EmptyMem,
    Expr,
    IntConst,
    Sel,
    StaticsError,
    Upd,
    Var,
)
from repro.statics.kinds import KIND_INT, KIND_MEM, EMPTY_CONTEXT, Kind, KindContext, infer_kind

# A monomial is a sorted tuple of atoms; a polynomial maps monomials to
# nonzero integer coefficients.  The empty monomial is the constant term.
Monomial = Tuple[Expr, ...]
Poly = Dict[Monomial, int]

#: Operators handled polynomially; the rest become atoms (after folding).
_POLY_OPS = ("add", "sub", "mul")

_MAX_SLL_FOLD = 64


def expr_sort_key(expr: Expr):
    """A total order on normalized expressions (for canonical sorting)."""
    if isinstance(expr, IntConst):
        return (0, expr.value)
    if isinstance(expr, Var):
        return (1, expr.name)
    if isinstance(expr, BinExpr):
        return (2, expr.op, expr_sort_key(expr.left), expr_sort_key(expr.right))
    if isinstance(expr, Sel):
        return (3, expr_sort_key(expr.mem), expr_sort_key(expr.addr))
    if isinstance(expr, Upd):
        return (
            4,
            expr_sort_key(expr.mem),
            expr_sort_key(expr.addr),
            expr_sort_key(expr.value),
        )
    if isinstance(expr, EmptyMem):
        return (5,)
    raise StaticsError(f"not a static expression: {expr!r}")


# ---------------------------------------------------------------------------
# Polynomial arithmetic
# ---------------------------------------------------------------------------


def _poly_const(value: int) -> Poly:
    return {(): value} if value else {}


def _poly_atom(atom: Expr) -> Poly:
    return {(atom,): 1}


def _poly_add(left: Poly, right: Poly, sign: int = 1) -> Poly:
    result = dict(left)
    for monomial, coeff in right.items():
        updated = result.get(monomial, 0) + sign * coeff
        if updated:
            result[monomial] = updated
        else:
            result.pop(monomial, None)
    return result


def _poly_mul(left: Poly, right: Poly) -> Poly:
    result: Poly = {}
    for mono_l, coeff_l in left.items():
        for mono_r, coeff_r in right.items():
            merged = tuple(sorted(mono_l + mono_r, key=expr_sort_key))
            updated = result.get(merged, 0) + coeff_l * coeff_r
            if updated:
                result[merged] = updated
            else:
                result.pop(merged, None)
    return result


def _poly_to_expr(poly: Poly) -> Expr:
    """Rebuild a canonical expression from a polynomial."""
    if not poly:
        return IntConst(0)
    terms: List[Expr] = []
    for monomial in sorted(poly, key=lambda m: tuple(expr_sort_key(a) for a in m)):
        coeff = poly[monomial]
        if not monomial:
            terms.append(IntConst(coeff))
            continue
        product: Optional[Expr] = None
        for atom in monomial:
            product = atom if product is None else BinExpr("mul", product, atom)
        assert product is not None
        if coeff != 1:
            product = BinExpr("mul", IntConst(coeff), product)
        terms.append(product)
    result = terms[0]
    for term in terms[1:]:
        result = BinExpr("add", result, term)
    return result


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------


def _to_poly(expr: Expr) -> Poly:
    """The polynomial of an integer expression.

    Memoized on hash-consed identity.  Cached polynomials are shared and
    **must not be mutated**: every polynomial operation above builds a fresh
    result dict (``_poly_add`` copies its left operand first).
    """
    node_type = type(expr)
    if node_type is IntConst:
        return _poly_const(expr.value)
    if node_type is Var:
        return _poly_atom(expr)
    cached = _poly_cache.get(expr)
    if cached is not None:
        return cached
    if node_type is BinExpr:
        op = expr.op
        if op == "add":
            poly = _poly_add(_to_poly(expr.left), _to_poly(expr.right))
        elif op == "sub":
            poly = _poly_add(_to_poly(expr.left), _to_poly(expr.right), sign=-1)
        elif op == "mul":
            poly = _poly_mul(_to_poly(expr.left), _to_poly(expr.right))
        else:
            poly = _nonpoly_op(expr)
    elif node_type is Sel:
        reduced = _normalize_sel(expr.mem, expr.addr)
        if isinstance(reduced, Sel):
            # Irreducible select: an atom of the polynomial.
            poly = _poly_atom(reduced)
        else:
            # The select hit an update: its (already normalized) stored value
            # may itself be a sum, so re-run the polynomial pass on it.
            poly = _to_poly(reduced)
    else:
        raise StaticsError(f"expected an integer expression, got {expr}")
    _poly_cache.put(expr, poly)
    return poly


def _nonpoly_op(expr: BinExpr) -> Poly:
    left = normalize_int(expr.left)
    right = normalize_int(expr.right)
    if isinstance(left, IntConst) and isinstance(right, IntConst):
        return _poly_const(ALU_OPS[expr.op](left.value, right.value))
    # sll by a small constant is just multiplication by a power of two.
    if expr.op == "sll" and isinstance(right, IntConst) \
            and 0 <= right.value <= _MAX_SLL_FOLD:
        return _poly_mul(_to_poly(left), _poly_const(1 << right.value))
    return _poly_atom(BinExpr(expr.op, left, right))


#: Memoization for the normalizers.  Expressions are hash-consed (immutable,
#: O(1) hash, identity equality) and normalization is referentially
#: transparent, so bounded caches are sound; they pay off because the type
#: checker re-derives the same register expressions at every instruction of
#: a block.  Eviction is LRU (see :class:`repro.core.caching.LRUCache`) --
#: the old clear-everything-when-full policy caused periodic cold-cache
#: cliffs mid-check.
_INT_CACHE_LIMIT = 1 << 16
_int_cache: LRUCache = LRUCache(_INT_CACHE_LIMIT)
_mem_cache: LRUCache = LRUCache(_INT_CACHE_LIMIT)
_poly_cache: LRUCache = LRUCache(_INT_CACHE_LIMIT)


def clear_normalization_caches() -> None:
    """Drop the memoized normal forms and kind derivations (for benchmarks
    and tests that want cold-cache behavior)."""
    from repro.statics.kinds import clear_kind_cache

    _int_cache.clear()
    _mem_cache.clear()
    _poly_cache.clear()
    clear_kind_cache()


def normalization_cache_stats() -> Dict[str, Tuple[int, int, int]]:
    """Per-cache ``(entries, hits, misses)`` counters (observability)."""
    return {
        "int": (len(_int_cache), _int_cache.hits, _int_cache.misses),
        "mem": (len(_mem_cache), _mem_cache.hits, _mem_cache.misses),
        "poly": (len(_poly_cache), _poly_cache.hits, _poly_cache.misses),
    }


def fold_binop(op: str, left: Expr, right: Expr) -> Expr:
    """The normal form of ``left op right`` without interning the redex.

    Constant operands fold directly to an :class:`IntConst`; everything
    else builds the :class:`BinExpr` and normalizes it.  The checker uses
    this for every arithmetic instruction and program-counter bump, where
    the operands are almost always already-normal constants.
    """
    if type(left) is IntConst and type(right) is IntConst:
        fold = ALU_OPS.get(op)
        if fold is None:
            raise StaticsError(f"unknown static operator {op!r}")
        return IntConst(fold(left.value, right.value))
    return normalize_int(BinExpr(op, left, right))


def add_const(expr: Expr, delta: int) -> Expr:
    """``expr + delta`` in normal form, in O(1) for already-normal ``expr``.

    :func:`_poly_to_expr` builds a left-associated spine of ``add`` nodes
    whose innermost-left leaf is the constant term (the empty monomial sorts
    first), so adding a constant only rewrites the left spine.  Non-normal
    inputs still produce a semantically equal expression (every consumer
    re-normalizes before comparing), just not necessarily the canonical one.
    The checker uses this for program-counter bumps -- one per instruction.
    """
    if delta == 0:
        return expr
    node_type = type(expr)
    if node_type is IntConst:
        return IntConst(expr.value + delta)
    if node_type is BinExpr and expr.op == "add":
        left = add_const(expr.left, delta)
        if type(left) is IntConst and left.value == 0:
            # The constant term vanished: drop the zero addend.
            return expr.right
        return BinExpr("add", left, expr.right)
    # A non-constant term (Var, mul, irreducible atom): prepend the constant.
    return BinExpr("add", IntConst(delta), expr)


def normalize_int(expr: Expr) -> Expr:
    """The canonical normal form of an integer expression."""
    node_type = type(expr)
    if node_type is IntConst or node_type is Var:
        return expr  # already normal
    cached = _int_cache.get(expr)
    if cached is not None:
        return cached
    normal = _poly_to_expr(_to_poly(expr))
    _int_cache.put(expr, normal)
    return normal


def _mem_chain(expr: Expr) -> Tuple[Expr, List[Tuple[Expr, Expr]]]:
    """Split a memory expression into (base, updates oldest-first)."""
    updates: List[Tuple[Expr, Expr]] = []
    node = expr
    while isinstance(node, Upd):
        updates.append((normalize_int(node.addr), normalize_int(node.value)))
        node = node.mem
    updates.reverse()  # collected newest-first; flip to oldest-first
    if isinstance(node, (Var, EmptyMem)):
        return node, updates
    raise StaticsError(f"expected a memory expression, got {expr}")


def _rebuild_mem(base: Expr, updates: List[Tuple[Expr, Expr]]) -> Expr:
    result = base
    for address, value in updates:
        result = Upd(result, address, value)
    return result


def normalize_mem(expr: Expr) -> Expr:
    """The canonical normal form of a memory expression."""
    node_type = type(expr)
    if node_type is Var or node_type is EmptyMem:
        return expr  # already normal
    cached = _mem_cache.get(expr)
    if cached is not None:
        return cached
    normal = _normalize_mem_uncached(expr)
    _mem_cache.put(expr, normal)
    return normal


def _normalize_mem_uncached(expr: Expr) -> Expr:
    base, updates = _mem_chain(expr)

    # Drop shadowed updates: an update is dead if a newer one writes to a
    # provably-equal address.
    kept: List[Tuple[Expr, Expr]] = []
    for index in range(len(updates)):
        address, _ = updates[index]
        shadowed = any(
            _provably_equal_normals(address, later_address)
            for later_address, _ in updates[index + 1:]
        )
        if not shadowed:
            kept.append(updates[index])

    # Canonical order: bubble-sort, swapping adjacent updates only when their
    # addresses are provably distinct (swapping is only sound then).
    changed = True
    while changed:
        changed = False
        for index in range(len(kept) - 1):
            (addr_a, _), (addr_b, _) = kept[index], kept[index + 1]
            if _provably_distinct_normals(addr_a, addr_b) \
                    and expr_sort_key(addr_b) < expr_sort_key(addr_a):
                kept[index], kept[index + 1] = kept[index + 1], kept[index]
                changed = True
    return _rebuild_mem(base, kept)


def _normalize_sel(mem: Expr, addr: Expr) -> Expr:
    """Normalize ``sel mem addr``, reducing by McCarthy's axioms."""
    address = normalize_int(addr)
    base, updates = _mem_chain(normalize_mem(mem))
    remaining = list(updates)
    while remaining:
        upd_address, upd_value = remaining[-1]  # newest update
        if _provably_equal_normals(address, upd_address):
            return upd_value
        if _provably_distinct_normals(address, upd_address):
            remaining.pop()
            continue
        # Unknown aliasing: the select is irreducible.
        return Sel(_rebuild_mem(base, remaining), address)
    return Sel(base, address)


def _provably_equal_normals(left: Expr, right: Expr) -> bool:
    if left is right:  # hash-consing: structural equality is identity
        return True
    difference = _poly_add(_to_poly(left), _to_poly(right), sign=-1)
    return not difference


def _provably_distinct_normals(left: Expr, right: Expr) -> bool:
    difference = _poly_add(_to_poly(left), _to_poly(right), sign=-1)
    return tuple(difference) == ((),) and difference[()] != 0


def normalize(expr: Expr, ctx: KindContext = EMPTY_CONTEXT) -> Expr:
    """Normalize at whichever kind ``expr`` has under ``ctx``."""
    kind = infer_kind(expr, ctx)
    return normalize_int(expr) if kind is KIND_INT else normalize_mem(expr)


# ---------------------------------------------------------------------------
# The prover
# ---------------------------------------------------------------------------


def prove_equal(left: Expr, right: Expr, ctx: KindContext = EMPTY_CONTEXT) -> bool:
    """Soundly decide ``Delta |- E1 = E2`` (may return False on true facts).

    Requires both sides to be well-kinded at the same kind under ``ctx``.
    """
    if left is right:
        # Hash-consing fast path: identical expressions are trivially equal,
        # but the judgment still requires well-kindedness under ctx.
        infer_kind(left, ctx)
        return True
    left_kind = infer_kind(left, ctx)
    right_kind = infer_kind(right, ctx)
    if left_kind is not right_kind:
        return False
    if left_kind is KIND_MEM:
        return normalize_mem(left) is normalize_mem(right)
    return _provably_equal_normals(normalize_int(left), normalize_int(right))


def prove_distinct(left: Expr, right: Expr, ctx: KindContext = EMPTY_CONTEXT) -> bool:
    """Soundly decide ``Delta |- E1 <> E2`` for integer expressions."""
    if infer_kind(left, ctx) is not KIND_INT or infer_kind(right, ctx) is not KIND_INT:
        return False
    return _provably_distinct_normals(normalize_int(left), normalize_int(right))


def prove_zero(expr: Expr, ctx: KindContext = EMPTY_CONTEXT) -> bool:
    """Soundly decide ``Delta |- E = 0``."""
    return prove_equal(expr, IntConst(0), ctx)


def prove_nonzero(expr: Expr, ctx: KindContext = EMPTY_CONTEXT) -> bool:
    """Soundly decide ``Delta |- E <> 0``."""
    return prove_distinct(expr, IntConst(0), ctx)
