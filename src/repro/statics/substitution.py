"""Substitutions of static expressions for variables.

A substitution ``S`` maps expression variables to expressions.  The judgment
``Delta |- S : Delta'`` (:func:`check_substitution`) holds when ``S`` maps
every variable of ``Delta'`` to an expression that is well-kinded in
``Delta`` at the declared kind.  Substitutions close the universally
quantified preconditions of code types at jump sites.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.statics.expressions import (
    BinExpr,
    EmptyMem,
    Expr,
    IntConst,
    Sel,
    StaticsError,
    Upd,
    Var,
)
from repro.statics.kinds import KindContext, infer_kind


class Subst:
    """An immutable substitution ``S = {x1 -> E1, ..., xk -> Ek}``."""

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Mapping[str, Expr] = {}):
        self._mapping: Dict[str, Expr] = dict(mapping)

    @classmethod
    def of(cls, **mapping: Expr) -> "Subst":
        return cls(mapping)

    def lookup(self, name: str) -> Expr:
        try:
            return self._mapping[name]
        except KeyError:
            raise StaticsError(f"substitution does not cover {name!r}") from None

    def covers(self, name: str) -> bool:
        return name in self._mapping

    def domain(self) -> Tuple[str, ...]:
        return tuple(self._mapping)

    def items(self) -> Iterable[Tuple[str, Expr]]:
        return self._mapping.items()

    def extend(self, name: str, expr: Expr) -> "Subst":
        extended = dict(self._mapping)
        extended[name] = expr
        return Subst(extended)

    def apply(self, expr: Expr) -> Expr:
        """``S(E)``: replace free variables by their images.

        Variables outside the substitution's domain are left alone, which is
        what checking contexts that mix bound and ambient variables needs.
        """
        if isinstance(expr, Var):
            return self._mapping.get(expr.name, expr)
        if isinstance(expr, (IntConst, EmptyMem)):
            return expr
        if isinstance(expr, BinExpr):
            return BinExpr(expr.op, self.apply(expr.left), self.apply(expr.right))
        if isinstance(expr, Sel):
            return Sel(self.apply(expr.mem), self.apply(expr.addr))
        if isinstance(expr, Upd):
            return Upd(
                self.apply(expr.mem), self.apply(expr.addr), self.apply(expr.value)
            )
        raise StaticsError(f"not a static expression: {expr!r}")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Subst) and self._mapping == other._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    def __repr__(self) -> str:
        inner = ", ".join(f"{e}/{x}" for x, e in sorted(self._mapping.items()))
        return f"[{inner}]"


EMPTY_SUBST = Subst()


def check_substitution(
    subst: Subst, outer: KindContext, inner: KindContext
) -> None:
    """Check ``outer |- S : inner``.

    Every variable declared by ``inner`` must be mapped to an expression that
    is well-kinded in ``outer`` at the declared kind.  Raises
    :class:`StaticsError` otherwise.
    """
    for name, kind in inner.items():
        image = subst.lookup(name)
        actual = infer_kind(image, outer)
        if actual is not kind:
            raise StaticsError(
                f"substitution maps {name!r} (kind {kind}) to {image} "
                f"of kind {actual}"
            )


def substitution_ok(subst: Subst, outer: KindContext, inner: KindContext) -> bool:
    """Boolean form of :func:`check_substitution`."""
    try:
        check_substitution(subst, outer, inner)
    except StaticsError:
        return False
    return True
