"""Substitutions of static expressions for variables.

A substitution ``S`` maps expression variables to expressions.  The judgment
``Delta |- S : Delta'`` (:func:`check_substitution`) holds when ``S`` maps
every variable of ``Delta'`` to an expression that is well-kinded in
``Delta`` at the declared kind.  Substitutions close the universally
quantified preconditions of code types at jump sites.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.statics.expressions import (
    BinExpr,
    EmptyMem,
    Expr,
    IntConst,
    Sel,
    StaticsError,
    Upd,
    Var,
)
from repro.statics.kinds import KIND_INT, KindContext, infer_kind


class Subst:
    """An immutable substitution ``S = {x1 -> E1, ..., xk -> Ek}``."""

    __slots__ = ("_mapping", "_names", "_hash")

    def __init__(self, mapping: Mapping[str, Expr] = {}):
        self._mapping: Dict[str, Expr] = dict(mapping)
        #: Domain as a frozenset, for the free-variable disjointness test
        #: that lets :meth:`apply` return untouched subtrees unchanged.
        self._names: FrozenSet[str] = frozenset(self._mapping)
        self._hash: Optional[int] = None

    @classmethod
    def of(cls, **mapping: Expr) -> "Subst":
        return cls(mapping)

    def lookup(self, name: str) -> Expr:
        try:
            return self._mapping[name]
        except KeyError:
            raise StaticsError(f"substitution does not cover {name!r}") from None

    def covers(self, name: str) -> bool:
        return name in self._mapping

    def domain(self) -> Tuple[str, ...]:
        return tuple(self._mapping)

    def items(self) -> Iterable[Tuple[str, Expr]]:
        return self._mapping.items()

    def as_mapping(self) -> Mapping[str, Expr]:
        """The underlying name -> expression mapping (do not mutate)."""
        return self._mapping

    def extend(self, name: str, expr: Expr) -> "Subst":
        extended = dict(self._mapping)
        extended[name] = expr
        return Subst(extended)

    def apply(self, expr: Expr) -> Expr:
        """``S(E)``: replace free variables by their images.

        Variables outside the substitution's domain are left alone, which is
        what checking contexts that mix bound and ambient variables needs.

        Subtrees whose (cached) free-variable set is disjoint from the
        domain are returned as-is -- no rebuild, and thanks to hash-consing
        the pruned result shares structure with the input.
        """
        try:
            untouched = self._names.isdisjoint(expr._free)
        except AttributeError:
            raise StaticsError(f"not a static expression: {expr!r}") from None
        if untouched:
            return expr
        node_type = type(expr)
        if node_type is Var:
            return self._mapping.get(expr.name, expr)
        apply = self.apply
        if node_type is BinExpr:
            return BinExpr(expr.op, apply(expr.left), apply(expr.right))
        if node_type is Sel:
            return Sel(apply(expr.mem), apply(expr.addr))
        if node_type is Upd:
            return Upd(apply(expr.mem), apply(expr.addr), apply(expr.value))
        raise StaticsError(f"not a static expression: {expr!r}")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Subst) and self._mapping == other._mapping

    def __hash__(self) -> int:
        # Consistent with __eq__ (order-insensitive over the mapping);
        # expressions are hash-consed so hashing items is O(1) each.
        cached = self._hash
        if cached is None:
            cached = hash(frozenset(self._mapping.items()))
            self._hash = cached
        return cached

    def __len__(self) -> int:
        return len(self._mapping)

    def __repr__(self) -> str:
        inner = ", ".join(f"{e}/{x}" for x, e in sorted(self._mapping.items()))
        return f"[{inner}]"


EMPTY_SUBST = Subst()


def check_substitution(
    subst: Subst, outer: KindContext, inner: KindContext
) -> None:
    """Check ``outer |- S : inner``.

    Every variable declared by ``inner`` must be mapped to an expression that
    is well-kinded in ``outer`` at the declared kind.  Raises
    :class:`StaticsError` otherwise.
    """
    mapping = subst._mapping
    for name, kind in inner.items():
        image = mapping.get(name)
        if image is None:
            raise StaticsError(f"substitution does not cover {name!r}")
        if type(image) is IntConst:
            actual = KIND_INT
        else:
            actual = infer_kind(image, outer)
        if actual is not kind:
            raise StaticsError(
                f"substitution maps {name!r} (kind {kind}) to {image} "
                f"of kind {actual}"
            )


def substitution_ok(subst: Subst, outer: KindContext, inner: KindContext) -> bool:
    """Boolean form of :func:`check_substitution`."""
    try:
        check_substitution(subst, outer, inner)
    except StaticsError:
        return False
    return True
