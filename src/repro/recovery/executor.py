"""The recovering executor: checkpoint, roll back, replay.

The subtlety recovery must handle is **detection latency**: the hardware
signals a fault some steps after the strike, so checkpoints taken in
between have captured the corruption.  The executor therefore keeps a
ring of recent checkpoints (the boot checkpoint is always retained) and
rolls back *progressively*: restore the newest checkpoint and replay; a
replay from a corrupted checkpoint deterministically re-detects, in which
case the next older checkpoint is tried.  Under the Single Event Upset
model this terminates at an uncorrupted checkpoint, and by the paper's
Fault Tolerance theorem the replay then reproduces exactly the fault-free
observable behavior.

Rolling back past an output commit re-emits identical (address, value)
writes; the executor truncates its output log at the restore point, so
the reported sequence is exact.  (At the device level this corresponds to
idempotent rewrites of the same data -- the standard output-commit
compromise for checkpoint systems.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.core.errors import MachineStuck, ReproError
from repro.core.faults import Fault, apply_fault
from repro.core.machine import Outcome
from repro.core.semantics import OobPolicy, step
from repro.core.state import MachineState, Status
from repro.program import Program


@dataclass
class RecoveryTrace:
    """Outcome of a recovering run."""

    outcome: Outcome
    #: The observable output (exactly the fault-free sequence when
    #: recovery succeeds).
    outputs: List[Tuple[int, int]]
    #: Total small steps, including replayed work.
    steps: int
    #: Steps that were rolled back and re-executed.
    replayed_steps: int
    #: Number of rollbacks performed.
    recoveries: int
    #: Number of checkpoints taken.
    checkpoints: int


@dataclass
class _Checkpoint:
    state: MachineState
    outputs_len: int
    at_step: int


class RecoveringMachine:
    """Runs a program with checkpoint/rollback/replay recovery.

    ``checkpoint_interval`` bounds the work lost to a rollback;
    ``checkpoint_ring`` bounds how many recent checkpoints are retained
    (the boot checkpoint is kept unconditionally as the last resort).
    """

    def __init__(
        self,
        program: Program,
        checkpoint_interval: int = 64,
        checkpoint_ring: int = 8,
        oob_policy: OobPolicy = OobPolicy.TRAP,
        backend: str = "compiled",
    ):
        if checkpoint_interval < 1:
            raise ReproError("checkpoint interval must be positive")
        if checkpoint_ring < 1:
            raise ReproError("checkpoint ring must hold at least one entry")
        if backend not in ("step", "compiled"):
            raise ReproError(f"unknown backend {backend!r}")
        self.program = program
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_ring = checkpoint_ring
        self.oob_policy = oob_policy
        self.backend = backend

    def run(
        self,
        max_steps: int = 1_000_000,
        fault: Optional[Fault] = None,
        fault_at_step: int = 0,
        max_recoveries: int = 32,
    ) -> RecoveryTrace:
        """Run to completion, recovering from detected faults.

        ``fault`` is injected once at ``fault_at_step`` (absolute step
        count of the *first* execution; replays are fault-free, as the SEU
        model prescribes).
        """
        if max_recoveries < 0:
            raise ReproError(
                f"max_recoveries must be non-negative (got {max_recoveries})")
        state = self.program.boot()
        outputs: List[Tuple[int, int]] = []
        boot = _Checkpoint(state.clone(), 0, 0)
        # A deque keeps ring eviction O(1); long runs with frequent
        # outputs checkpoint (and evict) on nearly every instruction.
        ring: Deque[_Checkpoint] = deque(maxlen=self.checkpoint_ring)
        checkpoints_taken = 1
        steps = 0
        replayed = 0
        recoveries = 0
        since_checkpoint = 0
        pending_fault = fault
        #: After a failed replay, only checkpoints strictly older than the
        #: last restore point may be tried (everything newer -- including
        #: checkpoints taken *during* the failed replay -- is suspect).
        rollback_barrier: Optional[int] = None

        # The compiled backend supersteps whole fetch+execute pairs through
        # the unfused closure table, falling back to single interpreter
        # steps whenever an event could land between the halves: a pending
        # injection at the next step, a checkpoint boundary mid-pair, a
        # 1-step budget, or a state the closures cannot drive (pending
        # ``ir``, pc disagreement -- ``step_instruction`` checks those
        # itself and declines without mutating).
        step_pair = None
        if self.backend == "compiled":
            from repro.exec import compiled_for, step_instruction

            compiled = compiled_for(state, self.oob_policy)
            if compiled is not None:
                step_pair = step_instruction
        interval = self.checkpoint_interval

        while steps < max_steps and not state.is_terminal:
            if pending_fault is not None and steps == fault_at_step:
                apply_fault(state, pending_fault)
                pending_fault = None
            had_outputs = False
            superstepped = False
            if (step_pair is not None
                    and max_steps - steps >= 2
                    and since_checkpoint + 2 <= interval
                    and (pending_fault is None
                         or fault_at_step != steps + 1)):
                before_outputs = len(outputs)
                if step_pair(state, compiled, outputs) is not None:
                    steps += 2
                    since_checkpoint += 2
                    had_outputs = len(outputs) > before_outputs
                    superstepped = True
            if not superstepped:
                try:
                    result = step(state, self.oob_policy)
                except MachineStuck:
                    return RecoveryTrace(Outcome.STUCK, outputs, steps,
                                         replayed, recoveries,
                                         checkpoints_taken)
                steps += 1
                since_checkpoint += 1
                outputs.extend(result.outputs)
                had_outputs = bool(result.outputs)

            if state.status is Status.FAULT_DETECTED:
                if recoveries >= max_recoveries:
                    return RecoveryTrace(
                        Outcome.FAULT_DETECTED, outputs, steps,
                        replayed, recoveries, checkpoints_taken,
                    )
                # Progressive rollback: checkpoints taken during the
                # detection-latency window captured the corruption and
                # their replays deterministically re-detect; pop them
                # until an uncorrupted one (at worst, boot) replays clean.
                while ring and rollback_barrier is not None \
                        and ring[-1].at_step >= rollback_barrier:
                    ring.pop()
                restore = ring.pop() if ring else boot
                rollback_barrier = restore.at_step
                recoveries += 1
                replayed += steps - restore.at_step
                state = restore.state.clone()
                del outputs[restore.outputs_len:]
                steps = restore.at_step
                since_checkpoint = 0
                continue

            if had_outputs or since_checkpoint >= interval:
                # maxlen evicts the oldest ring entry automatically.
                ring.append(_Checkpoint(state.clone(), len(outputs), steps))
                checkpoints_taken += 1
                since_checkpoint = 0

        if state.status is Status.HALTED:
            outcome = Outcome.HALTED
        elif state.status is Status.FAULT_DETECTED:
            outcome = Outcome.FAULT_DETECTED
        else:
            outcome = Outcome.RUNNING
        return RecoveryTrace(outcome, outputs, steps, replayed,
                             recoveries, checkpoints_taken)
    # NOTE: ``steps`` is rewound on rollback so it tracks *logical*
    # progress; ``replayed_steps`` accumulates the physical re-execution
    # cost.  A rollback also discards the pending-fault marker implicitly:
    # the fault fired on the first pass and never re-fires (SEU).