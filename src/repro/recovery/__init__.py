"""Fault recovery: checkpoint/rollback/replay on top of TAL_FT detection.

The paper detects faults and stops: "Controlled program termination or
perhaps recovery may follow.  Fault recovery is an orthogonal issue to
fault detection, so we leave it unspecified here."  This package supplies
the orthogonal half as a documented extension.

The scheme is classic checkpoint-and-replay, made *safe* by the paper's
guarantees:

* the machine state is checkpointed at every committed (observable) store
  and every N steps -- checkpointing at output commits solves the output-
  commit problem (a rolled-back execution never has to "un-emit");
* on hardware fault detection, the state rolls back to the last
  checkpoint and re-executes;
* under the Single Event Upset model the replay is fault-free, and by
  **No False Positives** it cannot re-trip the detector; by **Fault
  Tolerance** the outputs already committed are a prefix of the fault-free
  run -- so the recovered execution produces *exactly* the fault-free
  observable behavior.

That end-to-end property ("detection + recovery = masking") is checked by
the test-suite over exhaustive single-fault sweeps.
"""

from repro.recovery.executor import RecoveringMachine, RecoveryTrace

__all__ = ["RecoveringMachine", "RecoveryTrace"]
