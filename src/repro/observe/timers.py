"""Scoped phase timers.

``phase_timer("campaign.reference")`` wraps a pipeline phase: on exit it
records the elapsed wall time into the default registry's
``talft_phase_seconds`` histogram (labelled by phase), emits a ``phase``
event when the event stream is on, and -- when phase announcements are
enabled (``--progress`` on the non-campaign CLI commands) -- prints a
one-line ``[talft] <phase>: <seconds>s`` note to stderr so long commands
are never silent.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.observe.events import emit
from repro.observe.registry import MetricsRegistry, get_registry

_announce_phases = False


def announce_phases(enabled: bool) -> None:
    """Globally toggle stderr phase announcements (CLI ``--progress``)."""
    global _announce_phases
    _announce_phases = enabled


@contextmanager
def phase_timer(
    phase: str,
    registry: Optional[MetricsRegistry] = None,
    **labels: object,
) -> Iterator[None]:
    """Time a phase into ``talft_phase_seconds{phase=...}``.

    The timer always runs its body; recording happens in a ``finally`` so
    a raising phase still shows up in the histogram (its duration is part
    of the story of the failure).
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        reg = registry if registry is not None else get_registry()
        reg.histogram("talft_phase_seconds", phase=phase, **labels).observe(
            elapsed)
        emit("phase", phase=phase, seconds=round(elapsed, 6), **labels)
        if _announce_phases:
            print(f"[talft] {phase}: {elapsed:.3f}s", file=sys.stderr)


def time_call(phase: str, fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` under :func:`phase_timer`."""
    with phase_timer(phase):
        return fn(*args, **kwargs)
