"""Optional JSONL structured-event stream.

Metrics (:mod:`repro.observe.registry`) answer "how much / how fast";
the event stream answers "what happened, in order": campaign phases,
pool rebuilds, chunk completions, compilations, journal commits.  Each
event is one JSON object per line with a wall-clock timestamp, written
to a caller-configured file -- machine-readable by ``jq`` and cheap to
tail while a long campaign runs.

The stream is **off by default** and costs one ``is None`` check per
:func:`emit` call when disabled; instrument sites therefore call
``emit`` unconditionally.  Enable it with ``talft campaign --events
PATH`` or :func:`configure_events`.
"""

from __future__ import annotations

import json
import time
from typing import IO, Optional, Union

_stream: Optional[IO[str]] = None
_owns_stream = False


def configure_events(target: Union[str, IO[str], None]) -> None:
    """Route events to ``target``: a path, an open text handle, or ``None``
    to disable the stream (closing any path-opened file)."""
    global _stream, _owns_stream
    if _owns_stream and _stream is not None:
        _stream.close()
    if target is None:
        _stream, _owns_stream = None, False
    elif isinstance(target, str):
        _stream, _owns_stream = open(target, "w"), True
    else:
        _stream, _owns_stream = target, False


def events_enabled() -> bool:
    return _stream is not None


def emit(_event: str, **fields: object) -> None:
    """Append one event line; a disabled stream makes this a no-op.

    The event name is positional-only in practice (``_event``-prefixed so
    ``fields`` may freely use natural keys like ``kind``).  Values that
    JSON cannot encode render via ``str`` -- events are a debugging
    surface, never parsed back into engine state.
    """
    stream = _stream
    if stream is None:
        return
    record = {"ts": round(time.time(), 6), "event": _event}
    record.update(fields)
    stream.write(json.dumps(record, default=str, sort_keys=True) + "\n")
    stream.flush()


def close_events() -> None:
    """Flush and disable the stream (idempotent)."""
    configure_events(None)
