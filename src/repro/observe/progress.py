"""Live progress heartbeats with throughput and ETA.

Campaigns over real kernels run for minutes; before this module they ran
silently.  :class:`ProgressReporter` prints rate-limited heartbeats to
stderr (``--progress`` on the CLI)::

    campaign: 12/48 steps (25.0%) | 31.2 steps/s | eta 1.2s

Heartbeats are *observational*: they go to stderr (stdout stays
machine-parseable), they are rate-limited by wall time (at most one line
per ``min_interval`` seconds plus a final summary), and they never touch
engine state -- a campaign with ``--progress`` produces a bit-identical
report to one without.

On a TTY the reporter redraws one line in place (carriage return); when
stderr is redirected (CI logs, pipes) each heartbeat is a full line so
the history stays readable.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

from repro.observe.events import emit


class ProgressReporter:
    """Rate-limited progress/ETA heartbeats over a known total."""

    def __init__(
        self,
        total: int,
        label: str = "progress",
        unit: str = "steps",
        stream: Optional[IO[str]] = None,
        min_interval: float = 0.5,
    ) -> None:
        self.total = max(0, total)
        self.label = label
        self.unit = unit
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.done = 0
        self._started = time.monotonic()
        self._last_emit = float("-inf")
        self._wrote_tty_line = False

    def _is_tty(self) -> bool:
        isatty = getattr(self.stream, "isatty", None)
        try:
            return bool(isatty()) if isatty is not None else False
        except (ValueError, OSError):  # closed/odd streams: stay line-mode
            return False

    def advance(self, amount: int = 1) -> None:
        """Record progress; prints a heartbeat when the interval elapsed."""
        self.done += amount
        now = time.monotonic()
        if now - self._last_emit < self.min_interval and \
                self.done < self.total:
            return
        self._last_emit = now
        self._write(self._format(now), final=False)

    def finish(self) -> None:
        """Print the closing summary line (always, even under the rate
        limit) and terminate any in-place TTY line."""
        now = time.monotonic()
        self._write(self._format(now), final=True)
        emit("progress-finished", label=self.label, done=self.done,
             total=self.total, seconds=round(now - self._started, 6))

    def _format(self, now: float) -> str:
        elapsed = max(now - self._started, 1e-9)
        rate = self.done / elapsed
        if self.total:
            pct = 100.0 * self.done / self.total
            remaining = max(self.total - self.done, 0)
            eta = remaining / rate if rate > 0 else float("inf")
            eta_text = f"{eta:.1f}s" if eta != float("inf") else "?"
            return (f"{self.label}: {self.done}/{self.total} {self.unit} "
                    f"({pct:.1f}%) | {rate:.1f} {self.unit}/s | "
                    f"eta {eta_text}")
        return (f"{self.label}: {self.done} {self.unit} | "
                f"{rate:.1f} {self.unit}/s")

    def _write(self, text: str, final: bool) -> None:
        try:
            if self._is_tty():
                self.stream.write("\r" + text + ("\n" if final else ""))
                self._wrote_tty_line = not final
            else:
                self.stream.write(text + "\n")
            self.stream.flush()
        except (ValueError, OSError):
            pass  # a closed stderr must never kill the campaign
