"""Unified observability: metrics, phase timers, events, progress.

``repro.observe`` is the one place the repo's engines report what they
are doing:

* :mod:`repro.observe.registry` -- the process-local
  :class:`MetricsRegistry` (counters, gauges, histograms with labels;
  mergeable across campaign worker processes);
* :mod:`repro.observe.timers` -- scoped :func:`phase_timer` blocks;
* :mod:`repro.observe.events` -- the optional JSONL structured-event
  stream;
* :mod:`repro.observe.progress` -- live heartbeats with ETA
  (:class:`ProgressReporter`).

:func:`snapshot` is the unified read side: one dict absorbing the
default registry *and* the cache statistics that used to be scattered
across ``repro.exec.exec_cache_stats``,
``repro.statics.normalization_cache_stats`` and
``repro.statics.intern_table_sizes``.  :func:`write_metrics` writes a
snapshot as JSON plus a Prometheus text exposition (``PATH`` and
``PATH.prom``) -- the CLI's ``--metrics PATH``.

Everything here is observational: no report, trace or checked program
ever depends on registry contents, so instrumented and uninstrumented
runs stay bit-identical.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from repro.observe.events import (
    close_events,
    configure_events,
    emit,
    events_enabled,
)
from repro.observe.progress import ProgressReporter
from repro.observe.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SECONDS_BUCKETS,
    STEPS_BUCKETS,
    disabled,
    get_registry,
    host_label,
    set_registry,
)
from repro.observe.timers import announce_phases, phase_timer, time_call

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "ProgressReporter",
    "SECONDS_BUCKETS",
    "STEPS_BUCKETS",
    "announce_phases",
    "close_events",
    "configure_events",
    "disabled",
    "emit",
    "events_enabled",
    "get_registry",
    "host_label",
    "phase_timer",
    "set_registry",
    "snapshot",
    "time_call",
    "write_metrics",
]


def snapshot(registry: Optional[MetricsRegistry] = None) -> Dict[str, object]:
    """Everything observable about this process, as one JSON-able dict.

    Absorbs the scattered per-subsystem ``*_stats()`` surfaces: the
    metrics registry, the compiled-program cache
    (:func:`repro.exec.exec_cache_stats`), the statics normalization
    caches (:func:`repro.statics.normalization_cache_stats`) and the
    hash-consing intern tables (:func:`repro.statics.intern_table_sizes`).
    Imports are deferred so ``repro.observe`` itself stays dependency-free
    (the instrumented layers import *it*).
    """
    from repro.exec import exec_cache_stats
    from repro.statics import intern_table_sizes, normalization_cache_stats

    reg = registry if registry is not None else get_registry()
    return {
        "metrics": reg.as_dict(),
        "caches": {
            "exec": exec_cache_stats(),
            "normalization": {
                name: {"entries": entries, "hits": hits, "misses": misses}
                for name, (entries, hits, misses)
                in normalization_cache_stats().items()
            },
            "intern_tables": intern_table_sizes(),
        },
    }


def write_metrics(
    path: str,
    registry: Optional[MetricsRegistry] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Tuple[str, str]:
    """Write the :func:`snapshot` to ``path`` (JSON) and the registry's
    Prometheus text exposition to ``path + ".prom"``.

    ``extra`` merges additional top-level keys into the JSON document
    (the CLI records the command and its arguments).  Returns the two
    paths written.
    """
    reg = registry if registry is not None else get_registry()
    document = snapshot(reg)
    if extra:
        document.update(extra)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    prom_path = path + ".prom"
    with open(prom_path, "w") as handle:
        handle.write(reg.to_prometheus())
    return path, prom_path
