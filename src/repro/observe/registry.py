"""The process-local metrics registry: counters, gauges, histograms.

Every engine in the repo (type checker, compiled execution backend,
injection campaigns, journal/supervision layer) records what it is doing
into one :class:`MetricsRegistry` per process.  The registry is designed
around two constraints:

* **Near-zero hot-path cost.**  An instrument site resolves its metric
  object once (a dict lookup under a lock) and then increments plain
  Python ints; a disabled registry (:class:`NullRegistry`, see
  :func:`disabled`) turns every operation into a no-op method call.  The
  campaign engine instruments at *step* and *chunk* granularity, never
  per faulty run, which is what keeps the measured overhead of full
  instrumentation on the campaign hot path under the 3% contract
  (``benchmarks/bench_observability.py``).
* **Mergeable across processes.**  Campaign pool workers cannot share a
  registry with the parent, so worker telemetry travels as plain dicts
  (:meth:`MetricsRegistry.as_dict`) and folds into the parent with
  :meth:`MetricsRegistry.merge_dict`: counters add, gauges keep the
  maximum, histograms add bucket-wise.

Metrics are **observational only**: nothing in a campaign report, a
checked program or a trace ever depends on registry contents, so two runs
that differ only in instrumentation remain bit-identical (pinned by
``tests/test_observability.py``).
"""

from __future__ import annotations

import os
import socket
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bounds for durations in seconds: ~10us to ~30s.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05,
    0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
)

#: Default histogram bounds for step counts (e.g. detection latency in
#: machine steps): powers of two up to 64k.
STEPS_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1024, 4096, 16384, 65536,
)

LabelItems = Tuple[Tuple[str, str], ...]


def host_label() -> str:
    """This process's identity as a metric label value: ``hostname:pid``.

    Shard workers stamp their telemetry with it before shipping it to the
    coordinator, so metrics merged from a fleet spread across machines
    (or just across processes on one machine) stay distinguishable
    instead of colliding into one anonymous series in
    :meth:`MetricsRegistry.merge_dict`.
    """
    return f"{socket.gethostname()}:{os.getpid()}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins; merges keep the max)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A bucketed distribution with a running sum and count.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge.
    ``observe`` costs one binary search plus three increments.
    """

    __slots__ = ("bounds", "buckets", "sum", "count")

    def __init__(self, bounds: Sequence[float] = SECONDS_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left keeps the edges inclusive (Prometheus ``le``
        # semantics): an observation equal to a bound lands in that bound's
        # bucket, not the next one.
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _render_key(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Metric objects are created on first use and cached by
    ``(name, sorted labels)``; instrument sites on hot paths should hold
    on to the returned object instead of re-resolving it per iteration.
    Creation is guarded by a lock; increments rely on the GIL (single
    bytecode dict/int operations), which is exactly the contract the
    rest of the repo's caches already use.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}

    # -- metric accessors ---------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_items(labels))
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(key, Counter())
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_items(labels))
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(key, Gauge())
        return metric

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = SECONDS_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = (name, _label_items(labels))
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(key, Histogram(buckets))
        return metric

    # -- serialization / merging -------------------------------------------

    def as_dict(self) -> Dict[str, list]:
        """A JSON-able snapshot (the shape :meth:`merge_dict` consumes)."""
        with self._lock:
            return {
                "counters": [
                    {"name": name, "labels": dict(labels),
                     "value": metric.value}
                    for (name, labels), metric in self._counters.items()
                ],
                "gauges": [
                    {"name": name, "labels": dict(labels),
                     "value": metric.value}
                    for (name, labels), metric in self._gauges.items()
                ],
                "histograms": [
                    {"name": name, "labels": dict(labels),
                     "bounds": list(metric.bounds),
                     "buckets": list(metric.buckets),
                     "sum": metric.sum, "count": metric.count}
                    for (name, labels), metric in self._histograms.items()
                ],
            }

    def merge_dict(
        self,
        data: Mapping[str, list],
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold a serialized registry (e.g. a worker's) into this one.

        Counters add; gauges keep the maximum of the two values;
        histograms add bucket-wise when the bounds agree (and are adopted
        wholesale when this registry has not seen the metric yet).

        ``extra_labels`` is stamped onto every merged series (overriding
        same-named labels from the source).  The shard coordinator passes
        ``{"host": <hostname:pid>}`` so telemetry from different fleet
        workers -- potentially on different machines -- lands in distinct
        series instead of silently summing into one.
        """
        def _labels(entry: Mapping[str, object]) -> Dict[str, object]:
            labels = dict(entry.get("labels", {}))
            if extra_labels:
                labels.update(extra_labels)
            return labels

        for entry in data.get("counters", ()):
            self.counter(entry["name"], **_labels(entry)).inc(
                entry["value"])
        for entry in data.get("gauges", ()):
            gauge = self.gauge(entry["name"], **_labels(entry))
            gauge.set(max(gauge.value, entry["value"]))
        for entry in data.get("histograms", ()):
            histogram = self.histogram(
                entry["name"], buckets=entry["bounds"], **_labels(entry))
            if list(histogram.bounds) != list(entry["bounds"]):
                continue  # incompatible shape: never corrupt local data
            for index, count in enumerate(entry["buckets"]):
                histogram.buckets[index] += count
            histogram.sum += entry["sum"]
            histogram.count += entry["count"]

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_dict(other.as_dict())

    # -- exposition ---------------------------------------------------------

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format (v0.0.4).

        Counters render with a ``_total``-as-written name, histograms as
        cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``,
        exactly the shape ``promtool`` and scrapers expect.
        """
        lines: List[str] = []
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        seen_types: Dict[str, str] = {}

        def type_line(name: str, kind: str) -> None:
            if seen_types.get(name) != kind:
                seen_types[name] = kind
                lines.append(f"# TYPE {name} {kind}")

        for (name, labels), metric in counters:
            type_line(name, "counter")
            lines.append(f"{_render_key(name, labels)} {metric.value}")
        for (name, labels), metric in gauges:
            type_line(name, "gauge")
            lines.append(f"{_render_key(name, labels)} {metric.value}")
        for (name, labels), metric in histograms:
            type_line(name, "histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.buckets):
                cumulative += count
                bucket_labels = labels + (("le", _format_bound(bound)),)
                lines.append(
                    f"{_render_key(name + '_bucket', bucket_labels)} "
                    f"{cumulative}")
            lines.append(
                f"{_render_key(name + '_bucket', labels + (('le', '+Inf'),))} "
                f"{metric.count}")
            lines.append(f"{_render_key(name + '_sum', labels)} {metric.sum}")
            lines.append(
                f"{_render_key(name + '_count', labels)} {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_bound(bound: float) -> str:
    if float(bound) == int(bound):
        return str(int(bound))
    return repr(float(bound))


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    bounds: Tuple[float, ...] = ()
    buckets: List[int] = []
    sum = 0.0
    count = 0

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """A registry that records nothing (the instrumentation-off baseline).

    Used by :func:`disabled` and the overhead benchmark: instrument sites
    keep calling the same API, every call is a no-op, and snapshots come
    back empty.
    """

    def __init__(self) -> None:  # no lock, no tables
        pass

    def counter(self, name: str, **labels: object) -> Counter:
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name: str, buckets: Sequence[float] = SECONDS_BUCKETS,
                  **labels: object) -> Histogram:
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    def as_dict(self) -> Dict[str, list]:
        return {"counters": [], "gauges": [], "histograms": []}

    def merge_dict(
        self,
        data: Mapping[str, list],
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        pass

    def to_prometheus(self) -> str:
        return ""


# ---------------------------------------------------------------------------
# The process-local default registry
# ---------------------------------------------------------------------------

_default_registry: MetricsRegistry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-local default registry every instrument site records to."""
    return _default_registry


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Replace the default registry (``None`` installs a fresh one).

    Returns the previous registry so callers (tests, the overhead bench)
    can restore it.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry if registry is not None else MetricsRegistry()
    return previous


def disabled():
    """Context manager: run with metrics recording off (a
    :class:`NullRegistry` as the default), restoring the previous registry
    on exit.  The overhead benchmark's instrumentation-off baseline."""
    from contextlib import contextmanager

    @contextmanager
    def _disabled():
        previous = set_registry(NullRegistry())
        try:
            yield
        finally:
            set_registry(previous)

    return _disabled()
