"""Multi-tenant fair scheduling for the campaign service.

PR 8's service ran jobs FIFO on a single runner thread; this module is
the real scheduler behind ``talft serve``:

* **Weighted fair queueing across tenants.**  Every job carries a
  ``tenant`` label; each tenant holds its own queue and accumulates
  *virtual time* as its jobs are dispatched (``1 / weight`` per job).
  The next job always comes from the backlogged tenant with the lowest
  virtual time, so a tenant submitting 100 jobs cannot starve a tenant
  submitting 2 -- with equal weights, dispatch alternates; a tenant with
  weight 2 receives two dispatch slots per slot of a weight-1 tenant.
  Idle tenants re-enter at the current virtual floor, so sitting out
  never banks credit (the standard start-time fair-queueing guard).
* **Priority within a tenant.**  Higher ``priority`` dispatches first;
  ties run in submission order.  Priority never crosses tenant
  boundaries -- a tenant cannot jump the fairness schedule by inflating
  its own priorities.
* **Bounded admission.**  At most ``queue_limit`` jobs may be queued;
  beyond that :meth:`FairScheduler.submit` raises :class:`QueueFull`
  carrying a ``retry_after`` estimate (EWMA of recent job durations
  scaled by backlog), which the HTTP layer maps to ``429`` +
  ``Retry-After``.  Backpressure beats unbounded memory growth.
* **Concurrency + cooperative cancellation.**  ``max_concurrent`` worker
  threads dispatch jobs.  Every job gets a cancellation
  :class:`threading.Event`; the service's runner checks it (plus the
  job's deadline) at each campaign step boundary and aborts through the
  engine's existing abort path -- ``run_campaign`` flushes and closes
  its journal on the way out, and the shard coordinator force-closes its
  fleet, so a cancelled job's completed steps stay durable.
* **Graceful drain.**  :meth:`FairScheduler.drain` stops admission,
  interrupts running jobs cooperatively (they checkpoint through their
  campaign journals), and joins the workers -- the SIGTERM path of
  ``talft serve``.

The scheduler is deliberately ignorant of HTTP and of campaigns: it
dispatches opaque job ids to a runner callable.  That keeps fairness
testable with stub jobs and leaves campaign semantics in
:mod:`repro.service.server`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.observe import get_registry


class QueueFull(Exception):
    """Admission refused: the queue is at ``queue_limit``.

    ``retry_after`` is the seconds a client should wait before retrying
    (the HTTP layer's ``Retry-After`` header).
    """

    def __init__(self, message: str, retry_after: int):
        super().__init__(message)
        self.retry_after = retry_after


class SchedulerDraining(Exception):
    """Admission refused: the scheduler is shutting down."""


class JobCancelled(Exception):
    """Raised inside a runner when its job's cancel event fires."""


class JobTimeout(Exception):
    """Raised inside a runner when its job's deadline passes."""


class JobInterrupted(Exception):
    """Raised inside a runner during drain: the job should checkpoint
    and be re-enqueued by the next service start, not settle."""


#: Fallback Retry-After (seconds) before any job duration is known.
_DEFAULT_RETRY_AFTER = 5
#: EWMA smoothing for observed job durations.
_EWMA_ALPHA = 0.3


class _Entry:
    """One queued job: heap-ordered by (-priority, submission order)."""

    __slots__ = ("priority", "seq", "job_id", "tenant", "cancelled")

    def __init__(self, priority: int, seq: int, job_id: str, tenant: str):
        self.priority = priority
        self.seq = seq
        self.job_id = job_id
        self.tenant = tenant
        self.cancelled = False  # lazy removal: popped entries are skipped

    def __lt__(self, other: "_Entry") -> bool:
        return (-self.priority, self.seq) < (-other.priority, other.seq)


class _Tenant:
    __slots__ = ("name", "weight", "virtual", "heap", "queued")

    def __init__(self, name: str, weight: float):
        self.name = name
        self.weight = weight
        self.virtual = 0.0  # accumulated service in virtual time
        self.heap: List[_Entry] = []
        self.queued = 0  # live (non-cancelled) entries in the heap


class FairScheduler:
    """Weighted fair dispatch of job ids to ``max_concurrent`` workers.

    ``runner(job_id)`` executes one job to completion; it must not
    raise (the service wraps job failures into job state).  Tenant
    weights default to 1.0; unknown tenants are created on first
    submission.
    """

    def __init__(
        self,
        runner: Callable[[str], None],
        max_concurrent: int = 1,
        queue_limit: int = 64,
        tenant_weights: Optional[Dict[str, float]] = None,
    ):
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be at least 1 (got {max_concurrent})")
        if queue_limit < 1:
            raise ValueError(
                f"queue_limit must be at least 1 (got {queue_limit})")
        for name, weight in (tenant_weights or {}).items():
            if weight <= 0:
                raise ValueError(
                    f"tenant weight for {name!r} must be positive "
                    f"(got {weight})")
        self._runner = runner
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self._weights = dict(tenant_weights or {})
        self._tenants: Dict[str, _Tenant] = {}
        self._entries: Dict[str, _Entry] = {}  # queued job id -> entry
        self._cancel_events: Dict[str, threading.Event] = {}
        self._queued_total = 0
        self._running = 0
        self._draining = False
        self._drain_event = threading.Event()
        self._ewma_seconds: Optional[float] = None
        self._dispatch_seq = itertools.count(1)
        self._cv = threading.Condition()
        registry = get_registry()
        self._depth_gauges = {}
        self._registry = registry
        self._workers = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"talft-scheduler-{index}")
            for index in range(max_concurrent)
        ]
        for worker in self._workers:
            worker.start()

    # -- admission -------------------------------------------------------

    def submit(self, job_id: str, tenant: str = "default",
               priority: int = 0) -> None:
        """Queue one job, or raise :class:`QueueFull` /
        :class:`SchedulerDraining`."""
        with self._cv:
            if self._draining:
                raise SchedulerDraining(
                    "service is draining and no longer accepts jobs")
            if self._queued_total >= self.queue_limit:
                raise QueueFull(
                    f"job queue is full ({self.queue_limit} queued); "
                    "retry later", self._retry_after_locked())
            state = self._tenant(tenant)
            entry = _Entry(priority, next(self._dispatch_seq), job_id,
                           tenant)
            heapq.heappush(state.heap, entry)
            state.queued += 1
            self._entries[job_id] = entry
            self._cancel_events[job_id] = threading.Event()
            self._queued_total += 1
            self._depth_gauge(tenant).set(state.queued)
            self._cv.notify()

    def _tenant(self, name: str) -> _Tenant:
        state = self._tenants.get(name)
        if state is None:
            state = _Tenant(name, self._weights.get(name, 1.0))
            # A newcomer starts at the current virtual floor: it cannot
            # claim service for the time it did not exist.
            busy = [t.virtual for t in self._tenants.values() if t.queued]
            state.virtual = min(busy) if busy else 0.0
            self._tenants[name] = state
        return state

    def _retry_after_locked(self) -> int:
        per_job = self._ewma_seconds if self._ewma_seconds is not None \
            else float(_DEFAULT_RETRY_AFTER)
        backlog = self._queued_total + self._running
        estimate = per_job * max(1, backlog) / self.max_concurrent
        return max(1, min(300, int(estimate + 0.5)))

    # -- cancellation ----------------------------------------------------

    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job.  Returns ``"queued"`` when it was dequeued
        before ever running, ``"running"`` when the cancel event was set
        (the runner aborts at its next step boundary), ``None`` when the
        scheduler does not know the job (already settled or never
        submitted)."""
        with self._cv:
            entry = self._entries.pop(job_id, None)
            if entry is not None:
                entry.cancelled = True
                state = self._tenants[entry.tenant]
                state.queued -= 1
                self._queued_total -= 1
                self._depth_gauge(state.name).set(state.queued)
                self._cancel_events.pop(job_id, None)
                return "queued"
            event = self._cancel_events.get(job_id)
            if event is not None:
                event.set()
                return "running"
            return None

    def cancel_event(self, job_id: str) -> Optional[threading.Event]:
        """The cancellation event a running job's runner polls."""
        with self._cv:
            return self._cancel_events.get(job_id)

    @property
    def drain_event(self) -> threading.Event:
        """Set when the scheduler is draining; runners treat it like a
        cancel that re-enqueues instead of settling."""
        return self._drain_event

    # -- introspection ---------------------------------------------------

    def depths(self) -> Dict[str, int]:
        with self._cv:
            return {name: state.queued
                    for name, state in self._tenants.items() if state.queued}

    def idle(self) -> bool:
        with self._cv:
            return self._queued_total == 0 and self._running == 0

    # -- dispatch --------------------------------------------------------

    def _next_locked(self) -> Optional[Tuple[_Tenant, _Entry]]:
        best: Optional[_Tenant] = None
        for state in self._tenants.values():
            # Skim lazily-cancelled entries off the heap top first.
            while state.heap and state.heap[0].cancelled:
                heapq.heappop(state.heap)
            if not state.heap:
                continue
            if best is None or state.virtual < best.virtual:
                best = state
        if best is None:
            return None
        entry = heapq.heappop(best.heap)
        best.queued -= 1
        best.virtual += 1.0 / best.weight
        self._queued_total -= 1
        self._entries.pop(entry.job_id, None)
        self._depth_gauge(best.name).set(best.queued)
        return best, entry

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                while True:
                    if self._draining and self._queued_total == 0:
                        return
                    picked = self._next_locked()
                    if picked is not None:
                        break
                    self._cv.wait(timeout=0.5)
                self._running += 1
            _, entry = picked
            started = time.monotonic()
            try:
                try:
                    self._runner(entry.job_id)
                except Exception:
                    # The runner contract is "never raise" (the service
                    # folds job failures into job state); if it breaks,
                    # losing one worker thread forever is the worse
                    # failure mode, so log and keep serving.
                    import traceback
                    traceback.print_exc()
            finally:
                elapsed = time.monotonic() - started
                with self._cv:
                    self._running -= 1
                    self._cancel_events.pop(entry.job_id, None)
                    if self._ewma_seconds is None:
                        self._ewma_seconds = elapsed
                    else:
                        self._ewma_seconds += _EWMA_ALPHA * (
                            elapsed - self._ewma_seconds)
                    self._cv.notify_all()

    # -- shutdown --------------------------------------------------------

    def drain(self, timeout: float = 30.0, interrupt: bool = True) -> bool:
        """Stop admission and wind the workers down.

        With ``interrupt=True`` (the SIGTERM path) running jobs see the
        drain event at their next step boundary, checkpoint through
        their journals, and are journaled back to ``queued`` by the
        service for the next start to resume.  With ``interrupt=False``
        running and queued jobs finish first (test-friendly flush).
        Returns ``True`` when every worker exited within ``timeout``.
        """
        with self._cv:
            self._draining = True
            if interrupt:
                # Unqueue everything still waiting; the service keeps
                # those jobs journaled as queued for the next start.
                for entry in self._entries.values():
                    entry.cancelled = True
                    state = self._tenants[entry.tenant]
                    state.queued -= 1
                    self._depth_gauge(state.name).set(state.queued)
                self._entries.clear()
                self._queued_total = 0
                self._drain_event.set()
            self._cv.notify_all()
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            worker.join(timeout=max(0.0, deadline - time.monotonic()))
        return not any(worker.is_alive() for worker in self._workers)

    def _depth_gauge(self, tenant: str):
        gauge = self._depth_gauges.get(tenant)
        if gauge is None:
            gauge = self._registry.gauge("service_queue_depth",
                                         tenant=tenant)
            self._depth_gauges[tenant] = gauge
        return gauge


def parse_tenant_weights(specs: List[str]) -> Dict[str, float]:
    """``["teamA=2", "teamB=1.5"]`` -> ``{"teamA": 2.0, "teamB": 1.5}``.

    Raises ``ValueError`` with a user-facing message for malformed specs
    (the CLI maps it to exit code 2).
    """
    weights: Dict[str, float] = {}
    for spec in specs:
        name, sep, text = spec.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ValueError(
                f"invalid tenant weight {spec!r} (expected NAME=WEIGHT)")
        try:
            weight = float(text)
        except ValueError:
            raise ValueError(
                f"invalid tenant weight {spec!r} (weight must be a "
                "number)") from None
        if weight <= 0:
            raise ValueError(
                f"invalid tenant weight {spec!r} (weight must be "
                "positive)")
        weights[name] = weight
    return weights
