"""The shard worker: executes injection steps, streams results.

A worker is one process holding one coordinator connection.  It is
deliberately stateless across campaigns: everything it needs arrives in
the ``job`` message (base64-pickled program + config, identity digests),
and everything it produces leaves as ``step`` messages encoded with the
campaign journal's own codec -- the coordinator can append the payloads
to shard journals verbatim.

Determinism contract: a worker executes
:func:`repro.injection.campaign._run_step` exactly as the serial engine
would -- per-step RNG seeded by ``(seed, step_index)`` -- so *which*
worker runs a step never matters.  On (re)start the worker re-warms the
compiled-program cache (free under ``fork``, one compile under
``spawn``/TCP) and rebuilds the checkpointed reference run, mirroring
the supervised pool's initializer.

Three entry points:

* :func:`run_connect` -- dial a coordinator (``talft shard-worker
  --connect HOST:PORT``), serve one connection, exit;
* :func:`run_listen` -- bind and accept coordinators (``talft
  shard-worker --listen [HOST:]PORT``), serving one connection at a
  time; ``--once`` exits after the first (how tests manage fleets);
* :func:`_local_worker_main` -- the ``fork`` target for the
  coordinator's default local fleet (dials the coordinator's ephemeral
  loopback listener, i.e. ``--connect`` semantics in-process).
"""

from __future__ import annotations

import os
import signal
import socket
from typing import Any, Dict, Optional, Tuple

from repro.observe import MetricsRegistry, emit, host_label, set_registry
from repro.service.protocol import (
    AUTHKEY_ENV,
    Connection,
    ProtocolError,
    coordinator_mac,
    macs_equal,
    make_nonce,
    unpack_pickle,
    worker_mac,
)


class _WorkerState:
    """One loaded campaign: program, config, reference run, fault budget."""

    def __init__(self, message: Dict[str, Any]):
        from repro.exec.cache import warm_program
        from repro.injection.campaign import _reference_run
        from repro.injection.journal import config_digest, program_digest

        self.program = unpack_pickle(message["program"])
        self.config = unpack_pickle(message["config"])
        prog_digest = program_digest(self.program)
        conf_digest = config_digest(self.config)
        if prog_digest != message["program_digest"] or \
                conf_digest != message["config_digest"]:
            raise ProtocolError(
                "job payload does not match its identity digests "
                f"(program {prog_digest} vs {message['program_digest']}, "
                f"config {conf_digest} vs {message['config_digest']})")
        if self.config.backend in ("compiled", "vector"):
            warm_program(self.program.boot().code, self.config.oob_policy)
        self.reference = _reference_run(self.program, self.config)
        self.budget = self.reference.trace.steps + self.config.step_slack
        #: Chaos directive: SIGKILL self after sending this many step
        #: results (``None`` = healthy worker).
        self.die_after_steps: Optional[int] = message.get("die_after_steps")
        self.steps_sent = 0

    def ref_tail(self, step_index: int) -> Tuple[Tuple[int, int], ...]:
        produced = self.reference.outputs_before[step_index]
        return tuple(self.reference.trace.outputs[produced:])


def serve_connection(sock: socket.socket,
                     authkey: Optional[bytes] = None) -> None:
    """Serve one coordinator over ``sock`` until shutdown or EOF.

    With an ``authkey``, the coordinator must answer the hello nonce
    with a valid HMAC ``auth`` challenge response *before* the worker
    accepts (and unpickles) a job -- an unauthenticated peer never gets
    past the handshake.  Without a key, a coordinator that *demands*
    authentication is refused instead (mismatched fleet configuration
    fails loudly rather than silently downgrading).

    Starts from a fresh metrics registry (forked local workers inherit
    the coordinator's counters otherwise, which would double-count once
    the final ``bye`` metrics are merged back host-labelled).
    """
    from repro.injection.campaign import _run_step
    from repro.injection.journal import encode_step

    registry = MetricsRegistry()
    set_registry(registry)
    steps_counter = registry.counter("shard_worker_steps_total")
    shards_counter = registry.counter("shard_worker_shards_total")
    conn = Connection(sock)
    state: Optional[_WorkerState] = None
    host = host_label()
    nonce = make_nonce()
    try:
        conn.send({"type": "hello", "host": host, "pid": os.getpid(),
                   "nonce": nonce})
        if authkey is not None:
            challenge = conn.recv()
            if challenge is None:
                return
            if challenge.get("type") != "auth":
                raise ProtocolError(
                    "coordinator did not authenticate before sending "
                    f"{challenge.get('type')!r} (this worker has a fleet "
                    "auth key; start the coordinator with the same key)")
            if not macs_equal(coordinator_mac(authkey, nonce),
                              challenge.get("mac")):
                raise ProtocolError(
                    "coordinator failed fleet authentication "
                    "(auth key mismatch)")
            conn.send({"type": "auth-ok",
                       "mac": worker_mac(authkey,
                                         str(challenge.get("nonce", "")))})
        while True:
            message = conn.recv()
            if message is None:
                return  # coordinator vanished; nothing to clean up
            kind = message["type"]
            if kind == "job":
                state = _WorkerState(message)
                emit("shard-worker-job", host=host,
                     backend=state.config.backend)
            elif kind == "shard":
                if state is None:
                    raise ProtocolError("shard assignment before job")
                shard_index = message["shard"]
                for step_index in message["steps"]:
                    outcomes = _run_step(state.program, state.config,
                                         state.reference, state.budget,
                                         step_index)
                    conn.send({"type": "step", "shard": shard_index,
                               "step": step_index,
                               "out": encode_step(
                                   outcomes, state.ref_tail(step_index))})
                    steps_counter.inc()
                    state.steps_sent += 1
                    if state.die_after_steps is not None and \
                            state.steps_sent >= state.die_after_steps:
                        # Chaos harness: die mid-shard, after the result
                        # is on the wire -- the hardest reissue case (the
                        # coordinator must keep the sent steps and re-place
                        # only the tail).
                        os.kill(os.getpid(), signal.SIGKILL)
                conn.send({"type": "shard-done", "shard": shard_index})
                shards_counter.inc()
            elif kind == "shutdown":
                conn.send({"type": "bye", "host": host,
                           "metrics": registry.as_dict()})
                return
            elif kind == "auth":
                raise ProtocolError(
                    "coordinator requires fleet authentication but this "
                    f"worker has no auth key (set {AUTHKEY_ENV} or pass "
                    "--authkey-file)")
            else:
                raise ProtocolError(f"unknown message type {kind!r}")
    except (ProtocolError, OSError):
        # A broken coordinator connection is the coordinator's problem to
        # supervise; the worker just winds down.
        return
    finally:
        conn.close()


def run_connect(address: Tuple[str, int],
                authkey: Optional[bytes] = None) -> None:
    """Dial a coordinator and serve the connection until it ends."""
    sock = socket.create_connection(address)
    serve_connection(sock, authkey=authkey)


def _is_loopback(host: str) -> bool:
    return host in ("localhost", "::1") or host.startswith("127.")


def run_listen(host: str, port: int, once: bool = False,
               authkey: Optional[bytes] = None) -> None:
    """Accept coordinators on ``host:port``, one connection at a time.

    Refuses to bind a non-loopback interface without an ``authkey``: the
    job protocol carries pickled programs, so an unauthenticated open
    port is arbitrary code execution for anyone who can reach it.

    Prints the bound address (resolving an ephemeral port 0) so callers
    scripting a fleet can discover where the worker landed.
    """
    if authkey is None and not _is_loopback(host):
        raise ValueError(
            f"refusing to listen on non-loopback address {host!r} without "
            "a fleet auth key: shard jobs carry pickled programs, so an "
            "open unauthenticated port means arbitrary code execution; "
            f"set {AUTHKEY_ENV} or pass --authkey-file (or listen on "
            "127.0.0.1)")
    family = socket.AF_INET6 if ":" in host else socket.AF_INET
    listener = socket.socket(family, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(1)
    bound = listener.getsockname()
    print(f"shard-worker listening on {bound[0]}:{bound[1]}", flush=True)
    try:
        while True:
            sock, _ = listener.accept()
            serve_connection(sock, authkey=authkey)
            if once:
                return
    finally:
        listener.close()


def _local_worker_main(address: Tuple[str, int],
                       authkey: Optional[bytes] = None) -> None:
    """Entry point of a forked/spawned local-fleet worker process."""
    try:
        run_connect(address, authkey=authkey)
    except OSError:
        pass  # coordinator already gone; exit quietly
