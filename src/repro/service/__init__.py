"""The campaign service: socket worker fleet, coordinator, HTTP server.

``repro.service`` turns the sharded-campaign planning/merging layer
(:mod:`repro.injection.shard`) into a running distributed system:

* :mod:`repro.service.protocol` -- length-prefixed JSON-over-TCP framing
  shared by workers and the coordinator;
* :mod:`repro.service.worker` -- the shard worker loop (CLI: ``talft
  shard-worker``), executing injection steps and streaming results;
* :mod:`repro.service.coordinator` -- :func:`run_campaign_sharded`:
  plans shards, drives a local forked fleet or remote TCP workers,
  journals every streamed step, steals work from slow workers, reissues
  from dead ones, and merges the exact single-process report;
* :mod:`repro.service.store` -- :class:`JobStore`: the append-only,
  CRC-framed job journal behind ``talft serve --state-dir`` that makes
  the control plane itself crash-safe;
* :mod:`repro.service.scheduler` -- :class:`FairScheduler`: weighted
  fair queueing across tenants, per-tenant priorities, bounded
  admission with ``Retry-After`` backpressure, cooperative cancellation
  and graceful drain;
* :mod:`repro.service.server` -- ``talft serve``: a stdlib HTTP/JSON
  endpoint accepting campaign jobs and exposing live progress and the
  Prometheus registry.

The contract everything here defends: a sharded campaign's report is
**bit-identical** (fingerprint-equal, ``latency_buckets`` included) to
the single-process run, no matter how many workers, how they die, or in
what order results arrive -- and, since PR 9, no matter whether the
*service process itself* survives: a SIGKILLed ``talft serve`` restarted
with the same ``--state-dir`` resumes every interrupted job to the exact
report an uninterrupted run would have produced.
"""

from repro.service.coordinator import run_campaign_sharded
from repro.service.protocol import Connection, ProtocolError
from repro.service.scheduler import FairScheduler, QueueFull
from repro.service.server import CampaignService, serve_http
from repro.service.store import JobStore

__all__ = [
    "CampaignService",
    "Connection",
    "FairScheduler",
    "JobStore",
    "ProtocolError",
    "QueueFull",
    "run_campaign_sharded",
    "serve_http",
]
