"""The campaign service: socket worker fleet, coordinator, HTTP server.

``repro.service`` turns the sharded-campaign planning/merging layer
(:mod:`repro.injection.shard`) into a running distributed system:

* :mod:`repro.service.protocol` -- length-prefixed JSON-over-TCP framing
  shared by workers and the coordinator;
* :mod:`repro.service.worker` -- the shard worker loop (CLI: ``talft
  shard-worker``), executing injection steps and streaming results;
* :mod:`repro.service.coordinator` -- :func:`run_campaign_sharded`:
  plans shards, drives a local forked fleet or remote TCP workers,
  journals every streamed step, steals work from slow workers, reissues
  from dead ones, and merges the exact single-process report;
* :mod:`repro.service.server` -- ``talft serve``: a stdlib HTTP/JSON
  endpoint accepting campaign jobs and exposing live progress and the
  Prometheus registry.

The contract everything here defends: a sharded campaign's report is
**bit-identical** (fingerprint-equal, ``latency_buckets`` included) to
the single-process run, no matter how many workers, how they die, or in
what order results arrive.
"""

from repro.service.coordinator import run_campaign_sharded
from repro.service.protocol import Connection, ProtocolError
from repro.service.server import CampaignService, serve_http

__all__ = [
    "CampaignService",
    "Connection",
    "ProtocolError",
    "run_campaign_sharded",
    "serve_http",
]
