"""Durable job store: the campaign service's crash-safe control plane.

``talft serve --state-dir DIR`` keeps every job's lifecycle in an
append-only, CRC-framed **job journal** (``DIR/jobs.journal``) in the
same write-ahead-log style as the campaign result journal
(:mod:`repro.injection.journal`, PR 4) -- one framing codec, one torn-
tail discipline, one recovery philosophy:

* **Append-only events.**  One line per state change: a ``job`` snapshot
  at submission, a ``state`` line per transition
  (``queued -> running -> done/error/cancelled``), a ``result`` line
  carrying the final summary.  Every line is ``{"crc": ..., "d": ...}``
  framed exactly like a campaign journal line, so torn tails and bit rot
  are detected and skipped, never fatal.
* **Replay on startup.**  :meth:`JobStore.open` folds the event log into
  the latest snapshot of every job, then rewrites the file compacted
  (header + one ``job`` snapshot per job) through a temp file + atomic
  rename -- the same crash-safe compaction the campaign journal performs
  on resume.  Job ids continue from the highest replayed id, so a
  restarted service never reuses an id.
* **Two-layer recovery.**  The job journal records *which* jobs exist
  and where they were; each job's actual campaign progress lives in its
  **per-job campaign journal**
  (:meth:`JobStore.campaign_journal_path`), appended step-by-step by the
  campaign engine itself.  A job that was ``running`` when the service
  was SIGKILLed is re-enqueued on startup and resumed through the
  PR-4 ``--resume`` machinery: completed steps replay from its campaign
  journal, only genuinely missing steps execute, and the final report is
  **bit-identical** -- fingerprint and latency buckets -- to what an
  uninterrupted run would have produced (the ``kill-service`` chaos
  scenario asserts exactly this).

The store is deliberately synchronous and fsync-per-event: job events
are rare (submissions and transitions, not injection steps), and a
``202 Accepted`` must mean *accepted durably* -- a crash one millisecond
after the response must not forget the job.
"""

from __future__ import annotations

import os
import re
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TextIO

from repro.injection.journal import _frame, _unframe

_MAGIC = "talft-job-journal"
_VERSION = 1

#: Terminal job statuses: nothing further will be journaled for these.
SETTLED_STATUSES = ("done", "error", "cancelled")

_JOB_ID = re.compile(r"^job-(\d+)$")


@dataclass
class JobStoreLoad:
    """The usable content of a job journal after replay."""

    #: Latest snapshot of every journaled job, keyed by id.
    jobs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Lines dropped for failed checksums / unparseable content.
    corrupt_lines: int = 0
    #: The next job ordinal a restarted service may hand out.
    next_id: int = 1


def _replay(path: str) -> JobStoreLoad:
    """Fold a job journal's event log into per-job snapshots.

    Corrupt lines (torn tails, bit rot) are skipped and counted exactly
    as the campaign journal loader does; events for unknown job ids
    (their ``job`` snapshot line was lost) are dropped as corrupt too --
    a job the service cannot reconstruct cannot be run.
    """
    load = JobStoreLoad()
    if not os.path.exists(path):
        return load
    with open(path) as handle:
        lines = handle.readlines()
    saw_header = False
    for line in lines:
        payload = _unframe(line)
        if payload is None:
            if line.strip():
                load.corrupt_lines += 1
            continue
        if not saw_header:
            if not (isinstance(payload, dict) and
                    payload.get("magic") == _MAGIC and
                    payload.get("version") == _VERSION):
                load.corrupt_lines += 1
                continue
            saw_header = True
            continue
        if not isinstance(payload, dict):
            load.corrupt_lines += 1
            continue
        event = payload.get("event")
        if event == "job":
            job = payload.get("job")
            if not isinstance(job, dict) or "id" not in job:
                load.corrupt_lines += 1
                continue
            load.jobs[job["id"]] = job
        elif event == "state":
            job = load.jobs.get(payload.get("id"))
            if job is None or "status" not in payload:
                load.corrupt_lines += 1
                continue
            job["status"] = payload["status"]
            job["error"] = payload.get("error")
        elif event == "result":
            job = load.jobs.get(payload.get("id"))
            if job is None:
                load.corrupt_lines += 1
                continue
            job["result"] = payload.get("result")
        else:
            load.corrupt_lines += 1
    for job_id in load.jobs:
        match = _JOB_ID.match(job_id)
        if match:
            load.next_id = max(load.next_id, int(match.group(1)) + 1)
    if load.corrupt_lines:
        warnings.warn(
            f"job journal {path}: skipped {load.corrupt_lines} corrupt "
            "line(s) (failed checksum or truncated write)",
            UserWarning,
            stacklevel=3,
        )
    return load


class JobStore:
    """The service's durable job registry under one ``--state-dir``.

    Usage: construct, :meth:`open` (replay + compact + start appending),
    then :meth:`record_submit` / :meth:`record_state` /
    :meth:`record_result` as the job lifecycle advances, :meth:`close`
    on shutdown.  Every record is fsynced before returning: once a
    caller has been told about a job event, a crash cannot unhappen it.
    """

    JOURNAL_NAME = "jobs.journal"

    def __init__(self, state_dir: str):
        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)
        self.path = os.path.join(state_dir, self.JOURNAL_NAME)
        self._handle: Optional[TextIO] = None

    # -- lifecycle -------------------------------------------------------

    def open(self) -> JobStoreLoad:
        """Replay the journal, rewrite it compacted, open for appending.

        The compaction (header + one snapshot per job, through a temp
        file + atomic rename) drops torn tails so they can never
        concatenate with the next append, and bounds the journal to one
        line per job regardless of how many transitions history held.
        """
        load = _replay(self.path)
        temp_path = self.path + ".tmp"
        with open(temp_path, "w") as handle:
            handle.write(_frame({"magic": _MAGIC, "version": _VERSION}))
            for job_id in sorted(load.jobs, key=_job_sort_key):
                handle.write(_frame({"event": "job",
                                     "job": load.jobs[job_id]}))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.path)
        self._handle = open(self.path, "a")
        return load

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recording -------------------------------------------------------

    def record_submit(self, job: Dict[str, Any]) -> None:
        """Durably record a newly submitted job's full snapshot."""
        self._append({"event": "job", "job": _persistable(job)})

    def record_state(self, job_id: str, status: str,
                     error: Optional[str] = None,
                     recovered: bool = False) -> None:
        """Durably record one state transition."""
        payload: Dict[str, Any] = {"event": "state", "id": job_id,
                                   "status": status}
        if error is not None:
            payload["error"] = error
        if recovered:
            payload["recovered"] = True
        self._append(payload)

    def record_result(self, job_id: str, result: Dict[str, Any]) -> None:
        """Durably record a settled job's result summary."""
        self._append({"event": "result", "id": job_id, "result": result})

    def _append(self, payload: Dict[str, Any]) -> None:
        if self._handle is None:
            raise RuntimeError("JobStore.open() must run before recording")
        self._handle.write(_frame(payload))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # -- paths -----------------------------------------------------------

    def campaign_journal_path(self, job_id: str) -> str:
        """Where ``job_id``'s campaign engine journals its per-step
        results (the PR-4 result journal ``--resume`` replays)."""
        return os.path.join(self.state_dir, f"{job_id}.campaign.journal")


def _job_sort_key(job_id: str):
    match = _JOB_ID.match(job_id)
    return (0, int(match.group(1)), "") if match else (1, 0, job_id)


def _persistable(job: Dict[str, Any]) -> Dict[str, Any]:
    """The journaled subset of a job dict: everything needed to rebuild
    and re-run it, minus volatile scheduling fields."""
    persisted = dict(job)
    persisted.pop("run_seq", None)
    return persisted
