"""``talft serve``: the durable, multi-tenant campaign service.

A stdlib-only (:mod:`http.server`) control plane over the campaign
engine: POST a campaign job, poll its live progress, cancel it, read the
final summary, scrape the process's Prometheus registry -- no new
dependencies, no framework.

Endpoints:

* ``GET /healthz`` -- liveness: ``{"status": "ok"}`` plus job counts and
  per-tenant queue depths;
* ``GET /metrics`` -- the live default registry in Prometheus text
  exposition format (the same registry every campaign instruments);
* ``POST /jobs`` -- submit a job: ``{"kernel": "adpcm", "mode": "ft",
  "shards": 4, "tenant": "teamA", "priority": 5, "timeout": 120,
  "config": {"max_injection_steps": 50, "seed": 7}}``; responds ``202``
  with the job id, ``400`` for malformed jobs, ``413`` for oversized
  bodies, ``429`` + ``Retry-After`` when the queue is full, and ``503``
  while draining;
* ``GET /jobs[?status=...&tenant=...]`` -- job listing, filterable;
* ``GET /jobs/<id>`` -- one job in full (result summary once done);
* ``DELETE /jobs/<id>`` -- cancel: a queued job settles ``cancelled``
  immediately, a running one aborts cooperatively at its next step
  boundary (``202``).

Scheduling: jobs carry ``tenant`` and ``priority`` and are dispatched by
weighted fair queueing across tenants onto ``max_concurrent_jobs``
worker threads (:mod:`repro.service.scheduler`) -- no tenant can starve
another, and the queue is bounded so overload surfaces as backpressure
instead of memory growth.

Durability: with a ``state_dir`` every submission, state transition and
result summary is journaled to a CRC-framed job journal
(:mod:`repro.service.store`), and every job's campaign runs with a
per-job PR-4 result journal.  A service killed mid-job and restarted
with the same ``--state-dir`` restores settled jobs, re-enqueues queued
ones, and *resumes* interrupted ones through ``--resume`` -- the final
report is bit-identical (fingerprint and latency buckets) to an
uninterrupted run, which the ``kill-service`` chaos scenario asserts.

Fork-safety: jobs default to ``shards == 1``, executed by plain
:func:`~repro.injection.campaign.run_campaign` *in-process*.  Jobs that
explicitly ask for ``shards > 1`` use the sharded coordinator with a
**spawn** local fleet: :class:`ThreadingHTTPServer` handler threads may
hold io/stdlib locks at any moment, so forking from this process could
hand a worker child a lock that is never released -- spawned workers
start from a fresh interpreter instead (one extra compile warm-up per
worker, which a long-running service amortizes).
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import threading
import time
import urllib.parse
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.injection.campaign import CampaignConfig, run_campaign
from repro.service.scheduler import (
    FairScheduler,
    JobCancelled,
    JobInterrupted,
    JobTimeout,
    QueueFull,
    SchedulerDraining,
)
from repro.service.store import SETTLED_STATUSES, JobStore

#: Campaign-config knobs a job's ``config`` object may set.  An
#: allow-list, not ``CampaignConfig(**anything)``: the service is an
#: external surface and should name its own contract.
_CONFIG_KEYS = frozenset({
    "max_injection_steps", "max_sites_per_step", "max_values_per_site",
    "stride", "seed", "step_slack", "keep_records", "backend", "jobs",
    "prune", "prune_audit", "error_port", "max_steps",
})

#: Top-level keys a job body may carry.
_JOB_KEYS = frozenset({
    "kernel", "mode", "shards", "config", "tenant", "priority", "timeout",
})

#: Largest request body the service will buffer.  Job specs are a few
#: hundred bytes; anything bigger is a mistake or an attack, and gets a
#: 413 instead of an unbounded read.
MAX_BODY_BYTES = 1 << 20

#: Settled jobs kept in the live registry by default; the job journal
#: keeps the full history regardless.
DEFAULT_JOB_RETENTION = 256


class CampaignService:
    """Durable job registry + the fair multi-tenant scheduler.

    ``state_dir=None`` runs fully in-memory (handy for tests and
    throwaway services); with a directory, the job journal and per-job
    campaign journals make the whole control plane crash-safe.
    """

    def __init__(
        self,
        state_dir: Optional[str] = None,
        max_concurrent_jobs: int = 1,
        queue_limit: int = 64,
        job_retention: int = DEFAULT_JOB_RETENTION,
        tenant_weights: Optional[Dict[str, float]] = None,
    ):
        from repro.observe import get_registry

        if job_retention < 1:
            raise ValueError(
                f"job_retention must be at least 1 (got {job_retention})")
        self._jobs: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.RLock()
        self._settled: Deque[str] = deque()
        self.job_retention = job_retention
        self._run_seq = itertools.count(1)
        registry = get_registry()
        self._transitions = {
            status: registry.counter("service_job_transitions_total",
                                     status=status)
            for status in ("queued", "running", "done", "error",
                           "cancelled")
        }
        self._recovered_counter = registry.counter(
            "service_jobs_recovered_total")
        self.store: Optional[JobStore] = None
        next_id = 1
        recovered: List[Dict[str, Any]] = []
        if state_dir is not None:
            self.store = JobStore(state_dir)
            load = self.store.open()
            next_id = load.next_id
            recovered = [load.jobs[job_id]
                         for job_id in sorted(load.jobs,
                                              key=_numeric_job_id)]
        self._ids = itertools.count(next_id)
        self._scheduler = FairScheduler(
            self._execute, max_concurrent=max_concurrent_jobs,
            queue_limit=queue_limit, tenant_weights=tenant_weights)
        if recovered:
            self._recover(recovered)

    # -- recovery --------------------------------------------------------

    def _recover(self, snapshots: List[Dict[str, Any]]) -> None:
        """Restore replayed jobs: settled ones into the registry,
        queued ones back onto the scheduler, interrupted (``running``)
        ones re-enqueued for a ``--resume`` through their campaign
        journals."""
        for job in snapshots:
            job.setdefault("tenant", "default")
            job.setdefault("priority", 0)
            job.setdefault("progress", {"done": 0, "total": None})
            status = job.get("status")
            with self._lock:
                self._jobs[job["id"]] = job
                if status in SETTLED_STATUSES:
                    self._note_settled(job["id"])
                    continue
                if status == "running":
                    # Interrupted mid-campaign: its per-job campaign
                    # journal holds every completed step; resuming
                    # reconstructs the exact uninterrupted report.
                    job["status"] = "queued"
                    job["recovered"] = True
                    self._recovered_counter.inc()
                    if self.store is not None:
                        self.store.record_state(job["id"], "queued",
                                                recovered=True)
                try:
                    self._scheduler.submit(job["id"], job["tenant"],
                                           job["priority"])
                except (QueueFull, SchedulerDraining):
                    # A replayed backlog larger than the queue limit:
                    # park the overflow as an error rather than dropping
                    # it silently.
                    self._transition(job, "error",
                                     error="queue full during recovery")

    # -- submission ------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> str:
        """Validate and enqueue one job; returns its id.

        Raises ``ValueError`` for anything malformed (HTTP 400),
        :class:`QueueFull` when admission is refused (HTTP 429), and
        :class:`SchedulerDraining` during shutdown (HTTP 503).
        """
        from repro.workloads import KERNELS

        if not isinstance(spec, dict):
            raise ValueError("job body must be a JSON object")
        unknown_top = set(spec) - _JOB_KEYS
        if unknown_top:
            raise ValueError(
                f"unknown job keys: {', '.join(sorted(unknown_top))} "
                f"(known: {', '.join(sorted(_JOB_KEYS))})")
        kernel = spec.get("kernel")
        if kernel not in KERNELS:
            known = ", ".join(sorted(KERNELS))
            raise ValueError(f"unknown kernel {kernel!r} (known: {known})")
        mode = spec.get("mode", "ft")
        if mode not in ("ft", "baseline", "swift"):
            raise ValueError(
                f"unknown mode {mode!r} (known: ft, baseline, swift)")
        shards = spec.get("shards", 1)
        if not isinstance(shards, int) or isinstance(shards, bool) or \
                shards < 1:
            raise ValueError(f"shards must be a positive integer "
                             f"(got {shards!r})")
        tenant = spec.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant.strip() or \
                len(tenant) > 100:
            raise ValueError(
                f"tenant must be a non-empty string of at most 100 "
                f"characters (got {tenant!r})")
        tenant = tenant.strip()
        priority = spec.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool) or \
                not -1000 <= priority <= 1000:
            raise ValueError(
                f"priority must be an integer in [-1000, 1000] "
                f"(got {priority!r})")
        timeout = spec.get("timeout")
        if timeout is not None and (
                isinstance(timeout, bool) or
                not isinstance(timeout, (int, float)) or timeout <= 0):
            raise ValueError(
                f"timeout must be a positive number of seconds "
                f"(got {timeout!r})")
        knobs = spec.get("config", {})
        if not isinstance(knobs, dict):
            raise ValueError("config must be a JSON object")
        unknown = set(knobs) - _CONFIG_KEYS
        if unknown:
            raise ValueError(
                f"unknown config keys: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(_CONFIG_KEYS))})")
        try:
            _build_config(knobs)  # validate now, rebuild at dispatch
        except (TypeError, ValueError) as exc:
            raise ValueError(f"invalid campaign config: {exc}") from exc
        with self._lock:
            job_id = f"job-{next(self._ids)}"
            job = {
                "id": job_id,
                "kernel": kernel,
                "mode": mode,
                "shards": shards,
                "tenant": tenant,
                "priority": priority,
                "timeout": timeout,
                "config": dict(knobs),
                "status": "queued",
                "progress": {"done": 0, "total": None},
                "result": None,
                "error": None,
            }
            # Admission first: a QueueFull must not journal the job.
            self._scheduler.submit(job_id, tenant, priority)
            self._jobs[job_id] = job
            if self.store is not None:
                self.store.record_submit(job)
            self._transitions["queued"].inc()
        return job_id

    # -- cancellation ----------------------------------------------------

    def cancel(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        """Cancel a job; returns the ``(http_status, payload)`` verdict."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return 404, {"error": "no such job"}
            if job["status"] in SETTLED_STATUSES:
                return 409, {"error": f"job already {job['status']}"}
            verdict = self._scheduler.cancel(job_id)
            if verdict == "queued":
                self._transition(job, "cancelled")
                return 200, {"id": job_id, "status": "cancelled"}
            if verdict == "running":
                # The runner aborts at its next step boundary; completed
                # steps stay journaled.
                return 202, {"id": job_id, "status": "cancelling"}
            # Scheduler no longer knows it: it settled in the races
            # between our registry read and the cancel.
            return 409, {"error": "job just settled"}

    # -- introspection ---------------------------------------------------

    def job(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            job = self._jobs.get(job_id)
            return dict(job) if job is not None else None

    def jobs(self, status: Optional[str] = None,
             tenant: Optional[str] = None) -> Dict[str, Any]:
        with self._lock:
            listing = []
            for job in self._jobs.values():
                if status is not None and job["status"] != status:
                    continue
                if tenant is not None and job.get("tenant") != tenant:
                    continue
                listing.append({
                    "id": job["id"],
                    "status": job["status"],
                    "tenant": job.get("tenant", "default"),
                    "priority": job.get("priority", 0),
                    "progress": dict(job["progress"]),
                })
            return {"jobs": listing}

    def wait(self, job_id: str, timeout: float = 60.0) -> Dict[str, Any]:
        """Block until a job settles; returns it.

        A polling convenience for tests and smoke scripts -- the HTTP
        surface itself stays poll-based.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job is None:
                raise ValueError(f"no such job {job_id!r}")
            if job["status"] in SETTLED_STATUSES:
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{job_id} still {job['status']} after {timeout:.0f}s")
            time.sleep(0.05)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            tally: Dict[str, int] = {}
            for job in self._jobs.values():
                tally[job["status"]] = tally.get(job["status"], 0) + 1
            return tally

    def queue_depths(self) -> Dict[str, int]:
        return self._scheduler.depths()

    # -- execution -------------------------------------------------------

    def _transition(self, job: Dict[str, Any], status: str,
                    error: Optional[str] = None,
                    recovered: bool = False) -> None:
        with self._lock:
            job["status"] = status
            job["error"] = error
            counter = self._transitions.get(status)
            if counter is not None:
                counter.inc()
            if self.store is not None:
                self.store.record_state(job["id"], status, error=error,
                                        recovered=recovered)
            if status in SETTLED_STATUSES:
                self._note_settled(job["id"])

    def _note_settled(self, job_id: str) -> None:
        """Retention: keep at most ``job_retention`` settled jobs live.
        The job journal keeps the full history; eviction only trims the
        in-memory registry a long-running service would otherwise grow
        without bound."""
        self._settled.append(job_id)
        while len(self._settled) > self.job_retention:
            evicted = self._settled.popleft()
            self._jobs.pop(evicted, None)

    def _execute(self, job_id: str) -> None:
        """Scheduler runner: execute one job to settlement (or drain)."""
        from repro.injection.chaos import fingerprint_digest
        from repro.workloads import compile_kernel

        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:  # cancelled and evicted in a race; nothing to do
                return
            job["run_seq"] = next(self._run_seq)
            self._transition(job, "running")
        cancel = self._scheduler.cancel_event(job_id)
        drain = self._scheduler.drain_event
        timeout = job.get("timeout")
        deadline = time.monotonic() + timeout if timeout else None

        def on_step(done: int, total: int) -> None:
            with self._lock:
                job["progress"] = {"done": done, "total": total}
            # Cooperative abort, checked at every step boundary: the
            # engine's own cleanup (journal flush/close, fleet
            # force-close) runs as the exception unwinds, so everything
            # completed so far stays durable.
            if drain.is_set():
                raise JobInterrupted()
            if cancel is not None and cancel.is_set():
                raise JobCancelled()
            if deadline is not None and time.monotonic() > deadline:
                raise JobTimeout()

        journal_path = None
        if self.store is not None:
            journal_path = self.store.campaign_journal_path(job_id)
        try:
            program = compile_kernel(job["kernel"], job["mode"]).program
            config = _build_config(job["config"])
            if job["shards"] > 1:
                from repro.service.coordinator import run_campaign_sharded

                # spawn, not fork: HTTP handler threads may hold stdlib
                # locks at fork time (see module docstring).
                report = run_campaign_sharded(
                    program, config, shards=job["shards"],
                    journal_path=journal_path,
                    resume=journal_path is not None,
                    on_step=on_step, fleet_start_method="spawn")
            else:
                report = run_campaign(
                    program, config, journal_path=journal_path,
                    resume=journal_path is not None, on_step=on_step)
        except JobInterrupted:
            # Drain: journal the job back to queued so the next start
            # resumes it from its campaign journal.
            self._transition(job, "queued", recovered=True)
            return
        except JobCancelled:
            self._transition(job, "cancelled")
            return
        except JobTimeout:
            self._transition(
                job, "error",
                error=f"job timed out after {timeout}s (cancelled "
                      "cooperatively at a step boundary; completed steps "
                      "remain journaled)")
            return
        except Exception as exc:  # job errors are the client's news
            self._transition(job, "error",
                             error=f"{type(exc).__name__}: {exc}")
            return
        summary = {
            "injections": report.injections,
            "counts": {key.value: value
                       for key, value in sorted(
                           report.counts.items(),
                           key=lambda item: item[0].value)},
            "coverage": report.coverage,
            "violations": len(report.violations),
            "summary": report.summary(),
            # The bit-identical contract, made comparable over HTTP: the
            # kill-service chaos scenario checks these against an
            # uninterrupted single-process run.
            "fingerprint": fingerprint_digest(report),
            "latency_buckets": {str(bucket): count
                                for bucket, count in sorted(
                                    report.latency_buckets.items())},
        }
        if report.resilience is not None:
            summary["resilience"] = report.resilience.as_dict()
        with self._lock:
            job["result"] = summary
            if self.store is not None:
                self.store.record_result(job_id, summary)
            self._transition(job, "done")

    # -- shutdown --------------------------------------------------------

    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown: refuse new work, interrupt running jobs at
        their next step boundary (their campaign journals hold every
        completed step), journal final states, close the store.  The
        SIGTERM path of ``talft serve``."""
        finished = self._scheduler.drain(timeout=timeout, interrupt=True)
        if self.store is not None:
            self.store.close()
        return finished

    def close(self, timeout: float = 60.0) -> None:
        """Flush-and-stop for tests: let queued/running jobs finish,
        then release the store."""
        self._scheduler.drain(timeout=timeout, interrupt=False)
        if self.store is not None:
            self.store.close()


def _build_config(knobs: Dict[str, Any]) -> CampaignConfig:
    kwargs = dict(knobs)
    if "stride" in kwargs:  # the service's name for step_stride
        kwargs["step_stride"] = kwargs.pop("stride")
    return CampaignConfig(**kwargs)


def _numeric_job_id(job_id: str) -> Tuple[int, str]:
    try:
        return int(job_id.rsplit("-", 1)[1]), job_id
    except (IndexError, ValueError):
        return (1 << 62), job_id


class _Handler(BaseHTTPRequestHandler):
    service: CampaignService  # set by http_server()

    # Silence the default stderr access log; campaigns own the terminal.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _reply(self, status: int, payload: Any,
               content_type: str = "application/json",
               headers: Optional[Dict[str, str]] = None) -> None:
        if content_type == "application/json":
            body = (json.dumps(payload, indent=2, sort_keys=True) +
                    "\n").encode("utf-8")
        else:
            body = payload.encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, OSError):
            # The client hung up mid-response; its loss, not a handler
            # crash -- drop the write and let the connection close.
            self.close_connection = True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        from repro.observe import get_registry

        parsed = urllib.parse.urlsplit(self.path)
        path = parsed.path.rstrip("/") or "/"
        if path == "/healthz":
            self._reply(200, {"status": "ok",
                              "jobs": self.service.counts(),
                              "queue_depths": self.service.queue_depths()})
        elif path == "/metrics":
            self._reply(200, get_registry().to_prometheus(),
                        content_type="text/plain; version=0.0.4")
        elif path == "/jobs":
            query = urllib.parse.parse_qs(parsed.query)
            unknown = set(query) - {"status", "tenant"}
            if unknown:
                self._reply(400, {"error": "unknown query parameters: " +
                                  ", ".join(sorted(unknown)) +
                                  " (known: status, tenant)"})
                return
            self._reply(200, self.service.jobs(
                status=query.get("status", [None])[0],
                tenant=query.get("tenant", [None])[0]))
        elif path.startswith("/jobs/"):
            job = self.service.job(path[len("/jobs/"):])
            if job is None:
                self._reply(404, {"error": "no such job"})
            else:
                self._reply(200, job)
        else:
            self._reply(404, {"error": f"no such endpoint {path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.rstrip("/") != "/jobs":
            self._reply(404, {"error": f"no such endpoint {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._reply(400, {"error": "invalid Content-Length header"})
            return
        if length > MAX_BODY_BYTES:
            # Refuse before buffering: Content-Length is the client's
            # claim, and honoring an arbitrarily large one would turn
            # every request into a memory commitment.
            self._reply(413, {"error": f"request body of {length} bytes "
                              f"exceeds the {MAX_BODY_BYTES}-byte limit"})
            self.close_connection = True
            return
        try:
            spec = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, UnicodeDecodeError):
            self._reply(400, {"error": "request body is not valid JSON"})
            return
        try:
            job_id = self.service.submit(spec)
        except QueueFull as exc:
            self._reply(429, {"error": str(exc),
                              "retry_after": exc.retry_after},
                        headers={"Retry-After": str(exc.retry_after)})
            return
        except SchedulerDraining as exc:
            self._reply(503, {"error": str(exc)},
                        headers={"Retry-After": "30"})
            return
        except ValueError as exc:
            self._reply(400, {"error": str(exc)})
            return
        self._reply(202, {"id": job_id, "status": "queued"})

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/")
        if not path.startswith("/jobs/"):
            self._reply(404, {"error": f"no such endpoint {self.path}"})
            return
        status, payload = self.service.cancel(path[len("/jobs/"):])
        self._reply(status, payload)


def http_server(
    host: str, port: int, service: Optional[CampaignService] = None
) -> Tuple[ThreadingHTTPServer, CampaignService]:
    """Build (but do not run) the service's HTTP server.

    Returns ``(server, service)``; ``server.server_address`` carries the
    bound port (useful with ``port=0`` in tests).  Call
    ``server.serve_forever()`` -- or drive it from a thread and
    ``shutdown()`` it -- as the caller pleases.
    """
    service = service or CampaignService()
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    return server, service


def serve_http(host: str, port: int,
               state_dir: Optional[str] = None,
               max_concurrent_jobs: int = 1,
               queue_limit: int = 64,
               job_retention: int = DEFAULT_JOB_RETENTION,
               tenant_weights: Optional[Dict[str, float]] = None) -> None:
    """Run the campaign service until SIGTERM/SIGINT (CLI: ``talft
    serve``).

    SIGTERM drains gracefully: admission stops (503s), running jobs
    checkpoint through their journals at the next step boundary and are
    journaled back to ``queued``, and the job journal closes -- a
    subsequent start with the same ``state_dir`` picks everything back
    up.
    """
    service = CampaignService(
        state_dir=state_dir, max_concurrent_jobs=max_concurrent_jobs,
        queue_limit=queue_limit, job_retention=job_retention,
        tenant_weights=tenant_weights)
    server, _ = http_server(host, port, service)
    bound = server.server_address

    def _drain_and_stop() -> None:
        service.drain()
        server.shutdown()

    def _on_sigterm(signum, frame) -> None:
        # shutdown() must not run on the serve_forever thread; a helper
        # thread drains and stops.
        threading.Thread(target=_drain_and_stop, daemon=True).start()

    signal.signal(signal.SIGTERM, _on_sigterm)
    durability = f"state-dir {state_dir}" if state_dir else "in-memory"
    print(f"talft campaign service on http://{bound[0]}:{bound[1]} "
          f"({durability}, {max_concurrent_jobs} concurrent job(s); "
          "POST /jobs, GET /jobs, DELETE /jobs/<id>, GET /metrics, "
          "GET /healthz)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        service.drain()
    finally:
        server.server_close()
        if service.store is not None:
            service.store.close()
