"""``talft serve``: the campaign service HTTP/JSON endpoint.

A small stdlib-only (:mod:`http.server`) control plane over the campaign
engine: POST a campaign job, poll its live progress, read the final
summary, scrape the process's Prometheus registry -- no new
dependencies, no framework.

Endpoints:

* ``GET /healthz`` -- liveness: ``{"status": "ok"}`` plus job counts;
* ``GET /metrics`` -- the live default registry in Prometheus text
  exposition format (the same registry every campaign instruments);
* ``POST /jobs`` -- submit a job: ``{"kernel": "adpcm", "mode": "ft",
  "shards": 4, "config": {"max_injection_steps": 50, "seed": 7}}``;
  responds ``202`` with the job id, or ``400`` with a friendly message
  for unknown kernels/knobs;
* ``GET /jobs`` -- every job's id/status/progress;
* ``GET /jobs/<id>`` -- one job in full (result summary once done).

Jobs run on a single background runner thread, one at a time -- the
service is a control plane, not a scheduler; queued jobs wait their
turn.  Fork-safety: jobs default to ``shards == 1``, executed by plain
:func:`~repro.injection.campaign.run_campaign` *in-process*.  Jobs that
explicitly ask for ``shards > 1`` use the sharded coordinator with a
**spawn** local fleet: :class:`ThreadingHTTPServer` handler threads may
hold io/stdlib locks at any moment, so forking from this process could
hand a worker child a lock that is never released -- spawned workers
start from a fresh interpreter instead (one extra compile warm-up per
worker, which a long-running service amortizes).
"""

from __future__ import annotations

import itertools
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from queue import Queue
from typing import Any, Dict, Optional, Tuple

from repro.injection.campaign import CampaignConfig, run_campaign

#: Campaign-config knobs a job's ``config`` object may set.  An
#: allow-list, not ``CampaignConfig(**anything)``: the service is an
#: external surface and should name its own contract.
_CONFIG_KEYS = frozenset({
    "max_injection_steps", "max_sites_per_step", "max_values_per_site",
    "stride", "seed", "step_slack", "keep_records", "backend", "jobs",
    "prune", "prune_audit", "error_port",
})


class CampaignService:
    """Job registry + the single background runner thread."""

    def __init__(self):
        self._jobs: Dict[str, Dict[str, Any]] = {}
        self._queue: "Queue" = Queue()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._runner = threading.Thread(target=self._run_loop, daemon=True)
        self._runner.start()

    # -- submission ------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> str:
        """Validate and enqueue one job; returns its id.

        Raises ``ValueError`` with a user-facing message for anything
        malformed -- the HTTP layer maps that to a 400.
        """
        from repro.workloads import KERNELS

        if not isinstance(spec, dict):
            raise ValueError("job body must be a JSON object")
        kernel = spec.get("kernel")
        if kernel not in KERNELS:
            known = ", ".join(sorted(KERNELS))
            raise ValueError(f"unknown kernel {kernel!r} (known: {known})")
        mode = spec.get("mode", "ft")
        if mode not in ("ft", "baseline", "swift"):
            raise ValueError(
                f"unknown mode {mode!r} (known: ft, baseline, swift)")
        shards = spec.get("shards", 1)
        if not isinstance(shards, int) or isinstance(shards, bool) or \
                shards < 1:
            raise ValueError(f"shards must be a positive integer "
                             f"(got {shards!r})")
        knobs = spec.get("config", {})
        if not isinstance(knobs, dict):
            raise ValueError("config must be a JSON object")
        unknown = set(knobs) - _CONFIG_KEYS
        if unknown:
            raise ValueError(
                f"unknown config keys: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(_CONFIG_KEYS))})")
        try:
            config = CampaignConfig(**knobs)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"invalid campaign config: {exc}") from exc
        job_id = f"job-{next(self._ids)}"
        job = {
            "id": job_id,
            "kernel": kernel,
            "mode": mode,
            "shards": shards,
            "status": "queued",
            "progress": {"done": 0, "total": None},
            "result": None,
            "error": None,
        }
        with self._lock:
            self._jobs[job_id] = job
        self._queue.put((job_id, config))
        return job_id

    # -- introspection ---------------------------------------------------

    def job(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            job = self._jobs.get(job_id)
            return dict(job) if job is not None else None

    def jobs(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "jobs": [
                    {"id": job["id"], "status": job["status"],
                     "progress": dict(job["progress"])}
                    for job in self._jobs.values()
                ]
            }

    def wait(self, job_id: str, timeout: float = 60.0) -> Dict[str, Any]:
        """Block until a job settles (``done``/``error``); returns it.

        A polling convenience for tests and smoke scripts -- the HTTP
        surface itself stays poll-based.
        """
        import time

        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job is None:
                raise ValueError(f"no such job {job_id!r}")
            if job["status"] in ("done", "error"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{job_id} still {job['status']} after {timeout:.0f}s")
            time.sleep(0.05)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            tally: Dict[str, int] = {}
            for job in self._jobs.values():
                tally[job["status"]] = tally.get(job["status"], 0) + 1
            return tally

    # -- the runner ------------------------------------------------------

    def _run_loop(self) -> None:
        from repro.workloads import compile_kernel

        while True:
            job_id, config = self._queue.get()
            with self._lock:
                job = self._jobs[job_id]
                job["status"] = "running"

            def on_step(done: int, total: int, job=job) -> None:
                with self._lock:
                    job["progress"] = {"done": done, "total": total}

            try:
                program = compile_kernel(job["kernel"], job["mode"]).program
                if job["shards"] > 1:
                    from repro.service.coordinator import run_campaign_sharded

                    # spawn, not fork: HTTP handler threads may hold
                    # stdlib locks at fork time (see module docstring).
                    report = run_campaign_sharded(
                        program, config, shards=job["shards"],
                        on_step=on_step, fleet_start_method="spawn")
                else:
                    report = run_campaign(program, config, on_step=on_step)
            except Exception as exc:  # job errors are the client's news
                with self._lock:
                    job["status"] = "error"
                    job["error"] = f"{type(exc).__name__}: {exc}"
                continue
            summary = {
                "injections": report.injections,
                "counts": {key.value: value
                           for key, value in sorted(
                               report.counts.items(),
                               key=lambda item: item[0].value)},
                "coverage": report.coverage,
                "violations": len(report.violations),
                "summary": report.summary(),
            }
            if report.resilience is not None:
                summary["resilience"] = report.resilience.as_dict()
            with self._lock:
                job["status"] = "done"
                job["result"] = summary


class _Handler(BaseHTTPRequestHandler):
    service: CampaignService  # set by http_server()

    # Silence the default stderr access log; campaigns own the terminal.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _reply(self, status: int, payload: Any,
               content_type: str = "application/json") -> None:
        if content_type == "application/json":
            body = (json.dumps(payload, indent=2, sort_keys=True) +
                    "\n").encode("utf-8")
        else:
            body = payload.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        from repro.observe import get_registry

        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._reply(200, {"status": "ok", "jobs": self.service.counts()})
        elif path == "/metrics":
            self._reply(200, get_registry().to_prometheus(),
                        content_type="text/plain; version=0.0.4")
        elif path == "/jobs":
            self._reply(200, self.service.jobs())
        elif path.startswith("/jobs/"):
            job = self.service.job(path[len("/jobs/"):])
            if job is None:
                self._reply(404, {"error": "no such job"})
            else:
                self._reply(200, job)
        else:
            self._reply(404, {"error": f"no such endpoint {path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.rstrip("/") != "/jobs":
            self._reply(404, {"error": f"no such endpoint {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            spec = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, UnicodeDecodeError):
            self._reply(400, {"error": "request body is not valid JSON"})
            return
        try:
            job_id = self.service.submit(spec)
        except ValueError as exc:
            self._reply(400, {"error": str(exc)})
            return
        self._reply(202, {"id": job_id, "status": "queued"})


def http_server(
    host: str, port: int, service: Optional[CampaignService] = None
) -> Tuple[ThreadingHTTPServer, CampaignService]:
    """Build (but do not run) the service's HTTP server.

    Returns ``(server, service)``; ``server.server_address`` carries the
    bound port (useful with ``port=0`` in tests).  Call
    ``server.serve_forever()`` -- or drive it from a thread and
    ``shutdown()`` it -- as the caller pleases.
    """
    service = service or CampaignService()
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    return server, service


def serve_http(host: str, port: int) -> None:
    """Run the campaign service until interrupted (CLI: ``talft serve``)."""
    server, _ = http_server(host, port)
    bound = server.server_address
    print(f"talft campaign service on http://{bound[0]}:{bound[1]} "
          "(POST /jobs, GET /jobs, GET /metrics, GET /healthz)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
