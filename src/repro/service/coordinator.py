"""The shard coordinator: plan, dispatch, steal, reissue, merge.

:func:`run_campaign_sharded` is the distributed counterpart of
:func:`repro.injection.campaign.run_campaign`: same program, same
config, same report -- bit-identical, ``latency_buckets`` included --
but the injection steps execute on a fleet of worker processes speaking
the :mod:`repro.service.protocol` over TCP.

Scheduling model:

* the campaign is planned into contiguous :class:`ShardSpec`\\ s
  (:func:`repro.injection.shard.plan_shards`); a **shard is the unit of
  assignment**, a **step is the unit of completion** -- workers stream
  one ``step`` message per finished injection step, so the coordinator
  always knows each shard's unfinished tail;
* an idle worker with no unassigned shard left **steals** the largest
  in-flight tail (the remaining steps of the most-loaded shard) --
  stragglers shrink instead of gating the campaign; duplicate results
  from steal races are deduplicated by step index;
* a worker death (socket EOF, crash, or a ``chunk_timeout`` expiry
  force-close) **reissues** the dead worker's unfinished tail with the
  same bounded backoff as the supervised pool
  (:func:`repro.injection.resilience._backoff_sleep`), degrading to
  in-process serial execution when retries exhaust or the fleet is gone
  -- the campaign *completes*, never aborts;
* every streamed step is appended to its planned shard's journal
  (``<journal>.shard-NNN-of-NNN``) before being counted done, so an
  interrupted sharded campaign resumes from partial shard journals --
  and a *single-process* resume of the offline-merged journal
  (``talft journal merge``) reconstructs the same report.

Concurrency model: one blocking reader thread per worker connection
pushes ``(worker, message | None)`` into a queue; the scheduler (this
thread) is the sole sender.  The default fleet is ``fork``\\ ed local
processes dialing an ephemeral loopback listener -- forked *before* any
reader thread starts, so no thread state crosses the fork.
"""

from __future__ import annotations

import multiprocessing
import queue
import random
import secrets
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import ReproError
from repro.core.pool import mp_context
from repro.injection.campaign import (
    CampaignConfig,
    CampaignReport,
    StepOutcome,
    _injection_steps,
    _reference_run,
    _run_step,
    resolve_backend_config,
)
from repro.injection.chaos import ChaosSpec
from repro.injection.journal import (
    CampaignJournal,
    config_digest,
    decode_step,
    program_digest,
    resume_journal,
)
from repro.injection.resilience import (
    ResilienceConfig,
    ResilienceStats,
    _backoff_sleep,
)
from repro.injection.shard import (
    ShardSpec,
    existing_shard_journals,
    merge_outcomes,
    plan_shards,
)
from repro.observe import ProgressReporter, emit, get_registry, phase_timer
from repro.core.machine import Outcome
from repro.program import Program
from repro.service.protocol import (
    Connection,
    ProtocolError,
    coordinator_mac,
    macs_equal,
    make_nonce,
    pack_pickle,
    worker_mac,
)

#: Seconds the coordinator waits for the fleet to dial in / dial out.
CONNECT_TIMEOUT = 30.0
#: Seconds to wait for ``bye`` messages at shutdown before giving up.
SHUTDOWN_TIMEOUT = 10.0
#: Scheduler tick (seconds): the queue-wait granularity at which worker
#: deadlines are checked.
_TICK = 0.25


class _Worker:
    """Coordinator-side state of one fleet connection."""

    def __init__(self, index: int, conn: Connection, proc=None):
        self.index = index
        self.conn = conn
        self.proc = proc  # local-fleet Process, None for remote workers
        self.alive = True
        self.host: Optional[str] = None
        self.shard: Optional[int] = None  # currently assigned shard index
        self.last_activity = time.monotonic()
        self.timed_out = False  # force-closed, death not yet delivered
        self.bye_metrics: Optional[dict] = None


class _Shard:
    """Scheduling state of one planned shard."""

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        self.remaining: Set[int] = set(spec.steps)
        self.owners: Set[int] = set()  # worker indices running this shard
        self.attempts = 0  # reissues after deaths/timeouts
        self.journal: Optional[CampaignJournal] = None


def _spawn_local_fleet(
    count: int, address: Tuple[str, int], authkey: bytes,
    start_method: Optional[str] = None,
) -> List:
    """Start ``count`` local worker processes dialing ``address``.

    Defaults to the cheap ``fork`` context and must then run before any
    reader thread exists: a forked copy of a running thread's locks is
    deadlock bait.  Callers embedded in multi-threaded processes (the
    HTTP service) pass ``start_method="spawn"`` instead -- slower (one
    interpreter + compile warm-up per worker) but immune to whatever
    locks the host process's threads hold.
    """
    from repro.service.worker import _local_worker_main

    ctx = multiprocessing.get_context(start_method) if start_method \
        else mp_context()
    procs = []
    for _ in range(count):
        proc = ctx.Process(target=_local_worker_main,
                           args=(address, authkey), daemon=True)
        proc.start()
        procs.append(proc)
    return procs


def run_campaign_sharded(
    program: Program,
    config: Optional[CampaignConfig] = None,
    *,
    shards: int,
    workers: Optional[Sequence[Tuple[str, int]]] = None,
    local_workers: Optional[int] = None,
    backend: Optional[str] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    resilience: Optional[ResilienceConfig] = None,
    chaos: Optional[ChaosSpec] = None,
    progress: bool = False,
    on_step=None,
    authkey: Optional[bytes] = None,
    fleet_start_method: Optional[str] = None,
) -> CampaignReport:
    """Run one campaign as ``shards`` journal-backed shards on a fleet.

    With ``workers`` (a list of ``(host, port)`` addresses of ``talft
    shard-worker --listen`` processes) the coordinator dials out;
    otherwise it forks ``local_workers`` (default: one per shard)
    local processes that dial back in.  ``journal_path`` enables per-shard
    journals next to the given base path; ``resume=True`` additionally
    loads the base journal and every existing shard journal first, so
    only genuinely missing steps execute.  All other knobs mirror
    :func:`~repro.injection.campaign.run_campaign`; the returned report
    is bit-identical to the single-process run.

    ``authkey`` is the shared HMAC key remote workers were started with
    (``None`` for a keyless loopback fleet); local fleets always use a
    fresh per-campaign random key.  ``fleet_start_method`` overrides the
    local fleet's multiprocessing start method (the HTTP service passes
    ``"spawn"``; the default ``fork`` is only safe from effectively
    single-threaded processes).
    """
    if shards < 1:
        raise ValueError(f"shards must be at least 1 (got {shards})")
    config = resolve_backend_config(program, config or CampaignConfig(),
                                    backend)
    stats = ResilienceStats()
    resilience = resilience or ResilienceConfig()
    rng = random.Random()

    with phase_timer("campaign.reference"):
        reference = _reference_run(program, config)
    if reference.trace.outcome is not Outcome.HALTED:
        raise ValueError(
            f"reference run did not halt ({reference.trace.outcome}); "
            "campaigns need terminating programs")
    budget = reference.trace.steps + config.step_slack
    steps = _injection_steps(reference.num_steps, config)
    total = len(steps)
    prog_digest = program_digest(program)
    conf_digest = config_digest(config)

    def _ref_tail(step_index: int) -> Tuple[Tuple[int, int], ...]:
        produced = reference.outputs_before[step_index]
        return tuple(reference.trace.outputs[produced:])

    #: Decoded outcomes of every completed step -- from resume or the wire.
    done: Dict[int, List[StepOutcome]] = {}
    if journal_path is not None and resume:
        from repro.injection.shard import load_shard_steps

        candidates = [journal_path] + existing_shard_journals(journal_path)
        done, corrupt = load_shard_steps(program, config, candidates,
                                         reference)
        stats.resumed_steps = len(done)
        stats.corrupt_journal_lines = corrupt

    specs = plan_shards(steps, shards, prog_digest, conf_digest)
    shard_states = [_Shard(spec) for spec in specs]
    for state in shard_states:
        state.remaining -= done.keys()
    pending = [s.spec.index for s in shard_states if s.remaining]
    outstanding = sum(len(s.remaining) for s in shard_states)

    registry = get_registry()
    instr_steps = registry.counter("shard_steps_total")
    instr_steals = registry.counter("shard_steals_total")
    instr_deaths = registry.counter("shard_worker_deaths_total")
    reporter = ProgressReporter(total, label="campaign") if progress else None
    if reporter is not None:
        for _ in range(len(done)):
            reporter.advance()
    emit("campaign-start", steps=total, resumed=len(done), shards=shards,
         backend=config.backend, pruned=config.prune,
         reference_steps=reference.trace.steps, sharded=True)

    def _journal_for(state: _Shard) -> Optional[CampaignJournal]:
        if journal_path is None:
            return None
        if state.journal is None:
            path = state.spec.journal_path(journal_path)
            if resume:
                state.journal, _ = resume_journal(path, prog_digest,
                                                  conf_digest)
            else:
                state.journal = CampaignJournal.fresh(path, prog_digest,
                                                      conf_digest)
        return state.journal

    def _complete_step(state: _Shard, step_index: int, raw: List) -> None:
        nonlocal outstanding
        if step_index in done:
            return  # duplicate from a steal race
        journal = _journal_for(state)
        if journal is not None:
            journal.append_raw(step_index, raw)
            stats.journaled_steps += 1
        done[step_index] = decode_step(raw, _ref_tail(step_index))
        state.remaining.discard(step_index)
        outstanding -= 1
        instr_steps.inc()
        if reporter is not None:
            reporter.advance()
        if on_step is not None:
            on_step(len(done), total)

    def _run_inline(state: _Shard) -> None:
        """Serial in-process fallback for one shard's unfinished tail."""
        from repro.injection.journal import encode_step

        stats.fallback_chunks += 1
        for step_index in sorted(state.remaining):
            outcomes = _run_step(program, config, reference, budget,
                                 step_index)
            _complete_step(state, step_index,
                           encode_step(outcomes, _ref_tail(step_index)))

    fleet: List[_Worker] = []
    listener = None
    inbox: "queue.Queue" = queue.Queue()
    injection_timer = phase_timer("campaign.injections", registry)
    injection_timer.__enter__()
    try:
        if outstanding:
            if workers:
                fleet_key = authkey
                for index, address in enumerate(workers):
                    try:
                        sock = socket.create_connection(
                            address, timeout=CONNECT_TIMEOUT)
                    except OSError as exc:
                        raise ProtocolError(
                            f"cannot reach shard worker at "
                            f"{address[0]}:{address[1]}: {exc}") from exc
                    sock.settimeout(None)
                    fleet.append(_Worker(index, Connection(sock)))
            else:
                # Even the loopback fleet authenticates: any local
                # process could dial the ephemeral listener otherwise.
                fleet_key = secrets.token_bytes(32)
                listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                listener.bind(("127.0.0.1", 0))
                listener.listen(64)
                address = listener.getsockname()
                count = local_workers if local_workers is not None \
                    else min(shards, len(pending)) or 1
                # Fork first, then thread: reader threads must not exist
                # when the fleet forks.
                procs = _spawn_local_fleet(count, address, fleet_key,
                                           fleet_start_method)
                listener.settimeout(CONNECT_TIMEOUT)
                for index in range(count):
                    try:
                        sock, _ = listener.accept()
                    except socket.timeout:
                        break
                    fleet.append(_Worker(index, Connection(sock),
                                         procs[index] if index < len(procs)
                                         else None))

            # Handshake every connection synchronously (no reader thread
            # exists yet) before any pickled job payload flows: read the
            # hello, and with a fleet key exchange the HMAC challenge
            # response.  A worker that fails is closed and dropped from
            # scheduling -- the survivors (or the serial fallback) still
            # complete the campaign.
            for worker in fleet:
                try:
                    worker.conn.settimeout(CONNECT_TIMEOUT)
                    hello = worker.conn.recv()
                    if hello is None or hello.get("type") != "hello":
                        raise ProtocolError("worker did not say hello")
                    worker.host = hello.get("host")
                    if fleet_key is not None:
                        nonce = make_nonce()
                        worker.conn.send({
                            "type": "auth",
                            "mac": coordinator_mac(
                                fleet_key, str(hello.get("nonce", ""))),
                            "nonce": nonce,
                        })
                        reply = worker.conn.recv()
                        if reply is None or reply.get("type") != "auth-ok" \
                                or not macs_equal(
                                    worker_mac(fleet_key, nonce),
                                    reply.get("mac")):
                            raise ProtocolError(
                                "worker failed fleet authentication")
                    worker.conn.settimeout(None)
                except (ProtocolError, OSError):
                    worker.alive = False
                    worker.conn.close()

            for worker in fleet:
                if not worker.alive:
                    continue
                die_after = None
                if chaos is not None and \
                        chaos.kill_shard_worker == worker.index:
                    die_after = chaos.kill_shard_after_steps
                try:
                    worker.conn.send({
                        "type": "job",
                        "program": pack_pickle(program),
                        "config": pack_pickle(config),
                        "program_digest": prog_digest,
                        "config_digest": conf_digest,
                        "die_after_steps": die_after,
                    })
                except OSError:
                    worker.alive = False
                    worker.conn.close()

            def _reader(worker: _Worker) -> None:
                while True:
                    try:
                        message = worker.conn.recv()
                    except (ProtocolError, OSError):
                        message = None
                    inbox.put((worker, message))
                    if message is None:
                        return

            for worker in fleet:
                if worker.alive:
                    threading.Thread(target=_reader, args=(worker,),
                                     daemon=True).start()

        shutting_down = False

        def _assign(worker: _Worker) -> None:
            """Hand the idle ``worker`` its next work, stealing if needed."""
            if shutting_down or not worker.alive:
                return
            index = None
            if pending:
                index = pending.pop(0)
            else:
                # Steal the largest in-flight tail still worth splitting.
                best = None
                for state in shard_states:
                    if state.remaining and len(state.owners) == 1 and \
                            len(state.remaining) >= 2:
                        if best is None or \
                                len(state.remaining) > len(best.remaining):
                            best = state
                if best is not None:
                    index = best.spec.index
                    stats.shard_steals += 1
                    instr_steals.inc()
                    emit("shard-steal", shard=index,
                         steps=len(best.remaining), worker=worker.index)
            if index is None:
                worker.shard = None
                return
            state = shard_states[index]
            worker.shard = index
            state.owners.add(worker.index)
            worker.last_activity = time.monotonic()
            try:
                worker.conn.send({"type": "shard", "shard": index,
                                  "steps": sorted(state.remaining)})
            except OSError:
                pass  # the reader thread will surface the death

        def _on_death(worker: _Worker) -> None:
            """EOF/timeout on a worker: reissue its unfinished tail."""
            if not worker.alive:
                return
            worker.alive = False
            worker.conn.close()
            if shutting_down:
                return
            stats.shard_worker_deaths += 1
            instr_deaths.inc()
            emit("shard-worker-death", worker=worker.index,
                 shard=worker.shard)
            index = worker.shard
            worker.shard = None
            if index is None:
                return
            state = shard_states[index]
            state.owners.discard(worker.index)
            if not state.remaining or state.owners:
                return  # finished, or a steal partner is still on it
            state.attempts += 1
            stats.retries += 1
            if state.attempts > resilience.max_retries:
                if not resilience.serial_fallback:
                    raise ReproError(
                        f"shard {index} exhausted {resilience.max_retries} "
                        "retries and serial fallback is disabled")
                _run_inline(state)
                return
            _backoff_sleep(resilience, state.attempts, rng)
            pending.append(index)
            for idle in fleet:
                if idle.alive and idle.shard is None:
                    _assign(idle)
                    break

        def _check_deadlines() -> None:
            """Force-close any worker past its chunk-timeout deadline.

            Runs on *every* scheduling iteration, not just idle ticks: a
            busy fleet can keep the inbox non-empty for arbitrarily long,
            which must not postpone a hung worker's force-close.  The
            close unblocks that worker's reader thread, which then
            delivers the death through the inbox like any other EOF.
            """
            deadline = resilience.chunk_timeout
            if deadline is None:
                return
            now = time.monotonic()
            for candidate in fleet:
                if candidate.alive and not candidate.timed_out \
                        and candidate.shard is not None \
                        and now - candidate.last_activity > deadline:
                    stats.timeouts += 1
                    candidate.timed_out = True
                    candidate.conn.close()

        # The hellos were consumed by the handshake above, so hand every
        # surviving worker its first shard directly.
        for worker in fleet:
            if worker.alive:
                _assign(worker)

        # --- scheduling loop -------------------------------------------
        while outstanding:
            if not any(worker.alive for worker in fleet):
                # Fleet gone (or never materialized): finish in-process.
                if not resilience.serial_fallback:
                    raise ReproError(
                        "shard worker fleet is gone and serial fallback "
                        "is disabled")
                for state in shard_states:
                    if state.remaining:
                        _run_inline(state)
                break
            _check_deadlines()
            try:
                worker, message = inbox.get(timeout=_TICK)
            except queue.Empty:
                continue
            if message is None:
                _on_death(worker)
                continue
            worker.last_activity = time.monotonic()
            kind = message["type"]
            if kind == "step":
                state = shard_states[message["shard"]]
                _complete_step(state, message["step"], message["out"])
            elif kind == "shard-done":
                index = message["shard"]
                shard_states[index].owners.discard(worker.index)
                if worker.shard == index:
                    worker.shard = None
                _assign(worker)
            # Unknown message types from future workers are ignored.

        # --- shutdown: collect host-labelled worker telemetry ----------
        shutting_down = True
        awaiting = 0
        for worker in fleet:
            if worker.alive:
                try:
                    worker.conn.send({"type": "shutdown"})
                    awaiting += 1
                except OSError:
                    worker.alive = False
        deadline = time.monotonic() + SHUTDOWN_TIMEOUT
        while awaiting and time.monotonic() < deadline:
            try:
                worker, message = inbox.get(
                    timeout=max(0.05, deadline - time.monotonic()))
            except queue.Empty:
                break
            if message is None:
                if worker.alive:
                    worker.alive = False
                    awaiting -= 1
            elif message["type"] == "bye":
                worker.bye_metrics = message.get("metrics")
                worker.host = message.get("host", worker.host)
                worker.alive = False
                awaiting -= 1
        for worker in fleet:
            if worker.bye_metrics:
                # Host-labelled fold: per-worker series stay distinct in
                # the coordinator's registry instead of colliding.
                registry.merge_dict(worker.bye_metrics,
                                    extra_labels={"host": worker.host or
                                                  f"worker-{worker.index}"})
    finally:
        for worker in fleet:
            worker.conn.close()
        if listener is not None:
            listener.close()
        for worker in fleet:
            if worker.proc is not None:
                worker.proc.join(timeout=5.0)
                if worker.proc.is_alive():
                    worker.proc.terminate()
        for state in shard_states:
            if state.journal is not None:
                state.journal.close()
        injection_timer.__exit__(None, None, None)
        if reporter is not None:
            reporter.finish()

    with phase_timer("campaign.merge", registry):
        report = merge_outcomes(reference, config, steps, done)
    report.resilience = stats
    registry.counter("campaign_resumed_steps_total").inc(stats.resumed_steps)
    registry.counter("campaign_journaled_steps_total").inc(
        stats.journaled_steps)
    registry.counter("campaign_corrupt_journal_lines_total").inc(
        stats.corrupt_journal_lines)
    emit("campaign-end", injections=report.injections,
         coverage=round(report.coverage, 6),
         violations=len(report.violations), sharded=True,
         steals=stats.shard_steals, worker_deaths=stats.shard_worker_deaths)
    return report
