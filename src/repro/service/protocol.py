"""Length-prefixed JSON framing for the shard worker protocol.

One frame = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Every message is a JSON object with a ``"type"``
key; the step-outcome payloads reuse the campaign journal's codec
(:func:`repro.injection.journal.encode_step`), so a streamed shard
result and a journaled step are byte-for-byte the same encoding --
one codec, one set of round-trip tests.

Message flow (worker side initiates nothing; it answers):

* worker -> coordinator: ``hello`` (host label, pid, auth nonce) on
  connect;
* with a fleet key: coordinator -> worker ``auth`` (HMAC challenge
  response), worker -> coordinator ``auth-ok`` -- **before** any pickled
  payload is sent or accepted (see *Fleet authentication* below);
* coordinator -> worker: ``job`` (base64-pickled program + config,
  identity digests, chaos directives), then any number of ``shard``
  assignments, then ``shutdown``;
* worker -> coordinator: a ``step`` per completed injection step, a
  ``shard-done`` per finished assignment, and a final ``bye`` carrying
  the worker's metrics registry for host-labelled merging.

Program/config travel as ``base64(pickle)`` inside the JSON envelope --
:class:`~repro.program.Program` already pickles across the supervised
pool (hash-consed statics re-intern on load), and the digests in the
``job`` message let the worker verify it unpickled the campaign the
coordinator planned.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import os
import pickle
import secrets
import socket
import struct
from typing import Any, Dict, Optional

from repro.core.errors import ReproError

#: Frames above this are a protocol violation, not a campaign -- guards
#: against garbage on the port being interpreted as a gigabyte read.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct("!I")


class ProtocolError(ReproError):
    """A malformed or oversized frame on a shard worker connection."""


def pack_pickle(value: Any) -> str:
    """``base64(pickle(value))`` -- how programs/configs ride in JSON."""
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def unpack_pickle(data: str) -> Any:
    return pickle.loads(base64.b64decode(data.encode("ascii")))


# ---------------------------------------------------------------------------
# Fleet authentication
# ---------------------------------------------------------------------------
#
# The ``job`` message carries a pickled program, so accepting one from an
# unauthenticated peer is arbitrary code execution.  Both sides therefore
# prove knowledge of a shared fleet key *before* any pickle payload flows:
# the worker's ``hello`` carries a nonce, the coordinator answers with
# ``auth`` (an HMAC over that nonce plus its own nonce), and the worker
# replies ``auth-ok`` (an HMAC over the coordinator's nonce).  Local
# forked fleets use a per-campaign random key; remote fleets share one
# via ``--authkey-file`` or the environment variable below.

AUTHKEY_ENV = "TALFT_SHARD_AUTHKEY"


def load_authkey(path: Optional[str] = None) -> Optional[bytes]:
    """The shared fleet key: a key file beats ``TALFT_SHARD_AUTHKEY``.

    Returns ``None`` when neither is configured.  Raises ``ValueError``
    for an empty key file (almost certainly a mistake, and an empty HMAC
    key is barely a key).
    """
    if path is not None:
        with open(path, "rb") as handle:
            key = handle.read().strip()
        if not key:
            raise ValueError(f"authkey file {path!r} is empty")
        return key
    value = os.environ.get(AUTHKEY_ENV, "")
    return value.encode("utf-8") if value else None


def make_nonce() -> str:
    return secrets.token_hex(16)


def _mac(key: bytes, role: bytes, nonce: str) -> str:
    return hmac.new(key, role + b":" + nonce.encode("utf-8"),
                    hashlib.sha256).hexdigest()


def coordinator_mac(key: bytes, nonce: str) -> str:
    """The MAC a coordinator sends to answer a worker's hello nonce."""
    return _mac(key, b"talft-coordinator", nonce)


def worker_mac(key: bytes, nonce: str) -> str:
    """The MAC a worker sends to answer the coordinator's auth nonce."""
    return _mac(key, b"talft-worker", nonce)


def macs_equal(expected: str, received: Any) -> bool:
    return isinstance(received, str) and \
        hmac.compare_digest(expected, received)


class Connection:
    """One framed JSON connection (either side of the protocol).

    Thread contract: at most one sender thread and one receiver thread
    may use a connection concurrently (the coordinator reads from a
    per-worker thread and writes from the scheduler thread); ``send`` and
    ``recv`` each perform a single locked socket operation sequence.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def send(self, message: Dict[str, Any]) -> None:
        payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
        if len(payload) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"refusing to send a {len(payload)}-byte frame "
                f"(limit {MAX_FRAME_BYTES})")
        self._sock.sendall(_LENGTH.pack(len(payload)) + payload)

    def recv(self) -> Optional[Dict[str, Any]]:
        """The next message, or ``None`` on clean EOF (peer closed)."""
        header = self._rfile.read(_LENGTH.size)
        if not header:
            return None
        if len(header) < _LENGTH.size:
            raise ProtocolError("connection closed mid-frame header")
        (length,) = _LENGTH.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"peer announced a {length}-byte frame "
                f"(limit {MAX_FRAME_BYTES})")
        payload = self._rfile.read(length)
        if len(payload) < length:
            raise ProtocolError("connection closed mid-frame payload")
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"undecodable frame: {exc}") from exc
        if not isinstance(message, dict) or "type" not in message:
            raise ProtocolError("frame is not a typed message object")
        return message

    def settimeout(self, timeout: Optional[float]) -> None:
        self._sock.settimeout(timeout)

    def close(self) -> None:
        # Shutdown strictly first: it unblocks a reader thread parked in
        # ``_rfile.read``.  Closing the BufferedReader before that would
        # block on its internal lock until the read returns -- for a
        # stalled peer, never -- deadlocking whoever called close() (the
        # coordinator's chunk-timeout force-close relies on this order).
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def parse_address(spec: str, allow_zero: bool = False) -> tuple:
    """``HOST:PORT`` (or bare ``PORT`` -> localhost) to ``(host, port)``.

    IPv6 literals must be bracketed (``[::1]:7070``); a bare multi-colon
    address is rejected rather than silently mis-split.  ``allow_zero``
    admits port 0 -- meaningful for a listener (bind an ephemeral port)
    but never for a dial-out address.
    """
    text = spec.strip()
    if text.startswith("["):
        host, bracket, port_text = text[1:].partition("]")
        if not bracket or not port_text.startswith(":") or not host:
            raise ValueError(f"invalid worker address {spec!r} "
                             "(expected [IPV6]:PORT)")
        port_text = port_text[1:]
    elif text.count(":") > 1:
        raise ValueError(f"invalid worker address {spec!r} "
                         "(IPv6 literals need brackets: [::1]:PORT)")
    elif ":" in text:
        host, _, port_text = text.partition(":")
    else:
        host, port_text = "127.0.0.1", text
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid worker address {spec!r} "
                         "(expected HOST:PORT)") from None
    if not ((0 if allow_zero else 1) <= port < 65536):
        raise ValueError(f"invalid port in worker address {spec!r}")
    return (host or "127.0.0.1", port)
