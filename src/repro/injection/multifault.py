"""Beyond the model: multi-fault injection.

Every theorem of the paper assumes a Single Event Upset; nothing is
promised for two or more faults, and the mechanism is in fact *defeatable*
by a correlated pair -- strike the green copy and the blue copy of the
same value with the same wrong bits and every comparison passes on corrupt
data.  This module probes that boundary:

* :func:`run_multifault_campaign` samples random k-fault schedules and
  classifies the runs exactly as the single-fault campaign does;
* :func:`correlated_double_fault` builds the adversarial pair for a given
  pair of registers, the minimal witness that the SEU assumption is
  load-bearing.

These are *negative-space* experiments: the interesting outcome is the
silent corruptions that single-fault campaigns can never produce on
well-typed code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.faults import Fault, RegZap, fault_sites
from repro.core.machine import Machine
from repro.core.state import MachineState
from repro.core.errors import ReproError
from repro.injection.campaign import (
    CampaignConfig,
    CampaignReport,
    InjectionRecord,
    _VIOLATIONS,
    _reference_run,
    classify,
)
from repro.exec import MACHINE_BACKENDS, require_backend
from repro.injection.values import representative_values, with_value
from repro.core.machine import Trace
from repro.program import Program

#: Bounded resampling budget per fault slot when a chosen site yields no
#: replacement values (see :func:`run_multifault_campaign`).
_SITE_RETRIES = 8


def correlated_double_fault(
    green_register: str,
    blue_register: str,
    value: int,
    green_at_step: int,
    blue_at_step: Optional[int] = None,
) -> List[Tuple[int, Fault]]:
    """The adversarial schedule: both copies struck with the same value.

    To defeat the store-queue check the green copy must be struck *before*
    the green store consumes it (so the corrupt value enters the queue) and
    the blue copy before the blue store's compare.
    """
    if blue_at_step is None:
        blue_at_step = green_at_step
    return [
        (green_at_step, RegZap(green_register, value)),
        (blue_at_step, RegZap(blue_register, value)),
    ]


def run_faults(
    program: Program,
    schedule: List[Tuple[int, Fault]],
    max_steps: int = 1_000_000,
) -> Trace:
    """Run ``program`` under an arbitrary fault schedule."""
    machine = Machine(program.boot(), fault_budget=len(schedule))
    return machine.run(max_steps=max_steps, faults=schedule)


def run_multifault_campaign(
    program: Program,
    num_faults: int = 2,
    samples: int = 500,
    seed: int = 1,
    config: Optional[CampaignConfig] = None,
    backend: Optional[str] = None,
) -> CampaignReport:
    """Randomly sampled ``num_faults``-fault schedules, classified against
    the fault-free reference (same classification as Theorem 4's).

    ``backend`` overrides ``config.backend`` for the faulty runs; any name
    in :data:`repro.exec.BACKENDS` is accepted, campaign-only engines
    (``"vector"``) resolving to the compiled machine engine for the
    per-schedule runs.  Reports are identical across backends.

    Samples whose every resampling attempt produced a site with no
    replacement values are counted in ``report.discarded_samples`` (so
    ``injections + discarded_samples == samples``), never dropped
    silently.
    """
    config = config or CampaignConfig()
    if num_faults < 1:
        raise ReproError(
            f"multifault campaigns need at least one fault per schedule "
            f"(got num_faults={num_faults})")
    if samples < 0:
        raise ReproError(f"samples must be non-negative (got {samples})")
    if backend is None:
        backend = config.backend
    require_backend(backend)
    if backend not in MACHINE_BACKENDS:
        # Campaign-only engines (the vector lane engine, and whatever the
        # registry grows next) execute whole fault batches, not one
        # schedule at a time; their per-schedule runs use the compiled
        # machine engine, exactly as vector lanes fall back per lane.
        backend = "compiled"
    rng = random.Random(seed)
    run = _reference_run(program, config)
    reference = run.trace
    if reference.outcome.value != "halted":
        raise ValueError("reference run did not halt")
    budget = reference.steps + config.step_slack

    report = CampaignReport(reference=reference)
    total_steps = run.num_steps
    for _ in range(samples):
        schedule: List[Tuple[int, Fault]] = []
        for _fault_index in range(num_faults):
            # A chosen site can yield no replacement values; resample it
            # (bounded) rather than silently shipping a short schedule.
            # The first draw consumes the RNG exactly as the historical
            # loop did, so reports for existing seeds are unchanged.
            for _attempt in range(_SITE_RETRIES):
                step_index = rng.randrange(total_steps)
                base: MachineState = run.state_at(step_index)
                sites = list(fault_sites(base))
                site = rng.choice(sites)
                values = representative_values(base, site, program, rng)
                if values:
                    schedule.append(
                        (step_index, with_value(site, rng.choice(values))))
                    break
            else:
                break
        if len(schedule) < num_faults:
            # Every retry came up empty: account for the dropped sample
            # instead of quietly reporting fewer injections than asked.
            report.discarded_samples += 1
            continue
        schedule.sort(key=lambda pair: pair[0])
        # Replay from the earliest reconstructed state (faults before it
        # already scheduled relative to absolute step counts).
        first_step = schedule[0][0]
        machine = Machine(run.state_at(first_step),
                          fault_budget=num_faults,
                          oob_policy=config.oob_policy,
                          backend=backend)
        relative = [(at - first_step, fault) for at, fault in schedule]
        trace = machine.run(max_steps=budget, faults=relative)
        produced = reference.outputs[:run.outputs_before[first_step]]
        merged = Trace(trace.outcome, produced + trace.outputs, trace.steps)
        result = classify(merged, reference)
        report.injections += 1
        report.counts[result] = report.counts.get(result, 0) + 1
        record = InjectionRecord(first_step, schedule[0][1], result,
                                 tuple(merged.outputs))
        if config.keep_records:
            report.records.append(record)
        if result in _VIOLATIONS:
            report.violations.append(record)
    return report
