"""Single-event-upset injection campaigns.

A campaign takes a program, runs it fault-free to obtain the reference
observable output, then re-executes it once per (step, site, value) triple
with exactly one fault applied, classifying every faulty run against the
Fault Tolerance theorem (Theorem 4):

* ``MASKED``    -- the run produced exactly the reference output sequence
  (the fault changed nothing observable);
* ``DETECTED``  -- the hardware entered the ``fault`` state and the output
  produced so far is a *prefix* of the reference;
* ``SILENT_CORRUPTION`` -- the output deviated from the reference without
  detection (for well-typed programs this is a theorem violation; for the
  unprotected baseline it is the expected failure mode);
* ``STUCK`` / ``TIMEOUT`` -- the machine got stuck or overran its budget
  (both are violations for well-typed programs).

Exhaustive campaigns enumerate every dynamic step and fault site;
:class:`CampaignConfig` offers sampling knobs for larger programs.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.faults import Fault, apply_fault, fault_sites, is_effective
from repro.core.machine import Machine, Outcome, Trace
from repro.core.semantics import OobPolicy
from repro.core.state import MachineState
from repro.injection.values import representative_values, with_value
from repro.program import Program


class FaultResult(enum.Enum):
    MASKED = "masked"
    DETECTED = "detected"
    SILENT_CORRUPTION = "silent-corruption"
    STUCK = "stuck"
    TIMEOUT = "timeout"


@dataclass(frozen=True)
class InjectionRecord:
    """One faulty run."""

    step: int
    fault: Fault
    result: FaultResult
    outputs: Tuple[Tuple[int, int], ...]
    #: Steps from injection to the terminal state (detection latency for
    #: DETECTED runs; -1 when not recorded).
    latency: int = -1


@dataclass
class CampaignConfig:
    """Knobs for campaign size and machine policy."""

    #: Extra steps allowed beyond the fault-free run length before a faulty
    #: run is declared TIMEOUT.
    step_slack: int = 64
    #: Hard cap on the fault-free run itself.
    max_steps: int = 200_000
    #: Inject at every k-th dynamic step (1 = every step).
    step_stride: int = 1
    #: Optionally cap the number of injection steps (evenly sampled).
    max_injection_steps: Optional[int] = None
    #: Out-of-bounds load policy (the semantics allows either).
    oob_policy: OobPolicy = OobPolicy.TRAP
    #: Seed for random replacement values (None disables the random value).
    seed: Optional[int] = 12345
    #: Skip faults that would not change the state.
    skip_ineffective: bool = True
    #: Cap on replacement values per site (None = all representatives).
    max_values_per_site: Optional[int] = None
    #: Cap on fault sites sampled per injection step (None = all sites).
    max_sites_per_step: Optional[int] = None
    #: Keep per-run records (can be large for exhaustive campaigns).
    keep_records: bool = False
    #: Software-detection convention: a trailing write to this address is a
    #: detection announcement, not payload output (used to classify
    #: SWIFT-style software-only builds, whose "detector" is ordinary code).
    error_port: Optional[int] = None


@dataclass
class CampaignReport:
    """Aggregate results of a campaign."""

    reference: Trace
    injections: int = 0
    counts: Dict[FaultResult, int] = field(default_factory=dict)
    records: List[InjectionRecord] = field(default_factory=list)
    violations: List[InjectionRecord] = field(default_factory=list)

    @property
    def masked(self) -> int:
        return self.counts.get(FaultResult.MASKED, 0)

    @property
    def detected(self) -> int:
        return self.counts.get(FaultResult.DETECTED, 0)

    @property
    def silent(self) -> int:
        return self.counts.get(FaultResult.SILENT_CORRUPTION, 0)

    @property
    def coverage(self) -> float:
        """Fraction of injections that were masked or detected."""
        if not self.injections:
            return 1.0
        return (self.masked + self.detected) / self.injections

    def summary(self) -> str:
        parts = [f"{self.injections} injections"]
        for result in FaultResult:
            count = self.counts.get(result, 0)
            if count:
                parts.append(f"{result.value}: {count}")
        parts.append(f"coverage: {self.coverage:.4%}")
        return ", ".join(parts)


def _is_prefix(prefix: Sequence, full: Sequence) -> bool:
    return len(prefix) <= len(full) and list(full[: len(prefix)]) == list(prefix)


def classify(
    trace: Trace, reference: Trace, error_port: Optional[int] = None
) -> FaultResult:
    """Classify one faulty run against the reference output sequence.

    ``error_port`` enables the software-detection convention: a run that
    halts after announcing on the error port counts as DETECTED when the
    output produced *before* the announcement is a reference prefix.
    """
    if error_port is not None and trace.outcome is Outcome.HALTED:
        outputs = list(trace.outputs)
        announced = False
        while outputs and outputs[-1][0] == error_port:
            outputs.pop()
            announced = True
        if announced:
            if _is_prefix(outputs, reference.outputs):
                return FaultResult.DETECTED
            return FaultResult.SILENT_CORRUPTION
    if trace.outcome is Outcome.FAULT_DETECTED:
        if _is_prefix(trace.outputs, reference.outputs):
            return FaultResult.DETECTED
        return FaultResult.SILENT_CORRUPTION  # detected, but after deviating
    if trace.outcome is Outcome.HALTED:
        if list(trace.outputs) == list(reference.outputs):
            return FaultResult.MASKED
        return FaultResult.SILENT_CORRUPTION
    if trace.outcome is Outcome.STUCK:
        return FaultResult.STUCK
    return FaultResult.TIMEOUT


def _snapshot_run(
    program: Program, config: CampaignConfig
) -> Tuple[Trace, List[MachineState], List[int]]:
    """Fault-free reference run, snapshotting the state before every step.

    Returns the reference trace, the pre-step snapshots, and for each step
    the number of outputs emitted before it (needed to rebuild a faulty
    run's full output sequence).
    """
    from repro.core.state import Status

    state = program.boot()
    machine = Machine(state, oob_policy=config.oob_policy)
    snapshots: List[MachineState] = []
    outputs: List[Tuple[int, int]] = []
    outputs_before: List[int] = []
    steps = 0
    while steps < config.max_steps and not state.is_terminal:
        snapshots.append(state.clone())
        outputs_before.append(len(outputs))
        result = machine.step()
        outputs.extend(result.outputs)
        steps += 1
    if state.status is Status.HALTED:
        outcome = Outcome.HALTED
    elif state.status is Status.FAULT_DETECTED:
        outcome = Outcome.FAULT_DETECTED
    else:
        outcome = Outcome.RUNNING
    return Trace(outcome, outputs, steps), snapshots, outputs_before


def _injection_steps(total: int, config: CampaignConfig) -> Iterator[int]:
    steps = range(0, total, config.step_stride)
    if config.max_injection_steps is not None and \
            len(steps) > config.max_injection_steps:
        stride = max(1, len(steps) // config.max_injection_steps)
        steps = range(0, total, config.step_stride * stride)
    return iter(steps)


def run_campaign(
    program: Program,
    config: Optional[CampaignConfig] = None,
) -> CampaignReport:
    """Run a SEU campaign over ``program`` and classify every faulty run."""
    config = config or CampaignConfig()
    rng = random.Random(config.seed) if config.seed is not None else None

    reference, snapshots, outputs_before = _snapshot_run(program, config)
    if reference.outcome is not Outcome.HALTED:
        raise ValueError(
            f"reference run did not halt ({reference.outcome}); campaigns "
            "need terminating programs"
        )
    budget = reference.steps + config.step_slack
    report = CampaignReport(reference=reference)

    for step_index in _injection_steps(len(snapshots), config):
        base = snapshots[step_index]
        sites = list(fault_sites(base))
        if config.max_sites_per_step is not None \
                and len(sites) > config.max_sites_per_step:
            sampler = rng if rng is not None else random.Random(step_index)
            sites = sampler.sample(sites, config.max_sites_per_step)
        for site in sites:
            values = representative_values(base, site, program, rng)
            if config.max_values_per_site is not None:
                values = values[: config.max_values_per_site]
            for value in values:
                fault = with_value(site, value)
                if config.skip_ineffective and not is_effective(base, fault):
                    continue
                faulty = base.clone()
                apply_fault(faulty, fault)
                trace = Machine(faulty, oob_policy=config.oob_policy).run(
                    max_steps=budget
                )
                # Prepend the outputs already produced before injection.
                produced = reference.outputs[: outputs_before[step_index]]
                full_outputs = produced + trace.outputs
                merged = Trace(trace.outcome, full_outputs, trace.steps)
                result = classify(merged, reference, config.error_port)
                report.injections += 1
                report.counts[result] = report.counts.get(result, 0) + 1
                record = InjectionRecord(
                    step_index, fault, result, tuple(full_outputs),
                    latency=trace.steps,
                )
                if config.keep_records:
                    report.records.append(record)
                if result in (
                    FaultResult.SILENT_CORRUPTION,
                    FaultResult.STUCK,
                    FaultResult.TIMEOUT,
                ):
                    report.violations.append(record)
    return report


