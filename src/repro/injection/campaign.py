"""Single-event-upset injection campaigns.

A campaign takes a program, runs it fault-free to obtain the reference
observable output, then re-executes it once per (step, site, value) triple
with exactly one fault applied, classifying every faulty run against the
Fault Tolerance theorem (Theorem 4):

* ``MASKED``    -- the run produced exactly the reference output sequence
  (the fault changed nothing observable);
* ``DETECTED``  -- the hardware entered the ``fault`` state and the output
  produced so far is a *prefix* of the reference;
* ``SILENT_CORRUPTION`` -- the output deviated from the reference without
  detection (for well-typed programs this is a theorem violation; for the
  unprotected baseline it is the expected failure mode);
* ``STUCK`` / ``TIMEOUT`` -- the machine got stuck or overran its budget
  (both are violations for well-typed programs).

Exhaustive campaigns enumerate every dynamic step and fault site;
:class:`CampaignConfig` offers sampling knobs for larger programs.

Engine architecture.  The reference run is recorded as **sparse
checkpoints + deterministic replay** (:class:`ReferenceRun`): a full state
clone every ``checkpoint_interval`` steps instead of before *every* step,
with any injection point reconstructed by replaying at most
``checkpoint_interval - 1`` deterministic steps from the nearest
checkpoint.  Each injection step is processed independently with an RNG
derived from ``(seed, step_index)``, which makes the work embarrassingly
parallel: ``run_campaign(..., jobs=N)`` partitions the injection steps
across a process pool (:mod:`repro.injection.parallel`) and merges the
per-step results in step order, producing a report bit-identical to the
serial engine's.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field, replace as _dc_replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - types only (avoids import cycles)
    from repro.injection.chaos import ChaosSpec
    from repro.injection.resilience import ResilienceConfig, ResilienceStats

from repro.core.faults import Fault, apply_fault, fault_sites, is_effective
from repro.core.machine import Machine, Outcome, Trace
from repro.core.registers import PC_B, PC_G
from repro.core.semantics import OobPolicy, step as _semantics_step
from repro.core.state import MachineState, Status
from repro.exec import (
    CompiledExec,
    compiled_for,
    require_backend,
    run_compiled,
)
from repro.exec.vector import vector_available
from repro.injection.values import representative_values, with_value
from repro.observe import (
    ProgressReporter,
    STEPS_BUCKETS,
    emit as _emit_event,
    get_registry,
    phase_timer,
)
from repro.program import Program


class FaultResult(enum.Enum):
    MASKED = "masked"
    DETECTED = "detected"
    SILENT_CORRUPTION = "silent-corruption"
    STUCK = "stuck"
    TIMEOUT = "timeout"


#: Results that falsify Theorem 4 for well-typed programs.
_VIOLATIONS = frozenset((
    FaultResult.SILENT_CORRUPTION, FaultResult.STUCK, FaultResult.TIMEOUT,
))


@dataclass(frozen=True)
class InjectionRecord:
    """One faulty run."""

    step: int
    fault: Fault
    result: FaultResult
    outputs: Tuple[Tuple[int, int], ...]
    #: Steps from injection to the terminal state (detection latency for
    #: DETECTED runs; -1 when not recorded).
    latency: int = -1


@dataclass
class CampaignConfig:
    """Knobs for campaign size and machine policy."""

    #: Extra steps allowed beyond the fault-free run length before a faulty
    #: run is declared TIMEOUT.
    step_slack: int = 64
    #: Hard cap on the fault-free run itself.
    max_steps: int = 200_000
    #: Inject at every k-th dynamic step (1 = every step).
    step_stride: int = 1
    #: Optionally cap the number of injection steps (evenly sampled).
    max_injection_steps: Optional[int] = None
    #: Out-of-bounds load policy (the semantics allows either).
    oob_policy: OobPolicy = OobPolicy.TRAP
    #: Seed for random replacement values (None disables the random value).
    seed: Optional[int] = 12345
    #: Skip faults that would not change the state.
    skip_ineffective: bool = True
    #: Cap on replacement values per site (None = all representatives).
    max_values_per_site: Optional[int] = None
    #: Cap on fault sites sampled per injection step (None = all sites).
    max_sites_per_step: Optional[int] = None
    #: Keep per-run records (can be large for exhaustive campaigns).
    keep_records: bool = False
    #: Software-detection convention: a trailing write to this address is a
    #: detection announcement, not payload output (used to classify
    #: SWIFT-style software-only builds, whose "detector" is ordinary code).
    error_port: Optional[int] = None
    #: Reference-run steps between full state checkpoints.  Injection
    #: points between checkpoints are reconstructed by replaying at most
    #: this many deterministic steps; raising it trades replay time for
    #: snapshot memory.
    checkpoint_interval: int = 32
    #: Worker processes for the campaign (1 = serial).  Any value produces
    #: the same report as ``jobs=1`` for the same seed.
    jobs: int = 1
    #: Execution backend (any name in :data:`repro.exec.BACKENDS`):
    #: ``"compiled"`` (closure-compiled, see :mod:`repro.exec`),
    #: ``"step"`` (the interpreter) or ``"vector"`` (batch-vectorized
    #: lockstep lanes, see :mod:`repro.exec.vector`).  All are
    #: observationally identical; ``"compiled"`` falls back to ``"step"``
    #: when the program cannot be compiled, and ``"vector"`` to
    #: ``"compiled"`` when numpy is unavailable (and per-lane to the
    #: scalar engines whenever a lane leaves the vectorized path).
    backend: str = "compiled"
    #: Fault-equivalence pruning (:mod:`repro.injection.prune`): per
    #: injection step, provably-equivalent fault variants share one real
    #: execution, and the class prediction is replicated only after the
    #: representative's execution confirmed it -- reports stay
    #: bit-identical by construction.  ``False`` (``--no-prune``)
    #: executes every variant.
    prune: bool = True
    #: Audit fraction: re-execute this share of pruned variants on the
    #: real engines and raise :class:`~repro.injection.prune.
    #: PruneAuditError` on any mismatch (0.0 disables, 1.0 re-runs every
    #: pruned variant).  Purely a verification knob -- audited reports
    #: are bit-identical to unaudited ones.
    prune_audit: float = 0.0

    def __post_init__(self) -> None:
        """Reject nonsense knob values up front, with the same friendly
        wording the CLI uses.

        Library callers get the same guardrails as ``talft campaign``:
        ``step_stride=0`` would loop :func:`_injection_steps` forever, and
        a ``checkpoint_interval``, ``jobs`` or ``max_injection_steps``
        below 1 used to fail obscurely deep inside the engine.
        """
        for name, value, minimum in (
            ("step_stride", self.step_stride, 1),
            ("checkpoint_interval", self.checkpoint_interval, 1),
            ("jobs", self.jobs, 1),
            ("max_steps", self.max_steps, 1),
            ("max_injection_steps", self.max_injection_steps, 1),
            ("max_values_per_site", self.max_values_per_site, 1),
            ("max_sites_per_step", self.max_sites_per_step, 1),
            ("step_slack", self.step_slack, 0),
        ):
            if value is not None and value < minimum:
                raise ValueError(
                    f"{name} must be at least {minimum} (got {value})")
        if not 0.0 <= self.prune_audit <= 1.0:
            raise ValueError(
                f"prune_audit must be between 0.0 and 1.0 "
                f"(got {self.prune_audit})")
        require_backend(self.backend)


@dataclass
class CampaignReport:
    """Aggregate results of a campaign."""

    reference: Trace
    injections: int = 0
    counts: Dict[FaultResult, int] = field(default_factory=dict)
    records: List[InjectionRecord] = field(default_factory=list)
    violations: List[InjectionRecord] = field(default_factory=list)
    #: Detection-latency histogram for DETECTED runs: power-of-two bucket
    #: (steps from injection to the fault state, rounded up) -> count.
    #: Deterministic -- a function of the injections alone, identical for
    #: any ``jobs``/backend -- but observational: never part of the
    #: bit-identical parity contract (see ``report_fingerprint``).
    latency_buckets: Dict[int, int] = field(default_factory=dict)
    #: What the supervision/journaling layer did (``None`` for plain
    #: serial runs with neither a journal nor a pool).  Never part of the
    #: bit-identical parity contract -- two runs with different retry
    #: histories still produce equal records, counts and summaries.
    resilience: Optional["ResilienceStats"] = None
    #: Sampled-campaign accounting (multifault campaigns): schedules the
    #: sampler gave up on after bounded resampling (a chosen site kept
    #: yielding no replacement values).  Always 0 for SEU campaigns;
    #: ``injections + discarded_samples`` equals the requested sample
    #: count, so dropped work is never silent.
    discarded_samples: int = 0

    @property
    def masked(self) -> int:
        return self.counts.get(FaultResult.MASKED, 0)

    @property
    def detected(self) -> int:
        return self.counts.get(FaultResult.DETECTED, 0)

    @property
    def silent(self) -> int:
        return self.counts.get(FaultResult.SILENT_CORRUPTION, 0)

    @property
    def coverage(self) -> float:
        """Fraction of injections that were masked or detected."""
        if not self.injections:
            return 1.0
        return (self.masked + self.detected) / self.injections

    def summary(self) -> str:
        parts = [f"{self.injections} injections"]
        for result in FaultResult:
            count = self.counts.get(result, 0)
            if count:
                parts.append(f"{result.value}: {count}")
        parts.append(f"coverage: {self.coverage:.4%}")
        return ", ".join(parts)


def _is_prefix(prefix: Sequence, full: Sequence) -> bool:
    if len(prefix) > len(full):
        return False
    return all(a == b for a, b in zip(prefix, full))


def classify(
    trace: Trace, reference: Trace, error_port: Optional[int] = None
) -> FaultResult:
    """Classify one faulty run against the reference output sequence.

    ``error_port`` enables the software-detection convention: a run that
    halts after announcing on the error port counts as DETECTED when the
    output produced *before* the announcement is a reference prefix.
    """
    if error_port is not None and trace.outcome is Outcome.HALTED:
        outputs = list(trace.outputs)
        announced = False
        while outputs and outputs[-1][0] == error_port:
            outputs.pop()
            announced = True
        if announced:
            if _is_prefix(outputs, reference.outputs):
                return FaultResult.DETECTED
            return FaultResult.SILENT_CORRUPTION
    if trace.outcome is Outcome.FAULT_DETECTED:
        if _is_prefix(trace.outputs, reference.outputs):
            return FaultResult.DETECTED
        return FaultResult.SILENT_CORRUPTION  # detected, but after deviating
    if trace.outcome is Outcome.HALTED:
        if len(trace.outputs) == len(reference.outputs) and \
                _is_prefix(trace.outputs, reference.outputs):
            return FaultResult.MASKED
        return FaultResult.SILENT_CORRUPTION
    if trace.outcome is Outcome.STUCK:
        return FaultResult.STUCK
    return FaultResult.TIMEOUT


def _tail_matches(
    reference_outputs: Sequence[Tuple[int, int]],
    produced: int,
    tail: Sequence[Tuple[int, int]],
) -> bool:
    """Does ``tail`` equal ``reference_outputs[produced:produced+len(tail)]``?

    Compared element-wise in place -- no slices, no list copies.
    """
    return all(
        reference_outputs[produced + index] == pair
        for index, pair in enumerate(tail)
    )


def classify_tail(
    trace: Trace,
    reference: Trace,
    produced: int,
    error_port: Optional[int] = None,
) -> FaultResult:
    """Zero-copy classification of a faulty run resumed mid-execution.

    ``produced`` is the number of reference outputs already emitted before
    the injection point; by construction they are an exact prefix of the
    reference, so only ``trace.outputs`` (the post-injection tail) needs
    comparing.  Equivalent to building the merged output sequence and
    calling :func:`classify`, without materializing it.
    """
    if error_port is not None and trace.outcome is Outcome.HALTED:
        # Software-detection convention (rare path): trailing error-port
        # pops may reach into the pre-injection prefix, so fall back to the
        # general classifier on the merged sequence.
        merged = Trace(
            trace.outcome,
            list(reference.outputs[:produced]) + list(trace.outputs),
            trace.steps,
        )
        return classify(merged, reference, error_port)
    reference_outputs = reference.outputs
    tail = trace.outputs
    if trace.outcome is Outcome.FAULT_DETECTED:
        if produced + len(tail) <= len(reference_outputs) and \
                _tail_matches(reference_outputs, produced, tail):
            return FaultResult.DETECTED
        return FaultResult.SILENT_CORRUPTION
    if trace.outcome is Outcome.HALTED:
        if produced + len(tail) == len(reference_outputs) and \
                _tail_matches(reference_outputs, produced, tail):
            return FaultResult.MASKED
        return FaultResult.SILENT_CORRUPTION
    if trace.outcome is Outcome.STUCK:
        return FaultResult.STUCK
    return FaultResult.TIMEOUT


class ReferenceRun:
    """The fault-free reference run, stored as checkpoints + replay.

    Instead of cloning the full machine state before every dynamic step
    (O(steps x state) memory), a clone is kept every
    ``checkpoint_interval`` steps and :meth:`state_at` reconstructs the
    pre-step state of *any* step by replaying at most
    ``checkpoint_interval - 1`` steps from the nearest checkpoint.  The
    semantics is deterministic (the reference run never consults the
    random source), so replayed states are equal to eager snapshots.
    """

    __slots__ = ("trace", "outputs_before", "checkpoints", "interval",
                 "oob_policy", "compiled")

    def __init__(
        self,
        trace: Trace,
        outputs_before: List[int],
        checkpoints: List[MachineState],
        interval: int,
        oob_policy: OobPolicy,
        compiled: Optional[CompiledExec] = None,
    ):
        self.trace = trace
        #: Per step, the number of outputs emitted before it (needed to
        #: rebuild a faulty run's full output sequence).
        self.outputs_before = outputs_before
        self.checkpoints = checkpoints
        self.interval = interval
        self.oob_policy = oob_policy
        #: The shared compilation of the program, when the campaign runs on
        #: the compiled backend (never pickled -- each worker process
        #: rebuilds its reference, compilation included).
        self.compiled = compiled

    @property
    def num_steps(self) -> int:
        return self.trace.steps

    def state_at(self, step_index: int) -> MachineState:
        """A fresh machine state as it was *before* step ``step_index``.

        The caller owns the returned state and may mutate it freely.
        """
        if not 0 <= step_index < self.trace.steps:
            raise IndexError(
                f"step {step_index} outside the reference run "
                f"(0..{self.trace.steps - 1})"
            )
        interval = self.interval
        state = self.checkpoints[step_index // interval].clone()
        oob_policy = self.oob_policy
        for _ in range(step_index % interval):
            _semantics_step(state, oob_policy)
        return state


def _reference_run(program: Program, config: CampaignConfig) -> ReferenceRun:
    """Fault-free reference run with sparse checkpoints."""
    state = program.boot()
    oob_policy = config.oob_policy
    interval = max(1, config.checkpoint_interval)
    compiled = None
    if config.backend in ("compiled", "vector"):
        # The vector backend shares the compilation: its reference run is
        # identical, and its per-lane fallbacks run compiled.
        compiled = compiled_for(state, oob_policy)
    checkpoints: List[MachineState] = [state.clone()]
    outputs: List[Tuple[int, int]] = []
    outputs_before: List[int] = []
    steps = 0
    max_steps = config.max_steps
    running = Status.RUNNING
    if compiled is not None:
        # Compiled reference loop: one unfused closure per whole
        # instruction (fetch + execute).  ``outputs_before`` still needs a
        # per-small-step entry, and both of an instruction's steps see the
        # same pre-instruction output count (only the execute sub-step
        # emits, and its outputs land after it).  The closure path is
        # skipped whenever an instruction would straddle a checkpoint
        # boundary, the step cap, or a pending instruction register, so
        # checkpoints land at exactly the same step indices as under the
        # interpreter.
        base = compiled.base
        regs = state.regs._regs
        emit = outputs.append
        rand = lambda: 0  # the reference semantics never consults rand
        while steps < max_steps and state.status is running:
            closure = None
            if (state.ir is None and max_steps - steps >= 2
                    and interval - steps % interval >= 2):
                pcg = regs[PC_G][1]
                if pcg == regs[PC_B][1]:
                    closure = base.get(pcg)
            if closure is not None:
                count = len(outputs)
                outputs_before.append(count)
                outputs_before.append(count)
                closure(state, regs, emit, rand)
                steps += 2
            else:
                outputs_before.append(len(outputs))
                result = _semantics_step(state, oob_policy)
                if result.outputs:
                    outputs.extend(result.outputs)
                steps += 1
            if steps % interval == 0 and state.status is running:
                checkpoints.append(state.clone())
    else:
        while steps < max_steps and state.status is running:
            outputs_before.append(len(outputs))
            result = _semantics_step(state, oob_policy)
            if result.outputs:
                outputs.extend(result.outputs)
            steps += 1
            if steps % interval == 0 and state.status is running:
                checkpoints.append(state.clone())
    if state.status is Status.HALTED:
        outcome = Outcome.HALTED
    elif state.status is Status.FAULT_DETECTED:
        outcome = Outcome.FAULT_DETECTED
    else:
        outcome = Outcome.RUNNING
    trace = Trace(outcome, outputs, steps)
    return ReferenceRun(trace, outputs_before, checkpoints, interval,
                        oob_policy, compiled)


def _injection_steps(total: int, config: CampaignConfig) -> List[int]:
    """The dynamic steps a campaign injects at, evenly sampled.

    Candidates are every ``step_stride``-th step; when
    ``max_injection_steps`` caps them the cap is met exactly (when enough
    candidates exist) with evenly spaced picks that always include the
    first candidate and the last -- the tail of long runs is never
    skipped.
    """
    candidates = range(0, total, config.step_stride)
    cap = config.max_injection_steps
    count = len(candidates)
    if cap is None or count <= cap:
        return list(candidates)
    if cap <= 0:
        return []
    if cap == 1:
        return [candidates[0]]
    span = (count - 1) / (cap - 1)
    return [candidates[round(index * span)] for index in range(cap)]


def _step_rng(config: CampaignConfig, step_index: int) -> Optional[random.Random]:
    """The per-injection-step RNG.

    Seeded from ``(seed, step_index)`` rather than shared across the
    campaign, so any partition of the steps across workers draws exactly
    the same values as the serial loop -- the determinism that makes
    ``jobs=N`` bit-identical to ``jobs=1``.  (String seeding hashes with
    SHA-512, stable across processes and interpreter runs.)
    """
    if config.seed is None:
        return None
    return random.Random(f"{config.seed}:{step_index}")


#: One faulty run, as produced by a worker: (fault, classification,
#: post-injection outputs, steps from injection to termination).
StepOutcome = Tuple[Fault, FaultResult, Tuple[Tuple[int, int], ...], int]


def _enumerate_step_faults(
    program: Program,
    config: CampaignConfig,
    base: MachineState,
    step_index: int,
    rng: Optional[random.Random],
) -> List[Fault]:
    """The fault list of one injection step, in deterministic order.

    Consumes the per-step RNG exactly as the historical inline loop did
    (site sampling first, then one ``representative_values`` draw per
    site), so every backend -- and every jobs/journal combination --
    enumerates byte-identical campaigns.
    """
    sites = list(fault_sites(base))
    if config.max_sites_per_step is not None \
            and len(sites) > config.max_sites_per_step:
        sampler = rng if rng is not None else random.Random(step_index)
        sites = sampler.sample(sites, config.max_sites_per_step)
    skip_ineffective = config.skip_ineffective
    faults: List[Fault] = []
    for site in sites:
        values = representative_values(base, site, program, rng)
        if config.max_values_per_site is not None:
            values = values[: config.max_values_per_site]
        for value in values:
            fault = with_value(site, value)
            if skip_ineffective and not is_effective(base, fault):
                continue
            faults.append(fault)
    return faults


def _run_faults(
    program: Program,
    config: CampaignConfig,
    reference: ReferenceRun,
    budget: int,
    step_index: int,
    base: MachineState,
    faults: List[Fault],
) -> List[StepOutcome]:
    """Execute ``faults`` against ``base`` on the configured backend.

    The unpruned execution core: the vector batch when configured (with
    scalar fallthrough), else the compiled/interpreter loop.  The pruning
    engine calls this on class representatives and unclassified faults;
    ``_run_step`` calls it on the whole fault list when pruning is off.
    """
    if config.backend == "vector" and faults:
        from repro.injection.batch import run_step_batch

        outcomes = run_step_batch(program, config, reference, budget,
                                  step_index, base, faults)
        if outcomes is not None:
            return outcomes
        # Unvectorizable step (exotic state or program): run it scalar.
    produced = reference.outputs_before[step_index]
    oob_policy = config.oob_policy
    error_port = config.error_port
    # All faulty states are clones of ``base`` (zaps never add or remove
    # registers), so one supports() check covers the whole step.
    compiled = reference.compiled
    if compiled is not None and not compiled.supports(base):
        compiled = None
    outcomes = []
    for fault in faults:
        faulty = base.clone()
        apply_fault(faulty, fault)
        if compiled is not None:
            trace = run_compiled(faulty, compiled, max_steps=budget)
        else:
            trace = Machine(faulty, oob_policy=oob_policy,
                            backend="step").run(max_steps=budget)
        result = classify_tail(trace, reference.trace, produced,
                               error_port)
        outcomes.append((fault, result, tuple(trace.outputs),
                         trace.steps))
    return outcomes


def _run_step(
    program: Program,
    config: CampaignConfig,
    reference: ReferenceRun,
    budget: int,
    step_index: int,
) -> List[StepOutcome]:
    """Every injection at one dynamic step, in deterministic order."""
    base = reference.state_at(step_index)
    rng = _step_rng(config, step_index)
    faults = _enumerate_step_faults(program, config, base, step_index, rng)
    if config.prune and faults:
        from repro.injection.prune import run_step_pruned

        outcomes = run_step_pruned(program, config, reference, budget,
                                   step_index, base, faults)
        if outcomes is not None:
            return outcomes
        # Unanalyzable step or program: run it unpruned.
    return _run_faults(program, config, reference, budget, step_index,
                       base, faults)


def _latency_bucket(latency: int) -> int:
    """Power-of-two ceiling bucket for a detection latency in steps."""
    return 1 << (max(1, latency) - 1).bit_length()


def _campaign_instruments(registry=None):
    """Resolve the campaign's registry metrics once, before the merge loop.

    Returns ``(injections_counter, per-result counters, latency
    histogram)``; metric lookups stay off the per-injection hot path.
    """
    reg = registry if registry is not None else get_registry()
    return (
        reg.counter("campaign_injections_total"),
        {result: reg.counter("campaign_results_total", result=result.value)
         for result in FaultResult},
        reg.histogram("campaign_detection_latency_steps",
                      buckets=STEPS_BUCKETS),
    )


def _merge_step(
    report: CampaignReport,
    reference: ReferenceRun,
    config: CampaignConfig,
    step_index: int,
    outcomes: List[StepOutcome],
    instruments=None,
) -> None:
    """Fold one step's outcomes into the report (deterministic order)."""
    produced = reference.outputs_before[step_index]
    counts = report.counts
    latency_buckets = report.latency_buckets
    if instruments is None:
        instruments = _campaign_instruments()
    injections_counter, result_counters, latency_hist = instruments
    for fault, result, tail, latency in outcomes:
        report.injections += 1
        counts[result] = counts.get(result, 0) + 1
        injections_counter.inc()
        result_counters[result].inc()
        if result is FaultResult.DETECTED and latency >= 0:
            bucket = _latency_bucket(latency)
            latency_buckets[bucket] = latency_buckets.get(bucket, 0) + 1
            latency_hist.observe(latency)
        is_violation = result in _VIOLATIONS
        if config.keep_records or is_violation:
            # The record carries the *full* output sequence; the prefix is
            # materialized only here, never on the classification hot path.
            full_outputs = tuple(reference.trace.outputs[:produced]) + tail
            record = InjectionRecord(step_index, fault, result, full_outputs,
                                     latency=latency)
            if config.keep_records:
                report.records.append(record)
            if is_violation:
                report.violations.append(record)


def resolve_backend_config(
    program: Program,
    config: CampaignConfig,
    backend: Optional[str] = None,
) -> CampaignConfig:
    """The config a campaign actually runs under, backend resolved.

    ``backend`` overrides ``config.backend``; ``"vector"`` downgrades to
    ``"compiled"`` when numpy is unavailable and ``"compiled"`` to
    ``"step"`` when the program cannot be compiled.  Both the in-process
    engine and the shard coordinator resolve *before* shipping the config
    to workers, so every process of a distributed campaign runs the same
    engine.
    """
    resolved = require_backend(
        backend if backend is not None else config.backend)
    if resolved == "vector" and not vector_available():
        resolved = "compiled"
    if resolved == "compiled" \
            and compiled_for(program.boot(), config.oob_policy) is None:
        resolved = "step"
    if resolved != config.backend:
        config = _dc_replace(config, backend=resolved)
    return config


def run_campaign(
    program: Program,
    config: Optional[CampaignConfig] = None,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    resilience: "Optional[ResilienceConfig]" = None,
    chaos: "Optional[ChaosSpec]" = None,
    progress: bool = False,
    on_step=None,
) -> CampaignReport:
    """Run a SEU campaign over ``program`` and classify every faulty run.

    ``jobs`` overrides ``config.jobs``; any value > 1 fans the injection
    steps out across a *supervised* process pool
    (:mod:`repro.injection.resilience`: per-chunk deadlines, bounded
    retries, serial fallback) and yields a report identical to the serial
    engine's for the same seed.  ``backend`` overrides ``config.backend``
    (any name in :data:`repro.exec.BACKENDS`); ``"vector"`` silently
    resolves to ``"compiled"`` when numpy is unavailable, ``"compiled"``
    to ``"step"`` when the program cannot be compiled, and the resolved
    choice is recorded in the config shipped to workers so every process
    runs the same engine.

    ``journal_path`` enables the durable result journal
    (:mod:`repro.injection.journal`): every completed injection step is
    appended (and group-committed to disk) before it is merged, and
    ``resume=True`` skips steps an existing (matching) journal already
    holds -- the reconstructed report is bit-identical to an
    uninterrupted run.  The journal is flushed and closed even when the
    campaign is interrupted (KeyboardInterrupt included), so partial
    progress survives.

    ``resilience`` tunes supervision; ``chaos`` injects infrastructure
    faults into the workers (the chaos harness's hook, not for production
    use).  When any of journal/resilience/chaos is active the report
    carries a :class:`~repro.injection.resilience.ResilienceStats` in
    ``report.resilience``.

    ``progress=True`` prints rate-limited per-step heartbeats with
    throughput and ETA to stderr (``--progress`` on the CLI).
    ``on_step`` is an optional ``callback(done, total)`` invoked after
    every merged injection step (the campaign service's live job
    progress).  All observability here -- progress, metrics, events --
    is purely observational: the report is bit-identical with or
    without it.
    """
    config = config or CampaignConfig()
    if jobs is None:
        jobs = config.jobs
    config = resolve_backend_config(program, config, backend)
    resolved = config.backend

    with phase_timer("campaign.reference"):
        reference = _reference_run(program, config)
    if reference.trace.outcome is not Outcome.HALTED:
        raise ValueError(
            f"reference run did not halt ({reference.trace.outcome}); "
            "campaigns need terminating programs"
        )
    budget = reference.trace.steps + config.step_slack
    steps = _injection_steps(reference.num_steps, config)
    report = CampaignReport(reference=reference.trace)

    parallel = jobs is not None and jobs > 1 and len(steps) > 1
    supervised = parallel or resilience is not None or chaos is not None
    journal = None
    #: Raw journal payloads awaiting decode (the "=" tail sentinel needs
    #: the reference run, so expansion happens at merge time).
    done_steps: Dict[int, List] = {}
    stats = None
    if supervised or journal_path is not None:
        from repro.injection.resilience import ResilienceStats

        stats = ResilienceStats()
        report.resilience = stats
    if journal_path is not None:
        from repro.injection import journal as _journal

        prog_digest = _journal.program_digest(program)
        conf_digest = _journal.config_digest(config)
        if resume:
            journal, load = _journal.resume_journal(
                journal_path, prog_digest, conf_digest)
            wanted = set(steps)
            done_steps = {step: outcomes
                          for step, outcomes in load.steps.items()
                          if step in wanted}
            stats.resumed_steps = len(done_steps)
            stats.corrupt_journal_lines = load.corrupt_lines
        else:
            journal = _journal.CampaignJournal.fresh(
                journal_path, prog_digest, conf_digest)
    if journal_path is not None and config.prune:
        # The memo sidecar persists executed outcomes across campaigns;
        # loading it is pure acceleration (a missing or mismatched file
        # loads as empty, never an error).
        from repro.injection import prune as _prune

        _prune.load_memo(journal_path + ".memo", program, config)

    remaining = [step for step in steps if step not in done_steps]
    registry = get_registry()
    instruments = _campaign_instruments(registry)
    steps_counter = registry.counter("campaign_steps_total")
    _emit_event("campaign-start", steps=len(steps), resumed=len(done_steps),
                jobs=jobs, backend=resolved, pruned=config.prune,
                reference_steps=reference.trace.steps)
    reporter = ProgressReporter(len(steps), label="campaign") \
        if progress else None
    injection_timer = phase_timer("campaign.injections", registry)
    injection_timer.__enter__()
    try:
        if supervised and len(remaining) > 1:
            from repro.injection.resilience import run_steps_supervised

            producer = run_steps_supervised(
                program, config, remaining, jobs, resilience, stats,
                reference=reference, chaos=chaos)
        else:
            def producer_serial():
                for step_index in remaining:
                    yield step_index, _run_step(
                        program, config, reference, budget, step_index)
            producer = producer_serial()
        def _ref_tail(step_index: int) -> Tuple[Tuple[int, int], ...]:
            # The fault-free outputs after the injection point: what every
            # MASKED run reproduces, and what the journal's "=" tail
            # sentinel expands to.
            produced = reference.outputs_before[step_index]
            return tuple(reference.trace.outputs[produced:])

        merged = 0
        total = len(steps)
        for step_index in steps:
            raw_outcomes = done_steps.get(step_index)
            if raw_outcomes is not None:
                outcomes = _journal.decode_step(raw_outcomes,
                                                _ref_tail(step_index))
            else:
                produced_step, outcomes = next(producer)
                if produced_step != step_index:  # pragma: no cover
                    raise RuntimeError(
                        f"campaign engine yielded step {produced_step} "
                        f"out of order (expected {step_index})")
                if journal is not None:
                    journal.append_step(step_index, outcomes,
                                        _ref_tail(step_index))
                    stats.journaled_steps += 1
            _merge_step(report, reference, config, step_index, outcomes,
                        instruments)
            steps_counter.inc()
            merged += 1
            if reporter is not None:
                reporter.advance()
            if on_step is not None:
                on_step(merged, total)
    finally:
        # Interrupts and worker failures must not lose completed work:
        # everything appended so far is flushed to disk before the
        # exception propagates.
        if journal is not None:
            journal.close()
        injection_timer.__exit__(None, None, None)
        if reporter is not None:
            reporter.finish()
    if journal_path is not None and config.prune:
        from repro.injection import prune as _prune

        _prune.save_memo(journal_path + ".memo", program, config)
    if stats is not None:
        # Supervision counters (retries, crashes, rebuilds) are recorded
        # live by the supervisor; only the journal-side tallies -- known
        # just once, here -- are folded into the registry.
        registry.counter("campaign_resumed_steps_total").inc(
            stats.resumed_steps)
        registry.counter("campaign_journaled_steps_total").inc(
            stats.journaled_steps)
        registry.counter("campaign_corrupt_journal_lines_total").inc(
            stats.corrupt_journal_lines)
    _emit_event("campaign-end", injections=report.injections,
                coverage=round(report.coverage, 6),
                violations=len(report.violations))
    return report
