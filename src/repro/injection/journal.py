"""Durable result journaling for crash-safe campaigns.

A campaign journal is an append-only JSONL file recording every completed
injection step's outcomes, so a campaign interrupted by a crash, an OOM
kill, or Ctrl-C can be resumed with ``run_campaign(..., journal_path=...,
resume=True)`` (CLI: ``talft campaign --journal PATH --resume``) without
redoing finished work.  The design follows write-ahead-log discipline:

* **Append-only JSONL.**  One line per completed injection step, written
  and flushed *before* the step is merged into the report.  Durability
  uses group commit: ``fsync`` runs at most every
  ``GROUP_COMMIT_SECONDS`` (and always on close), so a hard crash loses
  at most the last commit window of completed steps -- which a resume
  simply recomputes.  Per-step fsync would cost ~25% of campaign
  throughput for no correctness benefit.
* **Per-line checksums.**  Every line is ``{"crc": <hex>, "d": <payload>}``
  with the CRC-32 of the canonical payload encoding; torn writes (a
  truncated tail after a crash) and bit-rot are detected line-by-line and
  skipped with a warning instead of poisoning the resume.
* **Delta-encoded output tails.**  A faulty run's recorded outputs are
  the tail it produced after the injection point; for MASKED runs -- the
  overwhelming majority on well-typed code -- that tail is byte-identical
  to the fault-free reference's.  Those encode as the one-character
  sentinel ``"="`` and are re-expanded against the reference at decode
  time, keeping journal lines (and their CRC/encode cost) small.
* **Identity header.**  The first line carries a digest of the program
  (code memory plus the typing surfaces the value strategies consult) and
  a digest of the outcome-relevant :class:`CampaignConfig` fields.  A
  journal written for a different program or config is *rejected*
  (:class:`JournalMismatch`) rather than silently blended into the wrong
  campaign.  Fields that cannot change outcomes (``jobs``, ``backend``,
  ``checkpoint_interval``, ``keep_records``, ``prune``, ``prune_audit``)
  are excluded, so a journal written by ``--jobs 8 --backend step``
  resumes under ``--jobs 1 --backend compiled`` -- and a pruned journal
  resumes under ``--no-prune`` -- and vice versa.

Because per-step outcomes are deterministic given ``(seed, step_index)``
(see :mod:`repro.injection.campaign`), a report reconstructed from
journaled steps plus freshly computed remaining steps is **bit-identical**
to an uninterrupted run -- the property the chaos harness
(:mod:`repro.injection.chaos`) asserts under infrastructure faults.
"""

from __future__ import annotations

import json
import os
import time
import warnings
import weakref
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO, Tuple

from repro.core.errors import ReproError
from repro.core.faults import Fault, QueueZapAddress, QueueZapValue, RegZap
from repro.injection.campaign import (
    CampaignConfig,
    FaultResult,
    StepOutcome,
)
from repro.program import Program

_MAGIC = "talft-campaign-journal"
_VERSION = 1

#: Group-commit window: appends are flushed immediately but ``fsync`` runs
#: at most this often (plus on close), bounding both the durability gap
#: and the syscall overhead.  A crash forfeits at most this much completed
#: work; resume recomputes it.
GROUP_COMMIT_SECONDS = 0.1


class JournalMismatch(ReproError):
    """The journal on disk belongs to a different program or campaign
    config and must not seed a resume."""


# ---------------------------------------------------------------------------
# Identity digests
# ---------------------------------------------------------------------------


#: ``program_digest`` memo: hashing a kernel's full code memory costs
#: milliseconds, and campaign loops digest the same Program object every
#: run.  Programs are treated as immutable once built, so identity
#: caching is sound; keyed by ``id()`` (Program is an unhashable
#: dataclass) with a weakref finalizer evicting dead entries so a
#: recycled id can never alias a stale digest.
_PROGRAM_DIGESTS: Dict[int, str] = {}


def program_digest(program: Program) -> str:
    """A content digest of everything injection outcomes depend on.

    Code memory drives execution; the label-type and data-segment
    *addresses* feed :func:`repro.injection.values.representative_values`
    (code/data replacement targets).  Instructions are frozen dataclasses
    with deterministic reprs, so hashing the sorted item reprs is stable
    across processes and interpreter runs.
    """
    import hashlib

    key = id(program)
    cached = _PROGRAM_DIGESTS.get(key)
    if cached is not None:
        return cached
    payload = repr((
        sorted(program.code.items(), key=lambda item: item[0]),
        sorted(program.data_psi.items()),
        sorted(program.label_types.keys()),
    ))
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    _PROGRAM_DIGESTS[key] = digest
    weakref.finalize(program, _PROGRAM_DIGESTS.pop, key, None)
    return digest


def config_digest(config: CampaignConfig) -> str:
    """A digest of the :class:`CampaignConfig` fields that affect outcomes.

    Excluded on purpose: ``jobs`` (partitioning never changes results),
    ``backend`` (the compiled backend is observationally identical),
    ``checkpoint_interval`` (replayed states equal eager snapshots),
    ``keep_records`` (records are rebuilt at merge time from journaled
    outcomes) and ``prune``/``prune_audit`` (pruning replicates exact
    outcomes and the audit only verifies, so pruned and unpruned runs
    share journal identity and resume each other freely).
    """
    import hashlib

    payload = repr((
        config.step_slack,
        config.max_steps,
        config.step_stride,
        config.max_injection_steps,
        config.oob_policy.value,
        config.seed,
        config.skip_ineffective,
        config.max_values_per_site,
        config.max_sites_per_step,
        config.error_port,
    ))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Outcome codec (lossless: decoded tuples compare equal to fresh ones)
# ---------------------------------------------------------------------------

_FAULT_TAGS = {"R": RegZap, "QA": QueueZapAddress, "QV": QueueZapValue}


def _fault_to_json(fault: Fault) -> List:
    if isinstance(fault, RegZap):
        return ["R", fault.reg, fault.new_value]
    if isinstance(fault, QueueZapAddress):
        return ["QA", fault.index, fault.new_value]
    if isinstance(fault, QueueZapValue):
        return ["QV", fault.index, fault.new_value]
    raise ValueError(f"unknown fault descriptor {fault!r}")


def _fault_from_json(data: List) -> Fault:
    tag, first, second = data
    return _FAULT_TAGS[tag](first, second)


def _outcome_to_json(outcome: StepOutcome,
                     ref_tail: Optional[Tuple[Tuple[int, int], ...]] = None,
                     ) -> List:
    """Encode one outcome; a tail equal to ``ref_tail`` (the fault-free
    reference's outputs after the injection point, i.e. every MASKED run)
    collapses to the ``"="`` sentinel."""
    fault, result, outputs, latency = outcome
    if ref_tail is not None and outputs == ref_tail:
        encoded_outputs: object = "="
    else:
        encoded_outputs = [[address, value] for address, value in outputs]
    return [_fault_to_json(fault), result.value, encoded_outputs, latency]


def _outcome_from_json(data: List,
                       ref_tail: Optional[Tuple[Tuple[int, int], ...]] = None,
                       ) -> StepOutcome:
    fault, result, outputs, latency = data
    if outputs == "=":
        if ref_tail is None:
            raise ValueError(
                "journal outcome uses the reference-tail sentinel but no "
                "reference tail was supplied")
        decoded = ref_tail
    else:
        decoded = tuple((address, value) for address, value in outputs)
    return (_fault_from_json(fault), FaultResult(result), decoded,
            int(latency))


def decode_step(raw_outcomes: List,
                ref_tail: Tuple[Tuple[int, int], ...]) -> List[StepOutcome]:
    """Decode one journaled step's raw ``out`` payload into the exact
    tuples the campaign engine produces."""
    return [_outcome_from_json(data, ref_tail) for data in raw_outcomes]


def encode_step(outcomes: List[StepOutcome],
                ref_tail: Optional[Tuple[Tuple[int, int], ...]] = None,
                ) -> List:
    """Encode one step's outcomes as the raw ``out`` payload
    :func:`decode_step` accepts -- the journal line format doubling as
    the shard worker protocol's wire format, so streamed shard results
    and journaled steps share one codec (``"="`` tail sentinel included).
    """
    return [_outcome_to_json(outcome, ref_tail) for outcome in outcomes]


# ---------------------------------------------------------------------------
# Line framing
# ---------------------------------------------------------------------------


def _encode_payload(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _frame(payload: object) -> str:
    encoded = _encode_payload(payload)
    crc = zlib.crc32(encoded.encode()) & 0xFFFFFFFF
    return f'{{"crc":"{crc:08x}","d":{encoded}}}\n'


def _unframe(line: str) -> Optional[object]:
    """Decode one journal line, or ``None`` when the line fails parsing or
    its checksum (torn tail writes, bit flips)."""
    line = line.strip()
    if not line:
        return None
    try:
        wrapper = json.loads(line)
        crc = int(wrapper["crc"], 16)
        payload = wrapper["d"]
    except (ValueError, KeyError, TypeError):
        return None
    if zlib.crc32(_encode_payload(payload).encode()) & 0xFFFFFFFF != crc:
        return None
    return payload


def _header_payload(prog_digest: str, conf_digest: str) -> Dict:
    return {"magic": _MAGIC, "version": _VERSION,
            "program": prog_digest, "config": conf_digest}


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


class CampaignJournal:
    """Append-only writer for a campaign's per-step outcome journal.

    Use :meth:`fresh` to start (or overwrite) a journal and
    :func:`resume_journal` to continue one.  With ``fsync=True`` (the
    default) appended steps become durable within
    :data:`GROUP_COMMIT_SECONDS` (group commit) and unconditionally on
    :meth:`close`; the crash-safety contract is "at most one commit
    window of merged steps can need recomputing".
    """

    def __init__(self, path: str, handle: TextIO, fsync: bool = True):
        from repro.observe import get_registry

        self.path = path
        self._handle = handle
        self._fsync = fsync
        self._synced_at = float("-inf")
        self.appended_steps = 0
        registry = get_registry()
        self._appends_counter = registry.counter("journal_appends_total")
        self._fsyncs_counter = registry.counter("journal_fsyncs_total")
        self._fsync_seconds = registry.histogram("journal_fsync_seconds")

    @classmethod
    def fresh(cls, path: str, prog_digest: str, conf_digest: str,
              fsync: bool = True) -> "CampaignJournal":
        """A new journal at ``path`` (truncating any existing file)."""
        handle = open(path, "w")
        journal = cls(path, handle, fsync)
        journal._write_line(_frame(_header_payload(prog_digest, conf_digest)))
        return journal

    def append_step(self, step_index: int, outcomes: List[StepOutcome],
                    ref_tail: Optional[Tuple[Tuple[int, int], ...]] = None,
                    ) -> None:
        """Durably record one completed injection step.  ``ref_tail`` (the
        reference outputs after this step) enables the ``"="`` tail
        compression; the reader must supply the same tail to
        :func:`decode_step`."""
        payload = {"step": step_index,
                   "out": [_outcome_to_json(o, ref_tail) for o in outcomes]}
        self._write_line(_frame(payload))
        self.appended_steps += 1
        self._appends_counter.inc()

    def append_raw(self, step_index: int, raw_outcomes: List) -> None:
        """Durably record one step from its already-encoded ``out`` payload
        (:func:`encode_step`'s output) -- the shard coordinator journals
        wire payloads verbatim, no decode/re-encode round trip."""
        self._write_line(_frame({"step": step_index, "out": raw_outcomes}))
        self.appended_steps += 1
        self._appends_counter.inc()

    def _timed_fsync(self) -> None:
        started = time.perf_counter()
        os.fsync(self._handle.fileno())
        self._fsync_seconds.observe(time.perf_counter() - started)
        self._fsyncs_counter.inc()

    def _write_line(self, line: str) -> None:
        self._handle.write(line)
        self._handle.flush()
        if self._fsync:
            now = time.monotonic()
            if now - self._synced_at >= GROUP_COMMIT_SECONDS:
                self._timed_fsync()
                self._synced_at = now

    def flush(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._timed_fsync()

    def close(self) -> None:
        if not self._handle.closed:
            self.flush()
            self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Loader / resume
# ---------------------------------------------------------------------------


@dataclass
class JournalLoad:
    """The usable content of a journal file."""

    #: Completed steps as *raw* ``out`` payloads; decode with
    #: :func:`decode_step` once the reference tail for the step is known
    #: (the ``"="`` sentinel needs it).
    steps: Dict[int, List] = field(default_factory=dict)
    #: Lines dropped for failed checksums / unparseable content.
    corrupt_lines: int = 0
    #: Whether a valid header was found at all.
    has_header: bool = False


def read_journal_header(path: str) -> Optional[Dict]:
    """The first valid header payload of a journal, or ``None``.

    Lets shard tooling discover a journal's identity digests without
    knowing them up front (:func:`load_journal` *verifies* against
    expected digests; this *reads* them).  Corrupt leading lines are
    skipped exactly as the loader does; a version mismatch raises
    :class:`JournalMismatch`.
    """
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        for line in handle:
            payload = _unframe(line)
            if payload is None:
                continue
            if isinstance(payload, dict) and payload.get("magic") == _MAGIC:
                if payload.get("version") != _VERSION:
                    raise JournalMismatch(
                        f"journal {path} has version "
                        f"{payload.get('version')}, expected {_VERSION}")
                return payload
            return None  # first valid line is not a header
    return None


def load_journal(path: str, prog_digest: str, conf_digest: str) -> JournalLoad:
    """Read every valid step from a journal, verifying its identity.

    Raises :class:`JournalMismatch` when the header identifies a different
    program or campaign config.  Corrupt lines -- including the torn tail
    line a crash mid-append leaves behind -- are skipped with a
    :class:`UserWarning` and counted, never fatal.  A missing file loads
    as empty.
    """
    load = JournalLoad()
    if not os.path.exists(path):
        return load
    with open(path) as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        payload = _unframe(line)
        if payload is None:
            if line.strip():
                load.corrupt_lines += 1
            continue
        if not load.has_header:
            # The first valid line must be the header.
            if not (isinstance(payload, dict) and
                    payload.get("magic") == _MAGIC):
                load.corrupt_lines += 1
                continue
            if payload.get("version") != _VERSION:
                raise JournalMismatch(
                    f"journal {path} has version {payload.get('version')}, "
                    f"expected {_VERSION}")
            if payload.get("program") != prog_digest:
                raise JournalMismatch(
                    f"journal {path} was written for a different program "
                    f"(digest {payload.get('program')}, expected "
                    f"{prog_digest})")
            if payload.get("config") != conf_digest:
                raise JournalMismatch(
                    f"journal {path} was written under a different campaign "
                    f"config (digest {payload.get('config')}, expected "
                    f"{conf_digest}); pass a matching config or start a "
                    "fresh journal")
            load.has_header = True
            continue
        try:
            step_index = int(payload["step"])
            raw_outcomes = payload["out"]
            if not isinstance(raw_outcomes, list):
                raise TypeError("out must be a list")
        except (KeyError, TypeError, ValueError):
            load.corrupt_lines += 1
            continue
        load.steps[step_index] = raw_outcomes
    if load.corrupt_lines:
        warnings.warn(
            f"campaign journal {path}: skipped {load.corrupt_lines} corrupt "
            "line(s) (failed checksum or truncated write); the affected "
            "steps will be recomputed",
            UserWarning,
            stacklevel=2,
        )
    return load


def resume_journal(
    path: str,
    prog_digest: str,
    conf_digest: str,
    fsync: bool = True,
) -> Tuple[CampaignJournal, JournalLoad]:
    """Open ``path`` for resuming: load its valid steps, then rewrite it
    compacted (header + valid step lines only) and return an open
    append-mode writer.

    The rewrite matters after a crash: a torn half-line at the tail would
    otherwise concatenate with the next append and corrupt *that* record
    too.  Rewriting through a temp file + atomic rename keeps the journal
    crash-safe even if this resume is itself interrupted.  A missing file
    resumes as a fresh journal.
    """
    load = load_journal(path, prog_digest, conf_digest)
    temp_path = path + ".tmp"
    with open(temp_path, "w") as handle:
        handle.write(_frame(_header_payload(prog_digest, conf_digest)))
        for step_index in sorted(load.steps):
            # Raw payloads rewrite verbatim; sentinels stay symbolic.
            handle.write(_frame({
                "step": step_index,
                "out": load.steps[step_index],
            }))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, path)
    handle = open(path, "a")
    return CampaignJournal(path, handle, fsync), load
