"""Batch injection driver: one campaign step as a vectorized lane batch.

:func:`run_step_batch` is the vector backend's twin of the scalar loop in
:func:`repro.injection.campaign._run_step`: given the already-enumerated
fault list of one injection step, it builds a :class:`~repro.exec.vector.
LaneBatch` (one lane per fault), walks the reference schedule in lockstep
and settles every lane into exactly the ``(fault, result, outputs, steps)``
tuple the scalar engines would produce:

* **Detected lanes** (``fetch-fail``, store/branch protocol checks,
  out-of-bounds traps) are settled from reference slices alone -- the
  lockstep invariant guarantees their output tail equals the reference
  outputs emitted between injection and detection, and the latency is the
  step distance.
* **Halted lanes** reached the reference's ``halt`` with an identical
  output history: MASKED, with the full reference tail.
* **Fallback lanes** (control-flow divergence, deviating emissions,
  values outside the vector range, batch cutoff) are materialized as
  exact scalar states and finished on the compiled backend (or the
  interpreter), then classified by the same
  :func:`~repro.injection.campaign.classify_tail` as the scalar loop --
  exactness by construction, at scalar speed for only those lanes.

The function returns ``None`` whenever the program or state resists
vectorization (no numpy, unschedulable program, exotic register bank);
the caller falls through to the scalar loop, so ``backend="vector"``
never changes a report, only its speed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.faults import (
    Fault,
    QueueZapAddress,
    QueueZapValue,
    RegZap,
    apply_fault,
)
from repro.core.machine import Machine, Outcome, Trace
from repro.core.registers import PC_B, PC_G
from repro.core.state import MachineState
from repro.exec import run_compiled
from repro.exec.vector import (
    FALLBACK_REASONS,
    LaneBatch,
    VMAX,
    VectorUnsupported,
    schedule_for,
    vector_available,
)
from repro.observe import get_registry

#: Retire the whole batch to the scalar fallback once this few lanes are
#: active (at a fetch boundary): full-width numpy ops on a nearly-empty
#: batch cost more than finishing the stragglers scalar.  Small batches
#: keep a proportional cutoff so tests still exercise the vector path.
CUTOFF_LANES = 24


def _screen_reason(fault: Fault, reg_index, queue_len: int) -> Optional[str]:
    """Why ``fault`` cannot be applied as an int64 array poke, or ``None``
    when it can.  The reason labels the ``vector_scalar_screened_total``
    counter, so ``--metrics`` distinguishes oversized replacement values
    from sites outside the lane layout."""
    if abs(fault.new_value) > VMAX:
        return "value-range"
    if isinstance(fault, RegZap):
        return None if fault.reg in reg_index else "site"
    if isinstance(fault, (QueueZapAddress, QueueZapValue)):
        return None if 0 <= fault.index < queue_len else "site"
    return "site"


def run_step_batch(
    program,
    config,
    reference,
    budget: int,
    step_index: int,
    base: MachineState,
    faults: List[Fault],
) -> Optional[List]:
    """All of one injection step's faulty runs, stepped in lockstep.

    Returns the step's outcomes in fault order -- element-for-element
    equal to the scalar loop's -- or ``None`` when the step cannot be
    vectorized and the caller must run it scalar.
    """
    from repro.injection.campaign import FaultResult, classify_tail

    if not vector_available() or not faults:
        return None
    ref_trace = reference.trace
    if ref_trace.outcome is not Outcome.HALTED:
        return None
    schedule = schedule_for(program.boot(), config.oob_policy,
                            ref_trace.steps)
    if schedule is None or schedule.steps != ref_trace.steps:
        return None
    # Sanity-pin the base state to the schedule: the injection point must
    # sit exactly where the reference replay says it does.  (These always
    # hold for states produced by ReferenceRun.state_at; a mismatch means
    # the caller handed us something else, so decline rather than guess.)
    s = step_index
    instr_index = s // 2
    if tuple(base.regs._regs) != schedule.reg_names:
        return None
    if not 0 <= instr_index < len(schedule.pcs):
        return None
    if base.regs._regs[PC_G][1] != schedule.pcs[instr_index] \
            or base.regs._regs[PC_B][1] != schedule.pcs[instr_index]:
        return None
    if (s % 2 == 1) != (base.ir is not None):
        return None
    if s % 2 == 1 and base.ir != schedule.instrs[instr_index]:
        return None

    oob_policy = config.oob_policy
    error_port = config.error_port
    produced = reference.outputs_before[s]
    outputs_before = reference.outputs_before
    ref_outputs = ref_trace.outputs
    ref_steps = ref_trace.steps
    compiled = reference.compiled
    if compiled is not None and not compiled.supports(base):
        compiled = None

    def scalar_outcome(fault: Fault):
        faulty = base.clone()
        apply_fault(faulty, fault)
        if compiled is not None:
            trace = run_compiled(faulty, compiled, max_steps=budget)
        else:
            trace = Machine(faulty, oob_policy=oob_policy,
                            backend="step").run(max_steps=budget)
        result = classify_tail(trace, ref_trace, produced, error_port)
        return (fault, result, tuple(trace.outputs), trace.steps)

    # Faults the arrays cannot carry (oversized values, sites outside the
    # lane layout) run scalar, exactly as the scalar loop would run them.
    queue_len = len(base.queue)
    reg_index = schedule.reg_index
    vector_faults: List[Fault] = []
    vector_cols: List[int] = []
    results: List[Optional[tuple]] = [None] * len(faults)
    screened: Dict[str, int] = {}
    for position, fault in enumerate(faults):
        reason = _screen_reason(fault, reg_index, queue_len)
        if reason is None:
            vector_faults.append(fault)
            vector_cols.append(position)
        else:
            screened[reason] = screened.get(reason, 0) + 1
            results[position] = scalar_outcome(fault)
    if screened:
        screen_registry = get_registry()
        for reason, count in screened.items():
            screen_registry.counter("vector_scalar_screened_total",
                                    reason=reason).inc(count)
    if not vector_faults:
        return [outcome for outcome in results if outcome is not None]

    try:
        batch = LaneBatch(schedule, base, vector_faults)
    except VectorUnsupported:
        return None

    #: Reference-output tails are shared: one tuple per retirement step.
    tail_at: Dict[int, tuple] = {}

    def ref_tail(t: int) -> tuple:
        tail = tail_at.get(t)
        if tail is None:
            end = outputs_before[t] if t < ref_steps else len(ref_outputs)
            tail = tuple(ref_outputs[produced:end])
            tail_at[t] = tail
        return tail

    full_tail = tuple(ref_outputs[produced:])

    fallback_lanes = 0
    lane_steps = 0
    divergences: Dict[str, int] = {}

    def settle_fault(lane: int, t: int) -> None:
        # The hardware detected the fault at step t; by the lockstep
        # invariant the lane's output tail is the reference slice, which
        # classify_tail maps to DETECTED whether or not an error port is
        # configured (the port convention only reinterprets HALTED runs).
        col = vector_cols[lane]
        results[col] = (vector_faults[lane], FaultResult.DETECTED,
                        ref_tail(t), t - s + 1)

    def settle_halt(lane: int, t: int) -> None:
        col = vector_cols[lane]
        steps = t - s + 1
        if error_port is None:
            results[col] = (vector_faults[lane], FaultResult.MASKED,
                            full_tail, steps)
            return
        # A trailing error-port write can reclassify even an exact run.
        trace = Trace(Outcome.HALTED, list(full_tail), steps)
        result = classify_tail(trace, ref_trace, produced, error_port)
        results[col] = (vector_faults[lane], result, full_tail, steps)

    def settle_fallback(lane: int, state: MachineState, t: int,
                        reason: str) -> None:
        nonlocal fallback_lanes
        fallback_lanes += 1
        divergences[reason] = divergences.get(reason, 0) + 1
        col = vector_cols[lane]
        if compiled is not None:
            trace = run_compiled(state, compiled,
                                 max_steps=budget - (t - s))
        else:
            trace = Machine(state, oob_policy=oob_policy,
                            backend="step").run(max_steps=budget - (t - s))
        tail = ref_tail(t) + tuple(trace.outputs)
        steps = (t - s) + trace.steps
        merged = Trace(trace.outcome, list(tail), steps)
        result = classify_tail(merged, ref_trace, produced, error_port)
        results[col] = (vector_faults[lane], result, tail, steps)

    cutoff = min(CUTOFF_LANES, max(1, batch.n // 2))
    t = s
    while t < ref_steps and batch.active_count:
        if t % 2 == 0 and batch.active_count <= cutoff:
            break
        lane_steps += batch.active_count
        instr_index = t // 2
        if t % 2 == 0:
            faulted, fallback = batch.fetch(schedule.pcs[instr_index])
            for lane in faulted:
                settle_fault(lane, t)
            for lane, state in fallback:
                settle_fallback(lane, state, t, "pc")
        else:
            next_count = outputs_before[t + 1] if t + 1 < ref_steps \
                else len(ref_outputs)
            ref_pair = ref_outputs[outputs_before[t]] \
                if next_count > outputs_before[t] else None
            spec = schedule.specs[instr_index]
            faulted, fallback, halted = batch.execute(
                spec, schedule.instrs[instr_index],
                oob_policy.value == "trap", ref_pair)
            reason = FALLBACK_REASONS.get(spec[0], "other")
            for lane in faulted:
                settle_fault(lane, t)
            for lane, state in fallback:
                settle_fallback(lane, state, t, reason)
            for lane in halted:
                settle_halt(lane, t)
        t += 1
    if batch.active_count:
        # Cutoff (or a defensive tail): hand the stragglers to the scalar
        # engines at the current fetch boundary -- always exact.
        for lane, state in batch.retire_all():
            settle_fallback(lane, state, t, "cutoff")

    registry = get_registry()
    registry.counter("vector_batches_total").inc()
    registry.counter("vector_lanes_total").inc(batch.n)
    registry.counter("vector_lane_steps_total").inc(lane_steps)
    registry.counter("vector_fallback_lanes_total").inc(fallback_lanes)
    for reason, count in divergences.items():
        registry.counter("vector_divergences_total", reason=reason).inc(count)

    return results
