"""Process-pool execution of injection campaigns.

Every faulty run of a campaign is independent -- the classic
embarrassingly-parallel fault-injection workload -- and the campaign
engine's per-step determinism (RNG derived from ``(seed, step_index)``,
checkpoint/replay state reconstruction) means the work can be partitioned
arbitrarily without changing any result.  This module fans the injection
steps out across ``jobs`` worker processes:

* each worker re-derives the checkpointed reference run once (cheaper
  than shipping the checkpoint states through a pipe, and correct under
  both ``fork`` and ``spawn`` start methods).  The compiled execution
  backend's program cache (``repro.exec.cache``) is per-process, so each
  worker also compiles the program exactly once -- the first faulty run
  populates the worker's LRU and every subsequent run in that process
  hits it;
* the injection steps are split into contiguous chunks, several per
  worker for load balance, since fault-site counts vary along the run;
* the parent merges the per-step outcome lists **in step order**,
  regardless of completion order, so the resulting
  :class:`~repro.injection.campaign.CampaignReport` is bit-identical to
  the serial engine's for the same seed.

The pool path costs one process spawn + one reference run per worker, so
it pays off on campaigns whose injection work dwarfs the reference run --
which is exactly the exhaustive-campaign regime the engine exists for.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

from repro.core.pool import (
    CHUNKS_PER_WORKER as _CHUNKS_PER_WORKER,
    chunk as _chunk,
    default_jobs,
    mp_context as _mp_context,
    terminate_pool,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.injection.campaign import CampaignConfig, StepOutcome
    from repro.program import Program

#: Per-process campaign context, set up once by the pool initializer.
_WORKER_CONTEXT = None


def _init_worker(program: "Program", config: "CampaignConfig",
                 memo_entries=None) -> None:
    """Pool initializer: build the campaign context once per process.

    ``memo_entries`` seeds the worker's prune outcome-memo table with the
    parent's entries; the worker then tracks its own new entries for
    draining back through chunk telemetry.
    """
    global _WORKER_CONTEXT
    from repro.injection.campaign import _reference_run

    if config.prune:
        from repro.injection import prune as _prune

        _prune.absorb_entries(program, config, memo_entries)
        _prune.enable_tracking(program, config)
    reference = _reference_run(program, config)
    budget = reference.trace.steps + config.step_slack
    _WORKER_CONTEXT = (program, config, reference, budget)


def _run_chunk(
    step_indices: Sequence[int],
) -> Tuple[List[Tuple[int, "List[StepOutcome]"]], dict]:
    """Worker body: run every injection of a chunk of dynamic steps.

    Returns ``(pairs, telemetry)`` -- the same per-chunk delta shape as
    the supervised pool (:mod:`repro.injection.resilience`), folded into
    the parent's metrics registry at merge time.
    """
    import time as _time

    from repro.injection.campaign import _run_step

    program, config, reference, budget = _WORKER_CONTEXT
    started = _time.perf_counter()
    pairs = [
        (step_index,
         _run_step(program, config, reference, budget, step_index))
        for step_index in step_indices
    ]
    telemetry = {
        "seconds": _time.perf_counter() - started,
        "steps": len(pairs),
        "injections": sum(len(outcomes) for _, outcomes in pairs),
    }
    if config.prune:
        from repro.injection.prune import drain_new_entries

        telemetry["memo_new"] = drain_new_entries(program, config)
    return pairs, telemetry


def run_steps_parallel(
    program: "Program",
    config: "CampaignConfig",
    steps: Sequence[int],
    jobs: Optional[int] = None,
) -> Iterator[Tuple[int, "List[StepOutcome]"]]:
    """Run the injection steps of a campaign across a process pool.

    Yields ``(step_index, outcomes)`` pairs in ascending step order --
    the same order the serial engine produces them -- so the caller's
    merge is deterministic no matter how the pool schedules the chunks.
    """
    from repro.observe import get_registry

    registry = get_registry()
    chunk_seconds = registry.histogram("campaign_worker_chunk_seconds")
    worker_steps = registry.counter("campaign_worker_steps_total")
    worker_injections = registry.counter("campaign_worker_injections_total")

    def _fold(telemetry: dict) -> None:
        chunk_seconds.observe(telemetry["seconds"])
        worker_steps.inc(int(telemetry["steps"]))
        worker_injections.inc(int(telemetry["injections"]))
        memo_new = telemetry.get("memo_new")
        if memo_new:
            from repro.injection.prune import absorb_entries

            absorb_entries(program, config, memo_new)

    if jobs is None or jobs <= 0:
        jobs = default_jobs()
    jobs = min(jobs, len(steps))
    if jobs <= 1:
        # Degenerate pool: run inline rather than paying for a process.
        _init_worker(program, config)
        try:
            pairs, telemetry = _run_chunk(list(steps))
            _fold(telemetry)
            yield from pairs
        finally:
            _reset_context()
        return
    chunks = _chunk(steps, jobs * _CHUNKS_PER_WORKER)
    memo_entries = None
    if config.prune:
        from repro.injection.prune import export_entries

        memo_entries = export_entries(program, config)
    pool = ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=_mp_context(),
        initializer=_init_worker,
        initargs=(program, config, memo_entries),
    )
    try:
        # Executor.map preserves submission order, and chunks are
        # contiguous ascending slices -- concatenating the results walks
        # the steps exactly as the serial loop does.
        for pairs, telemetry in pool.map(_run_chunk, chunks):
            _fold(telemetry)
            yield from pairs
        pool.shutdown(wait=True)
    except BaseException:
        # KeyboardInterrupt (and generator teardown) used to run the
        # ``with`` block's ``shutdown(wait=True)``, blocking on -- and
        # leaking -- workers still grinding through queued chunks.  Kill
        # the pool immediately instead; the caller's ``finally`` (e.g.
        # ``run_campaign``'s journal close) then flushes partial results
        # before the exception continues.
        terminate_pool(pool)
        raise


def _reset_context() -> None:
    global _WORKER_CONTEXT
    context = _WORKER_CONTEXT
    _WORKER_CONTEXT = None
    if context is not None and context[1].prune:
        # The degenerate inline path ran the initializer in the parent
        # process: stop tracking new memo entries so later serial
        # campaigns do not accumulate an undrained pending list.
        from repro.injection.prune import memo_for

        memo = memo_for(context[0], context[1])
        memo.track_new = False
        memo.pending = []
