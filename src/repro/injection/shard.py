"""Horizontal sharding: deterministic campaign partitioning + merge.

A sharded campaign splits the injection-step space of one campaign into
``N`` self-describing **shard specs**, executes them on a fleet of worker
processes (possibly on other machines -- :mod:`repro.service`), journals
every shard's completed steps durably, and merges the per-step outcomes
back into a :class:`~repro.injection.campaign.CampaignReport` that is
**bit-identical** to the single-process run -- fingerprint-equal
including ``latency_buckets``.

The pieces here are pure planning and merging; the socket fleet lives in
:mod:`repro.service.coordinator`:

* :func:`plan_shards` -- partition an already-sampled injection-step list
  (``stride``/``samples`` semantics are applied *before* planning, so a
  sharded campaign samples exactly the steps a single-process run would)
  into contiguous, balanced :class:`ShardSpec`\\ s carrying the campaign's
  program/config identity digests.  Deterministic: the same campaign
  always plans the same shards, which is what makes shard journals
  resumable and shard re-execution (work stealing, dead-worker reissue)
  free to happen anywhere.
* :func:`merge_outcomes` -- the order-insensitive merge: per-step
  outcomes may arrive in any order from any worker, but folding them in
  ascending step order replays exactly the serial engine's merge loop.
* :func:`merge_journal_files` / :func:`reconstruct_report` -- offline
  tooling (CLI: ``talft journal merge``): union shard journals into one
  combined journal a plain ``talft campaign --journal X --resume`` can
  replay, or rebuild the report directly from shard journals.

Why this is sound: every injection step's outcomes are a pure function
of ``(program, config, step_index)`` -- the per-step RNG contract from
PR 1 -- so *where* a step executes and *when* its result arrives cannot
change a bit of the merged report.  Sharding only has to guarantee
coverage (every planned step merged exactly once) and ordering at merge
time, both enforced here.
"""

from __future__ import annotations

import glob as _glob
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pool import chunk as _chunk
from repro.injection.campaign import (
    CampaignConfig,
    CampaignReport,
    ReferenceRun,
    StepOutcome,
    _campaign_instruments,
    _injection_steps,
    _merge_step,
    _reference_run,
    resolve_backend_config,
)
from repro.injection.journal import (
    JournalMismatch,
    _frame,
    _header_payload,
    config_digest,
    decode_step,
    load_journal,
    program_digest,
    read_journal_header,
)
from repro.program import Program


@dataclass(frozen=True)
class ShardSpec:
    """One self-describing unit of a sharded campaign.

    Carries everything a worker -- or an offline tool -- needs to verify
    it is executing the right campaign: the shard's position, its exact
    injection steps, and the program/config identity digests the journal
    layer already uses to reject mismatched resumes.
    """

    index: int
    num_shards: int
    steps: Tuple[int, ...]
    program_digest: str
    config_digest: str

    def journal_path(self, base: str) -> str:
        """Where this shard journals under a campaign journaled at
        ``base`` (``base.shard-INDEX-of-TOTAL``)."""
        return f"{base}.shard-{self.index:03d}-of-{self.num_shards:03d}"


def plan_shards(
    steps: Sequence[int],
    num_shards: int,
    prog_digest: str,
    conf_digest: str,
) -> List[ShardSpec]:
    """Partition sampled injection steps into contiguous balanced shards.

    ``steps`` is the output of the campaign's sampler
    (:func:`repro.injection.campaign._injection_steps`), so stride and
    sample caps are already respected.  At most ``len(steps)`` shards are
    produced (empty shards are never planned); the plan is a pure
    function of its inputs.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be at least 1 (got {num_shards})")
    parts = _chunk(list(steps), num_shards) if steps else []
    total = len(parts)
    return [
        ShardSpec(index, total, tuple(part), prog_digest, conf_digest)
        for index, part in enumerate(parts)
    ]


def plan_campaign_shards(
    program: Program,
    config: CampaignConfig,
    num_shards: int,
    reference: Optional[ReferenceRun] = None,
) -> List[ShardSpec]:
    """Plan the shards of a whole campaign (reference run included).

    Convenience wrapper for callers that do not already hold the
    reference run; the coordinator plans from its own reference instead.
    """
    if reference is None:
        reference = _reference_run(program, config)
    steps = _injection_steps(reference.num_steps, config)
    return plan_shards(steps, num_shards, program_digest(program),
                       config_digest(config))


def existing_shard_journals(base: str) -> List[str]:
    """Every shard journal file written next to a campaign journal at
    ``base``, sorted by shard index (lexicographic equals numeric for the
    zero-padded naming)."""
    return sorted(_glob.glob(base + ".shard-*-of-*"))


# ---------------------------------------------------------------------------
# Order-insensitive merge
# ---------------------------------------------------------------------------


def merge_outcomes(
    reference: ReferenceRun,
    config: CampaignConfig,
    steps: Sequence[int],
    done: Dict[int, List[StepOutcome]],
) -> CampaignReport:
    """Fold per-step outcomes -- gathered in *any* order -- into the exact
    single-process :class:`CampaignReport`.

    ``done`` maps every step in ``steps`` to its outcomes; folding in
    ascending step order replays the serial merge loop, so records,
    counts, violations and ``latency_buckets`` all come out bit-identical
    regardless of which worker produced which step when.  Raises
    ``ValueError`` when coverage is incomplete -- a sharded campaign must
    never silently report on a subset.
    """
    missing = [step for step in steps if step not in done]
    if missing:
        raise ValueError(
            f"sharded campaign is missing {len(missing)} of {len(steps)} "
            f"injection steps (first missing: {missing[0]}); refusing to "
            "merge a partial report")
    report = CampaignReport(reference=reference.trace)
    instruments = _campaign_instruments()
    for step_index in steps:
        _merge_step(report, reference, config, step_index, done[step_index],
                    instruments)
    return report


# ---------------------------------------------------------------------------
# Offline journal tooling (CLI: talft journal merge)
# ---------------------------------------------------------------------------


def merge_journal_files(output: str, inputs: Sequence[str]) -> Tuple[int, int]:
    """Union shard journals into one combined journal file.

    All inputs must carry the same program/config identity header
    (:class:`JournalMismatch` otherwise); duplicate steps across inputs
    are identical by the determinism contract, so the first occurrence
    wins.  The combined file is a plain campaign journal: ``talft
    campaign --journal OUTPUT --resume`` reconstructs the full report
    from it without re-executing anything.  Returns ``(steps_written,
    corrupt_lines_skipped)``.
    """
    if not inputs:
        raise ValueError("journal merge needs at least one input journal")
    header: Optional[Dict] = None
    steps: Dict[int, List] = {}
    corrupt = 0
    for path in inputs:
        found = read_journal_header(path)
        if found is None:
            raise JournalMismatch(
                f"journal {path} is missing or has no valid header")
        if header is None:
            header = found
        elif (found.get("program"), found.get("config")) != \
                (header.get("program"), header.get("config")):
            raise JournalMismatch(
                f"journal {path} belongs to a different campaign "
                f"(program {found.get('program')}/config "
                f"{found.get('config')} vs {header.get('program')}/"
                f"{header.get('config')}); refusing to merge")
        load = load_journal(path, header["program"], header["config"])
        corrupt += load.corrupt_lines
        for step_index, raw in load.steps.items():
            steps.setdefault(step_index, raw)
    temp_path = output + ".tmp"
    with open(temp_path, "w") as handle:
        handle.write(_frame(_header_payload(header["program"],
                                            header["config"])))
        for step_index in sorted(steps):
            handle.write(_frame({"step": step_index,
                                 "out": steps[step_index]}))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, output)
    return len(steps), corrupt


def load_shard_steps(
    program: Program,
    config: CampaignConfig,
    paths: Sequence[str],
    reference: ReferenceRun,
) -> Tuple[Dict[int, List[StepOutcome]], int]:
    """Decode every journaled step from ``paths``, identity-verified.

    Returns ``(done_steps, corrupt_lines)``; steps outside the campaign's
    sampled set are ignored (a journal from a wider run may seed a
    narrower one).
    """
    prog_digest = program_digest(program)
    conf_digest = config_digest(config)
    wanted = set(_injection_steps(reference.num_steps, config))
    outputs_before = reference.outputs_before
    ref_outputs = reference.trace.outputs
    done: Dict[int, List[StepOutcome]] = {}
    corrupt = 0
    for path in paths:
        load = load_journal(path, prog_digest, conf_digest)
        corrupt += load.corrupt_lines
        for step_index, raw in load.steps.items():
            if step_index in wanted and step_index not in done:
                tail = tuple(ref_outputs[outputs_before[step_index]:])
                done[step_index] = decode_step(raw, tail)
    return done, corrupt


def reconstruct_report(
    program: Program,
    config: Optional[CampaignConfig] = None,
    journal_paths: Sequence[str] = (),
    backend: Optional[str] = None,
) -> CampaignReport:
    """Rebuild the exact single-process report from shard journals alone.

    No injection is re-executed: the reference run is recomputed (it is
    deterministic and cheap relative to the campaign) and every sampled
    step must be present across ``journal_paths``.  The result is
    fingerprint-equal to the uninterrupted single-process campaign,
    ``latency_buckets`` included.
    """
    from repro.injection.resilience import ResilienceStats

    config = resolve_backend_config(program, config or CampaignConfig(),
                                    backend)
    reference = _reference_run(program, config)
    steps = _injection_steps(reference.num_steps, config)
    done, corrupt = load_shard_steps(program, config, journal_paths,
                                     reference)
    report = merge_outcomes(reference, config, steps, done)
    stats = ResilienceStats(resumed_steps=len(steps),
                            corrupt_journal_lines=corrupt)
    report.resilience = stats
    return report
