"""Worker supervision for crash-safe campaign pools.

The plain pool path (:mod:`repro.injection.parallel`) trusts its workers:
no deadlines, no retries, and a single killed or hung process aborts the
whole campaign.  This module is the supervised replacement that
``run_campaign`` layers its process pool on.  It exploits the same
determinism contract as everything else in the engine -- per-step RNG
seeded by ``(seed, step_index)`` makes every chunk of injection steps
re-executable on any process at any time with identical results -- so
supervision is free to kill, retry and re-place work without changing a
single bit of the report:

* **per-chunk deadlines** (``ResilienceConfig.chunk_timeout``): a chunk
  that does not complete in time is presumed hung; the pool is torn down
  (SIGTERM/SIGKILL via :func:`repro.core.pool.terminate_pool`) and the
  unfinished chunks are re-executed on a fresh pool;
* **killed-worker detection**: a worker dying mid-chunk (OOM killer,
  SIGKILL, segfault) surfaces as ``BrokenProcessPool``; completed chunk
  results are harvested and only the unfinished remainder is resubmitted;
* **bounded retries with exponential backoff + jitter** per chunk
  (``max_retries``, ``backoff_base``/``backoff_cap``/``backoff_jitter``);
* **graceful degradation**: a chunk that exhausts its retries -- or a
  pool that cannot even be rebuilt -- falls back to in-process serial
  execution, so the campaign *completes* (slower) rather than aborts;
* every event is counted in a :class:`ResilienceStats` attached to the
  final :class:`~repro.injection.campaign.CampaignReport`.

Workers re-warm their compiled-program cache on (re)start: the pool
initializer calls :func:`repro.exec.cache.warm_program` before rebuilding
the reference run, so under ``fork`` the inherited parent cache is hit
and under ``spawn`` (or after a restart) the program is compiled exactly
once per fresh process.

The chaos harness (:mod:`repro.injection.chaos`) drives exactly these
paths by injecting infrastructure faults into the workers.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from typing import (
    TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple,
)

from repro.core.pool import (
    CHUNKS_PER_WORKER as _CHUNKS_PER_WORKER,
    chunk as _chunk,
    default_jobs,
    mp_context as _mp_context,
    terminate_pool,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.injection.campaign import CampaignConfig, StepOutcome
    from repro.injection.chaos import ChaosSpec
    from repro.program import Program


@dataclass
class ResilienceConfig:
    """Supervision knobs for the campaign pool."""

    #: Seconds a chunk may run before it is presumed hung and its pool is
    #: recycled (``None`` disables deadlines).
    chunk_timeout: Optional[float] = None
    #: Re-executions allowed per chunk before falling back to in-process
    #: serial execution of that chunk.
    max_retries: int = 2
    #: First retry delay, seconds; doubles per attempt up to ``backoff_cap``.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Uniform random extra fraction added to each delay (decorrelates
    #: rebuild stampedes; affects timing only, never results).
    backoff_jitter: float = 0.5
    #: Allow degradation to in-process execution when the pool is
    #: irrecoverable.  Disabling it turns exhaustion into the underlying
    #: pool exception (tests use this to pin the retry accounting).
    serial_fallback: bool = True


@dataclass
class ResilienceStats:
    """What supervision actually did during a campaign."""

    #: Chunk re-executions (for any reason).
    retries: int = 0
    #: Chunks whose deadline expired.
    timeouts: int = 0
    #: Pool breakages attributed to dead workers.
    worker_crashes: int = 0
    #: Fresh pools built after the initial one.
    pool_rebuilds: int = 0
    #: Chunks that degraded to in-process serial execution.
    fallback_chunks: int = 0
    #: Injection steps skipped because a journal already held them.
    resumed_steps: int = 0
    #: Injection steps appended to the journal by this run.
    journaled_steps: int = 0
    #: Journal lines dropped at resume for failed checksums.
    corrupt_journal_lines: int = 0
    #: Sharded campaigns: shard tails handed to an idle worker while the
    #: original owner was still running (work stealing).
    shard_steals: int = 0
    #: Sharded campaigns: worker connections lost mid-campaign (process
    #: death, socket EOF, or a deadline expiry force-close).
    shard_worker_deaths: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)

    def summary(self) -> str:
        active = {name: value for name, value in self.as_dict().items()
                  if value}
        if not active:
            return "resilience: clean run (no retries, no resume)"
        inner = ", ".join(f"{name}: {value}"
                          for name, value in active.items())
        return f"resilience: {inner}"


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Per-process supervised-campaign context, set by the pool initializer.
_SUP_CONTEXT = None


def _sup_init_worker(
    program: "Program",
    config: "CampaignConfig",
    chaos: "Optional[ChaosSpec]",
    memo_entries=None,
) -> None:
    """Pool initializer: re-warm the exec cache, rebuild the reference.

    Runs once per worker process, including every process of every
    *rebuilt* pool -- a restarted worker warms its compiled-program cache
    (inherited for free under ``fork``, recompiled once under ``spawn``)
    before deriving the checkpointed reference run.
    """
    global _SUP_CONTEXT
    from repro.exec.cache import warm_program
    from repro.injection.campaign import _reference_run

    if config.prune:
        # Seed the worker's prune memo from the parent and track new
        # entries so chunk telemetry can drain them back.
        from repro.injection import prune as _prune

        _prune.absorb_entries(program, config, memo_entries)
        _prune.enable_tracking(program, config)
    if config.backend in ("compiled", "vector"):
        # The vector backend also leans on the compilation: its reference
        # run and its per-lane fallbacks execute compiled.
        warm_program(program.boot().code, config.oob_policy)
    reference = _reference_run(program, config)
    budget = reference.trace.steps + config.step_slack
    _SUP_CONTEXT = (program, config, reference, budget, chaos)


def _sup_run_chunk(
    chunk_index: int,
    step_indices: Sequence[int],
) -> Tuple[List[Tuple[int, "List[StepOutcome]"]], Dict[str, float]]:
    """Worker body: one chunk of injection steps, chaos applied first.

    Returns ``(pairs, telemetry)``: the per-step outcomes plus a small
    per-chunk telemetry delta (wall seconds, steps, injections) that the
    supervisor folds into the parent's metrics registry.  Shipping deltas
    -- not whole registry snapshots -- keeps retried chunks from
    double-counting: only the delta of the attempt whose result is kept
    is ever folded.
    """
    from repro.injection.campaign import _run_step

    program, config, reference, budget, chaos = _SUP_CONTEXT
    if chaos is not None:
        chaos.apply_in_worker(chunk_index)
    started = time.perf_counter()
    pairs = [
        (step_index,
         _run_step(program, config, reference, budget, step_index))
        for step_index in step_indices
    ]
    telemetry = {
        "seconds": time.perf_counter() - started,
        "steps": len(pairs),
        "injections": sum(len(outcomes) for _, outcomes in pairs),
    }
    if config.prune:
        from repro.injection.prune import drain_new_entries

        telemetry["memo_new"] = drain_new_entries(program, config)
    return pairs, telemetry


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------


def _backoff_sleep(resilience: ResilienceConfig, attempt: int,
                   rng: random.Random) -> None:
    delay = min(resilience.backoff_cap,
                resilience.backoff_base * (2 ** max(0, attempt - 1)))
    if delay <= 0:
        return
    delay *= 1.0 + resilience.backoff_jitter * rng.random()
    time.sleep(delay)


def run_steps_supervised(
    program: "Program",
    config: "CampaignConfig",
    steps: Sequence[int],
    jobs: Optional[int] = None,
    resilience: Optional[ResilienceConfig] = None,
    stats: Optional[ResilienceStats] = None,
    reference=None,
    chaos: "Optional[ChaosSpec]" = None,
) -> Iterator[Tuple[int, "List[StepOutcome]"]]:
    """Run injection steps across a *supervised* process pool.

    Yields ``(step_index, outcomes)`` in ascending step order, exactly
    like the serial loop and :func:`repro.injection.parallel.
    run_steps_parallel`, so the caller's merge (and journal) stay
    deterministic.  ``reference`` may pass in the parent's already-built
    :class:`~repro.injection.campaign.ReferenceRun` so serial fallback
    does not recompute it.

    Supervision never changes results: chunks are pure functions of their
    step indices (per-step RNG), so re-execution after a timeout, crash or
    fallback reproduces the lost outcomes bit-for-bit.
    """
    from repro.injection.campaign import _reference_run, _run_step
    from repro.observe import emit as _emit_event, get_registry

    resilience = resilience or ResilienceConfig()
    stats = stats if stats is not None else ResilienceStats()
    registry = get_registry()
    supervision_events = registry.counter  # resolved per event kind below
    chunk_seconds = registry.histogram("campaign_worker_chunk_seconds")
    worker_steps = registry.counter("campaign_worker_steps_total")
    worker_injections = registry.counter("campaign_worker_injections_total")

    def _count_event(kind: str) -> None:
        """Mirror a ResilienceStats bump into the registry, live."""
        supervision_events("campaign_supervision_events_total",
                           kind=kind).inc()
        _emit_event("supervision", kind=kind)

    def _fold_telemetry(telemetry: Dict[str, float]) -> None:
        chunk_seconds.observe(telemetry["seconds"])
        worker_steps.inc(int(telemetry["steps"]))
        worker_injections.inc(int(telemetry["injections"]))
        memo_new = telemetry.get("memo_new")
        if memo_new:
            from repro.injection.prune import absorb_entries

            absorb_entries(program, config, memo_new)
    if jobs is None or jobs <= 0:
        jobs = default_jobs()
    jobs = min(jobs, len(steps))

    def serial_context():
        nonlocal reference
        if reference is None:
            reference = _reference_run(program, config)
        return reference, reference.trace.steps + config.step_slack

    if jobs <= 1:
        ref, budget = serial_context()
        for step_index in steps:
            yield (step_index,
                   _run_step(program, config, ref, budget, step_index))
        return

    chunks = _chunk(steps, jobs * _CHUNKS_PER_WORKER)
    attempts = [0] * len(chunks)
    results: List[Optional[List]] = [None] * len(chunks)
    done = [False] * len(chunks)
    rng = random.Random(0x5EED)  # jitter only; results never consult it

    def run_chunk_inline(index: int) -> None:
        ref, budget = serial_context()
        started = time.perf_counter()
        pairs = [
            (step_index,
             _run_step(program, config, ref, budget, step_index))
            for step_index in chunks[index]
        ]
        results[index] = (pairs, {
            "seconds": time.perf_counter() - started,
            "steps": len(pairs),
            "injections": sum(len(outcomes) for _, outcomes in pairs),
        })
        done[index] = True

    def make_pool() -> ProcessPoolExecutor:
        memo_entries = None
        if config.prune:
            from repro.injection.prune import export_entries

            # Rebuilt pools re-export: entries drained from earlier
            # chunks ride along to freshly started workers.
            memo_entries = export_entries(program, config)
        return ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=_mp_context(),
            initializer=_sup_init_worker,
            initargs=(program, config, chaos, memo_entries),
        )

    def submit_pending(pool) -> Dict[int, object]:
        return {
            index: pool.submit(_sup_run_chunk, index, chunks[index])
            for index in range(len(chunks)) if not done[index]
        }

    pool = None
    pool_is_serial = False  # the pool was declared irrecoverable
    try:
        try:
            pool = make_pool()
            futures = submit_pending(pool)
        except Exception:
            pool_is_serial = True
            futures = {}
        for index in range(len(chunks)):
            while not done[index]:
                if pool_is_serial:
                    stats.fallback_chunks += 1
                    _count_event("fallback_chunk")
                    run_chunk_inline(index)
                    break
                future = futures.get(index)
                if future is None:  # pragma: no cover - defensive
                    pool_is_serial = True
                    continue
                try:
                    results[index] = future.result(
                        timeout=resilience.chunk_timeout)
                    done[index] = True
                    break
                except FuturesTimeoutError as exc:
                    stats.timeouts += 1
                    _count_event("timeout")
                    failure = exc
                except BrokenProcessPool as exc:
                    stats.worker_crashes += 1
                    _count_event("worker_crash")
                    failure = exc
                # Failure: harvest whatever later chunks already finished
                # (their results survive a broken pool), recycle the pool,
                # and re-place the remainder.
                for other, other_future in futures.items():
                    if not done[other] and other_future.done() \
                            and other_future.exception() is None:
                        results[other] = other_future.result()
                        done[other] = True
                terminate_pool(pool)
                pool = None
                attempts[index] += 1
                if attempts[index] > resilience.max_retries:
                    if not resilience.serial_fallback:
                        raise failure
                    stats.fallback_chunks += 1
                    _count_event("fallback_chunk")
                    run_chunk_inline(index)
                else:
                    stats.retries += 1
                    _count_event("retry")
                    _backoff_sleep(resilience, attempts[index], rng)
                if all(done):
                    break
                try:
                    pool = make_pool()
                    futures = submit_pending(pool)
                    stats.pool_rebuilds += 1
                    _count_event("pool_rebuild")
                except Exception:
                    # The pool itself is irrecoverable (fd/process
                    # exhaustion): degrade every remaining chunk.
                    if not resilience.serial_fallback:
                        raise
                    pool_is_serial = True
            pairs, telemetry = results[index]
            _fold_telemetry(telemetry)
            yield from pairs
            results[index] = None  # free the chunk's outcome memory early
    finally:
        if pool is not None:
            terminate_pool(pool)
