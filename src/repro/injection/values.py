"""Replacement-value strategies for single-event-upset campaigns.

``reg-zap`` replaces a register's payload with an *arbitrary* integer; an
exhaustive sweep over all integers is impossible, so campaigns pick a
representative set designed to cover every behavior class the machine (and
the type system) distinguishes:

* boundary constants (0, 1, -1, a huge value),
* off-by-one perturbations of the current value (catches equality checks),
* valid code addresses (retargets control flow),
* valid and invalid data addresses (redirects loads/stores),
* seeded pseudo-random values (everything else).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from repro.core.faults import Fault, QueueZapAddress, QueueZapValue, RegZap
from repro.core.state import MachineState
from repro.program import Program


def current_payload(state: MachineState, fault: Fault) -> int:
    """The value currently stored at the fault's target location."""
    if isinstance(fault, RegZap):
        return state.regs.value(fault.reg)
    pairs = state.queue.pairs()
    address, value = pairs[fault.index]
    return address if isinstance(fault, QueueZapAddress) else value


def representative_values(
    state: MachineState,
    fault: Fault,
    program: Program,
    rng: Optional[random.Random] = None,
    max_code_targets: int = 2,
    max_data_targets: int = 2,
    random_count: int = 1,
) -> List[int]:
    """A deduplicated list of replacement values for ``fault`` at ``state``.

    The current payload is excluded (replacing a value with itself is not a
    fault in any observable sense).
    """
    current = current_payload(state, fault)
    values = {0, 1, -1, 1 << 40}
    values.update((current + 1, current - 1))
    for address in sorted(program.label_types)[:max_code_targets]:
        values.add(address)
    for address in sorted(program.data_psi)[:max_data_targets]:
        values.add(address)
    if program.data_psi:
        values.add(max(program.data_psi) + 17)  # an out-of-bounds address
    if rng is not None:
        for _ in range(random_count):
            values.add(rng.randint(-(1 << 31), 1 << 31))
    values.discard(current)
    return sorted(values)


def with_value(fault: Fault, value: int) -> Fault:
    """A copy of ``fault`` carrying ``value`` as the replacement payload."""
    if isinstance(fault, RegZap):
        return RegZap(fault.reg, value)
    if isinstance(fault, QueueZapAddress):
        return QueueZapAddress(fault.index, value)
    if isinstance(fault, QueueZapValue):
        return QueueZapValue(fault.index, value)
    raise ValueError(f"unknown fault {fault!r}")
