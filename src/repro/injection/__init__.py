"""Single-event-upset fault-injection campaigns."""

from repro.injection.campaign import (
    CampaignConfig,
    CampaignReport,
    FaultResult,
    InjectionRecord,
    classify,
    run_campaign,
)
from repro.injection.multifault import (
    correlated_double_fault,
    run_faults,
    run_multifault_campaign,
)
from repro.injection.values import (
    current_payload,
    representative_values,
    with_value,
)

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "FaultResult",
    "InjectionRecord",
    "classify",
    "correlated_double_fault",
    "current_payload",
    "run_faults",
    "run_multifault_campaign",
    "representative_values",
    "run_campaign",
    "with_value",
]
