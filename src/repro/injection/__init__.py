"""Single-event-upset fault-injection campaigns."""

from repro.injection.campaign import (
    CampaignConfig,
    CampaignReport,
    FaultResult,
    InjectionRecord,
    ReferenceRun,
    classify,
    classify_tail,
    run_campaign,
)
from repro.injection.parallel import default_jobs, run_steps_parallel
from repro.injection.resilience import (
    ResilienceConfig,
    ResilienceStats,
    run_steps_supervised,
)
from repro.injection.journal import (
    CampaignJournal,
    JournalMismatch,
    config_digest,
    load_journal,
    program_digest,
    resume_journal,
)
from repro.injection.chaos import (
    SCENARIOS as CHAOS_SCENARIOS,
    ChaosSpec,
    ScenarioResult,
    corrupt_journal_line,
    report_fingerprint,
    run_scenarios,
    truncate_journal_tail,
)
from repro.injection.shard import (
    ShardSpec,
    existing_shard_journals,
    merge_journal_files,
    merge_outcomes,
    plan_campaign_shards,
    plan_shards,
    reconstruct_report,
)
from repro.injection.multifault import (
    correlated_double_fault,
    run_faults,
    run_multifault_campaign,
)
from repro.injection.values import (
    current_payload,
    representative_values,
    with_value,
)

__all__ = [
    "CHAOS_SCENARIOS",
    "CampaignConfig",
    "CampaignJournal",
    "CampaignReport",
    "ChaosSpec",
    "FaultResult",
    "InjectionRecord",
    "JournalMismatch",
    "ReferenceRun",
    "ResilienceConfig",
    "ResilienceStats",
    "ScenarioResult",
    "ShardSpec",
    "classify",
    "classify_tail",
    "config_digest",
    "correlated_double_fault",
    "corrupt_journal_line",
    "current_payload",
    "default_jobs",
    "existing_shard_journals",
    "load_journal",
    "merge_journal_files",
    "merge_outcomes",
    "plan_campaign_shards",
    "plan_shards",
    "program_digest",
    "reconstruct_report",
    "report_fingerprint",
    "representative_values",
    "resume_journal",
    "run_campaign",
    "run_faults",
    "run_multifault_campaign",
    "run_scenarios",
    "run_steps_parallel",
    "run_steps_supervised",
    "truncate_journal_tail",
    "with_value",
]
