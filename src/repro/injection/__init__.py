"""Single-event-upset fault-injection campaigns."""

from repro.injection.campaign import (
    CampaignConfig,
    CampaignReport,
    FaultResult,
    InjectionRecord,
    ReferenceRun,
    classify,
    classify_tail,
    run_campaign,
)
from repro.injection.parallel import default_jobs, run_steps_parallel
from repro.injection.multifault import (
    correlated_double_fault,
    run_faults,
    run_multifault_campaign,
)
from repro.injection.values import (
    current_payload,
    representative_values,
    with_value,
)

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "FaultResult",
    "InjectionRecord",
    "ReferenceRun",
    "classify",
    "classify_tail",
    "correlated_double_fault",
    "current_payload",
    "default_jobs",
    "run_faults",
    "run_multifault_campaign",
    "representative_values",
    "run_campaign",
    "run_steps_parallel",
    "with_value",
]
