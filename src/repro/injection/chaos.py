"""Infrastructure chaos harness: fault-inject the campaign runtime itself.

TAL_FT injects faults into the *machine under test* and proves the report
is unaffected; this module does the same to the **campaign
infrastructure** -- the process pool, the scheduler, the journal file --
and asserts the final :class:`~repro.injection.campaign.CampaignReport`
still comes out bit-identical to an uninterrupted serial run.  The
harness treats the runtime as part of the threat model, mirroring the
infrastructure-fault framing of symbolic fault-attack work (PAPERS.md):
a fault-tolerance *claim* about the harness is only worth what the
harness survives.

Scenarios (CLI: ``talft chaos``):

* ``kill-worker`` -- a pool worker SIGKILLs itself at the start of a
  chunk (exactly once); the supervisor must detect the broken pool,
  harvest finished chunks, rebuild, and re-execute the remainder;
* ``delay-chunk`` -- a worker stalls one chunk past its deadline; the
  supervisor must time the chunk out, recycle the pool and retry;
* ``truncate-journal`` -- a completed journal loses its tail (including a
  torn half-line, as a crash mid-``write`` leaves); ``--resume`` must
  recompute exactly the missing steps;
* ``corrupt-journal`` -- a journal line's payload is flipped so its
  checksum fails; resume must skip it with a warning and recompute;
* ``kill-service`` -- SIGKILL a real ``talft serve --state-dir``
  process mid-job, restart it with the same state directory, and assert
  the resumed job's published fingerprint and latency buckets equal an
  uninterrupted in-process run -- and that queued and settled jobs
  survived the restart;
* ``kill-remote-shard-worker`` -- SIGKILL a real TCP ``talft
  shard-worker`` subprocess (not a locally forked fleet member)
  mid-shard; the coordinator must reissue its tail over the wire;
* ``recovery`` -- the machine-level analog: the recovering executor
  (:mod:`repro.recovery`) must reproduce the fault-free output sequence
  under an injected SEU, tying the two recovery layers together.

Worker-side behaviors are one-shot: the first worker to reach the marked
chunk claims an ``O_CREAT | O_EXCL`` marker file and misbehaves; every
re-execution of that chunk (after the pool rebuild) sees the marker and
runs clean.  That makes scenarios deterministic without any cross-process
coordination beyond the filesystem.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.injection.campaign import (
    CampaignConfig,
    CampaignReport,
    run_campaign,
)
from repro.injection.resilience import ResilienceConfig, ResilienceStats
from repro.program import Program


@dataclass
class ChaosSpec:
    """Infrastructure faults to inject into pool workers.

    Picklable (it rides the pool initializer into every worker).  Marker
    files under ``marker_dir`` make each behavior one-shot across pool
    rebuilds.
    """

    #: Chunk index whose worker SIGKILLs itself (first execution only).
    kill_chunk: Optional[int] = None
    #: Chunk index whose worker stalls (first execution only).
    delay_chunk: Optional[int] = None
    #: Stall duration, seconds.
    delay_seconds: float = 0.0
    #: Directory for the one-shot marker files (required when any
    #: worker-side behavior is set).
    marker_dir: str = ""
    #: Sharded campaigns: fleet worker index that SIGKILLs itself
    #: mid-shard.  The coordinator embeds the directive in that worker's
    #: job message; the worker dies right after streaming its
    #: ``kill_shard_after_steps``-th step result.  One-shot by
    #: construction -- dead shard workers are never respawned, the
    #: coordinator reissues their unfinished steps elsewhere.
    kill_shard_worker: Optional[int] = None
    #: Step results the doomed shard worker sends before dying.
    kill_shard_after_steps: int = 1

    def apply_in_worker(self, chunk_index: int) -> None:
        """Called by the worker at the start of every chunk."""
        if self.kill_chunk == chunk_index and self._claim("kill"):
            os.kill(os.getpid(), signal.SIGKILL)
        if self.delay_chunk == chunk_index and self._claim("delay"):
            time.sleep(self.delay_seconds)

    def _claim(self, name: str) -> bool:
        path = os.path.join(self.marker_dir, f"chaos-{name}.marker")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True


# ---------------------------------------------------------------------------
# Journal tampering
# ---------------------------------------------------------------------------


def truncate_journal_tail(path: str, lines: int = 1,
                          torn_bytes: int = 0) -> int:
    """Drop the last ``lines`` journal lines; optionally leave the first
    ``torn_bytes`` bytes of the next-dropped line behind as a torn write
    (no trailing newline), exactly what a crash mid-append produces.
    Returns how many complete lines were removed."""
    with open(path) as handle:
        content = handle.readlines()
    kept = content[:-lines] if lines else list(content)
    removed = len(content) - len(kept)
    with open(path, "w") as handle:
        handle.writelines(kept)
        if torn_bytes and removed:
            handle.write(content[len(kept)][:torn_bytes])
    return removed


def corrupt_journal_line(path: str, line_index: int = -1) -> None:
    """Flip a digit inside one line's payload so its checksum fails."""
    with open(path) as handle:
        content = handle.readlines()
    line = content[line_index]
    for position, char in enumerate(line):
        if char.isdigit():
            flipped = "1" if char != "1" else "2"
            content[line_index] = (line[:position] + flipped
                                   + line[position + 1:])
            break
    with open(path, "w") as handle:
        handle.writelines(content)


# ---------------------------------------------------------------------------
# Parity checking
# ---------------------------------------------------------------------------


def report_fingerprint(report: CampaignReport) -> Tuple:
    """Everything the bit-identical contract covers: every record field,
    every classification, and the human-readable summary."""
    return (
        report.injections,
        tuple(sorted((key.value, value)
                     for key, value in report.counts.items())),
        tuple((r.step, r.fault, r.result, r.outputs, r.latency)
              for r in report.records),
        tuple((r.step, r.fault, r.result, r.outputs, r.latency)
              for r in report.violations),
        report.summary(),
    )


def fingerprint_digest(report: CampaignReport) -> str:
    """A transportable hash of :func:`report_fingerprint`.

    The campaign service publishes this in every job's result summary so
    clients -- and the ``kill-service`` scenario -- can compare reports
    across process boundaries without shipping the full record list.
    """
    import hashlib

    return hashlib.sha256(
        repr(report_fingerprint(report)).encode("utf-8")).hexdigest()[:16]


@dataclass
class ScenarioResult:
    """One chaos scenario's verdict."""

    scenario: str
    #: Did the chaotic run produce a bit-identical report?
    matches: bool
    #: What supervision/journaling reported doing.
    stats: Optional[ResilienceStats]
    #: Human-readable evidence ("retries: 1, ..." or a mismatch note).
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.matches


@dataclass
class _Scenario:
    name: str
    run: Callable[[Program, CampaignConfig, int, str], ScenarioResult]
    description: str = ""
    #: Scenario drives the campaign service by kernel name and needs the
    #: target to be one (``run_scenarios(kernel=...)``).
    needs_kernel: bool = False


def _compare(name: str, reference: CampaignReport, chaotic: CampaignReport,
             stats: Optional[ResilienceStats],
             expect: Callable[[Optional[ResilienceStats]], str] = None,
             ) -> ScenarioResult:
    matches = report_fingerprint(reference) == report_fingerprint(chaotic)
    detail = (stats.summary() if stats is not None else "")
    if not matches:
        detail = (f"MISMATCH: reference {reference.summary()!r} vs "
                  f"chaotic {chaotic.summary()!r}; " + detail)
    elif expect is not None:
        complaint = expect(stats)
        if complaint:
            matches = False
            detail = f"parity held but {complaint}; " + detail
    return ScenarioResult(name, matches, stats, detail)


def _scenario_kill_worker(program, config, jobs, workdir) -> ScenarioResult:
    reference = run_campaign(program, config, jobs=1)
    chaos = ChaosSpec(kill_chunk=1, marker_dir=workdir)
    chaotic = run_campaign(
        program, config, jobs=max(2, jobs),
        resilience=ResilienceConfig(max_retries=3, backoff_base=0.01),
        chaos=chaos,
    )
    return _compare(
        "kill-worker", reference, chaotic, chaotic.resilience,
        expect=lambda stats: (
            "" if stats.worker_crashes or stats.fallback_chunks
            else "no worker crash was observed"),
    )


def _scenario_delay_chunk(program, config, jobs, workdir) -> ScenarioResult:
    reference = run_campaign(program, config, jobs=1)
    chaos = ChaosSpec(delay_chunk=1, delay_seconds=2.0, marker_dir=workdir)
    chaotic = run_campaign(
        program, config, jobs=max(2, jobs),
        resilience=ResilienceConfig(chunk_timeout=0.5, max_retries=3,
                                    backoff_base=0.01),
        chaos=chaos,
    )
    return _compare(
        "delay-chunk", reference, chaotic, chaotic.resilience,
        expect=lambda stats: (
            "" if stats.timeouts or stats.fallback_chunks
            else "no chunk deadline expired"),
    )


def _scenario_truncate_journal(program, config, jobs, workdir
                               ) -> ScenarioResult:
    import warnings

    reference = run_campaign(program, config, jobs=1)
    journal_path = os.path.join(workdir, "truncate.journal")
    run_campaign(program, config, jobs=1, journal_path=journal_path)
    # Crash simulation: lose the last two records, leave a torn half-line.
    truncate_journal_tail(journal_path, lines=2, torn_bytes=25)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # the torn-tail skip is expected
        resumed = run_campaign(program, config, jobs=1,
                               journal_path=journal_path, resume=True)
    return _compare(
        "truncate-journal", reference, resumed, resumed.resilience,
        expect=lambda stats: (
            "" if stats.resumed_steps and stats.journaled_steps
            else "resume did not mix journaled and recomputed steps"),
    )


def _scenario_corrupt_journal(program, config, jobs, workdir
                              ) -> ScenarioResult:
    import warnings

    reference = run_campaign(program, config, jobs=1)
    journal_path = os.path.join(workdir, "corrupt.journal")
    run_campaign(program, config, jobs=1, journal_path=journal_path)
    corrupt_journal_line(journal_path, line_index=-1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # the skip warning is the point
        resumed = run_campaign(program, config, jobs=1,
                               journal_path=journal_path, resume=True)
    return _compare(
        "corrupt-journal", reference, resumed, resumed.resilience,
        expect=lambda stats: (
            "" if stats.corrupt_journal_lines
            else "the corrupt line went undetected"),
    )


def _scenario_kill_shard_worker(program, config, jobs, workdir
                                ) -> ScenarioResult:
    """SIGKILL one shard-fleet worker mid-campaign; the coordinator must
    reissue its unfinished tail and keep the merged report bit-identical."""
    from repro.service import run_campaign_sharded

    reference = run_campaign(program, config, jobs=1)
    chaos = ChaosSpec(kill_shard_worker=0, kill_shard_after_steps=1)
    chaotic = run_campaign_sharded(
        program, config, shards=max(2, jobs),
        resilience=ResilienceConfig(max_retries=3, backoff_base=0.01),
        chaos=chaos,
    )
    return _compare(
        "kill-shard-worker", reference, chaotic, chaotic.resilience,
        expect=lambda stats: (
            "" if stats.shard_worker_deaths
            else "no shard worker death was observed"),
    )


# ---------------------------------------------------------------------------
# Subprocess chaos: real processes, real signals
# ---------------------------------------------------------------------------


def _spawn_talft(cli_args: List[str], workdir: str):
    """Launch ``talft <cli_args>`` as a real subprocess with this tree's
    ``src`` on its path -- the service scenarios need genuine process
    boundaries, not threads, so SIGKILL means SIGKILL."""
    import subprocess
    import sys

    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *cli_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=workdir)


def _await_banner(proc, pattern, timeout: float = 30.0):
    """Wait for ``pattern`` on a subprocess's stdout; keeps draining the
    pipe afterwards (a full pipe would wedge the child).  Returns the
    regex match."""
    import threading

    state = {"lines": []}
    found = threading.Event()

    def _drain():
        for line in proc.stdout:
            state["lines"].append(line)
            if "match" not in state:
                match = pattern.search(line)
                if match:
                    state["match"] = match
                    found.set()

    threading.Thread(target=_drain, daemon=True).start()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if found.wait(timeout=0.05):
            return state["match"]
        if proc.poll() is not None and not found.is_set():
            break
    raise RuntimeError(
        f"subprocess did not announce itself within {timeout:.0f}s; "
        "output so far:\n" + "".join(state["lines"]))


def _http_json(method: str, url: str, payload=None, timeout: float = 10.0):
    """Tiny urllib JSON client; HTTP errors come back as (status, body)
    rather than exceptions -- scenarios assert on both."""
    import json
    import urllib.error
    import urllib.request

    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


_SERVICE_KNOBS = ("max_injection_steps", "max_sites_per_step",
                  "max_values_per_site", "seed", "keep_records",
                  "max_steps")

#: Injection steps for the job the service is SIGKILLed under: big
#: enough that the kill reliably lands mid-campaign.
_VICTIM_STEPS = 24


def _scenario_kill_service(program, config, jobs, workdir,
                           kernel: str = "adpcm") -> ScenarioResult:
    """SIGKILL ``talft serve --state-dir`` mid-job; restart with the same
    state directory; the resumed job's published fingerprint and latency
    buckets must equal an uninterrupted in-process run, and the queued
    and settled jobs must survive the restart."""
    import re
    import signal as _signal

    from repro.workloads import compile_kernel

    state_dir = os.path.join(workdir, "state")
    base_knobs = {knob: getattr(config, knob) for knob in _SERVICE_KNOBS}
    small = dict(base_knobs, max_injection_steps=3)
    victim = dict(base_knobs, max_injection_steps=_VICTIM_STEPS)
    banner = re.compile(r"service on http://([0-9.]+):(\d+)")

    def _start():
        proc = _spawn_talft(["serve", "--serve-port", "0",
                             "--state-dir", state_dir], workdir)
        try:
            match = _await_banner(proc, banner)
        except RuntimeError:
            proc.kill()
            proc.wait()
            raise
        return proc, f"http://{match.group(1)}:{match.group(2)}"

    def _submit(base, knobs):
        status, body = _http_json("POST", base + "/jobs",
                                  {"kernel": kernel, "config": knobs})
        if status != 202:
            raise RuntimeError(f"submission refused: {status} {body}")
        return body["id"]

    def _poll(base, job_id, until, timeout=180.0, interval=0.02):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, job = _http_json("GET", f"{base}/jobs/{job_id}")
            if until(job):
                return job
            time.sleep(interval)
        raise RuntimeError(f"{job_id} did not reach the awaited state "
                           f"within {timeout:.0f}s (last: {job})")

    settled_states = ("done", "error", "cancelled")
    kill_progress = None

    # Round one: a settled job, a long victim, a queued job -- then die.
    proc, base = _start()
    try:
        settled_id = _submit(base, small)
        settled_before = _poll(
            base, settled_id, lambda job: job["status"] in settled_states)
        victim_id = _submit(base, victim)
        queued_id = _submit(base, small)

        def _mid_flight(job):
            progress = job["progress"]
            return (job["status"] in settled_states or
                    (job["status"] == "running" and
                     0 < progress["done"] < (progress["total"] or 0)))

        victim_job = _poll(base, victim_id, _mid_flight)
        if victim_job["status"] == "running":
            kill_progress = victim_job["progress"]["done"]
            proc.send_signal(_signal.SIGKILL)
    finally:
        if proc.poll() is None and kill_progress is None:
            proc.kill()
        proc.wait(timeout=30)
    if kill_progress is None:
        return ScenarioResult(
            "kill-service", False, None,
            f"victim job settled as {victim_job['status']} before the "
            "SIGKILL landed; no mid-job crash was exercised")

    # Round two: same state dir; everything must come back.
    proc, base = _start()
    try:
        resumed = _poll(base, victim_id,
                        lambda job: job["status"] in settled_states)
        queued_after = _poll(base, queued_id,
                             lambda job: job["status"] in settled_states)
        _, survivor = _http_json("GET", f"{base}/jobs/{settled_id}")
    finally:
        proc.send_signal(_signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except Exception:
            proc.kill()
            proc.wait()

    reference = run_campaign(compile_kernel(kernel, "ft").program,
                             CampaignConfig(**victim))
    expected_buckets = {str(bucket): count for bucket, count
                        in sorted(reference.latency_buckets.items())}
    complaints = []
    if resumed["status"] != "done":
        complaints.append(f"victim settled {resumed['status']} "
                          f"({resumed.get('error')})")
    else:
        if resumed["result"]["fingerprint"] != fingerprint_digest(reference):
            complaints.append("resumed fingerprint differs from the "
                              "uninterrupted run")
        if resumed["result"]["latency_buckets"] != expected_buckets:
            complaints.append("resumed latency buckets differ from the "
                              "uninterrupted run")
    if queued_after["status"] != "done":
        complaints.append(f"queued job settled {queued_after['status']} "
                          f"after the restart ({queued_after.get('error')})")
    if survivor.get("status") != "done" or \
            survivor.get("result") != settled_before["result"]:
        complaints.append("the pre-crash settled job did not survive the "
                          "restart intact")
    resumed_steps = ((resumed.get("result") or {}).get("resilience") or
                     {}).get("resumed_steps", 0)
    detail = (f"SIGKILLed at step {kill_progress}/{_VICTIM_STEPS}, "
              f"restart replayed {resumed_steps} journaled step(s); "
              "queued and settled jobs survived")
    if complaints:
        detail = "MISMATCH: " + "; ".join(complaints)
    return ScenarioResult("kill-service", not complaints, None, detail)


def _scenario_kill_remote_shard_worker(program, config, jobs, workdir
                                       ) -> ScenarioResult:
    """SIGKILL a real TCP ``talft shard-worker`` subprocess mid-shard
    (PR 8's chaos killed a locally *forked* fleet member; this one dies
    across a genuine process and socket boundary)."""
    import re
    import signal as _signal

    from repro.service import run_campaign_sharded

    reference = run_campaign(program, config, jobs=1)
    banner = re.compile(r"shard-worker listening on ([0-9.]+):(\d+)")
    procs = []
    workers = []
    killed_rc = None
    try:
        for _ in range(2):
            proc = _spawn_talft(["shard-worker", "--listen", "127.0.0.1:0",
                                 "--once"], workdir)
            try:
                match = _await_banner(proc, banner)
            except RuntimeError:
                proc.kill()
                proc.wait()
                raise
            procs.append(proc)
            workers.append((match.group(1), int(match.group(2))))
        chaotic = run_campaign_sharded(
            program, config, shards=max(2, jobs), workers=workers,
            resilience=ResilienceConfig(max_retries=3, backoff_base=0.01),
            chaos=ChaosSpec(kill_shard_worker=0, kill_shard_after_steps=1),
        )
        killed_rc = procs[0].wait(timeout=30)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    result = _compare(
        "kill-remote-shard-worker", reference, chaotic, chaotic.resilience,
        expect=lambda stats: (
            "" if stats.shard_worker_deaths
            else "no shard worker death was observed"),
    )
    if result.matches and killed_rc != -_signal.SIGKILL:
        return ScenarioResult(
            result.scenario, False, result.stats,
            f"doomed worker exited with {killed_rc}, not SIGKILL; "
            + result.detail)
    result.detail = (f"remote worker died with SIGKILL mid-shard; "
                     + result.detail)
    return result


def _scenario_recovery(program, config, jobs, workdir) -> ScenarioResult:
    """Machine-level chaos: an SEU under the recovering executor."""
    from repro.core.faults import RegZap
    from repro.recovery import RecoveringMachine

    fault_free = RecoveringMachine(program, checkpoint_interval=16).run()
    faulted = RecoveringMachine(program, checkpoint_interval=16).run(
        fault=RegZap("r1", 0xBAD), fault_at_step=3)
    matches = (faulted.outputs == fault_free.outputs
               and faulted.outcome == fault_free.outcome)
    detail = (f"recoveries: {faulted.recoveries}, replayed steps: "
              f"{faulted.replayed_steps}")
    if not matches:
        detail = "MISMATCH: recovered outputs differ; " + detail
    return ScenarioResult("recovery", matches, None, detail)


SCENARIOS: Dict[str, _Scenario] = {
    scenario.name: scenario for scenario in (
        _Scenario("kill-worker", _scenario_kill_worker,
                  "SIGKILL a pool worker mid-chunk; supervisor rebuilds"),
        _Scenario("delay-chunk", _scenario_delay_chunk,
                  "stall a chunk past its deadline; supervisor retries"),
        _Scenario("truncate-journal", _scenario_truncate_journal,
                  "crash-truncate the journal tail; --resume recomputes"),
        _Scenario("corrupt-journal", _scenario_corrupt_journal,
                  "flip a journal checksum; resume skips and recomputes"),
        _Scenario("kill-shard-worker", _scenario_kill_shard_worker,
                  "SIGKILL a shard-fleet worker; coordinator reissues"),
        _Scenario("kill-remote-shard-worker",
                  _scenario_kill_remote_shard_worker,
                  "SIGKILL a real TCP shard-worker subprocess mid-shard"),
        _Scenario("kill-service", _scenario_kill_service,
                  "SIGKILL talft serve mid-job; restart resumes "
                  "bit-identically", needs_kernel=True),
        _Scenario("recovery", _scenario_recovery,
                  "SEU under the recovering executor; outputs identical"),
    )
}


def run_scenarios(
    program: Program,
    scenarios: List[str],
    config: Optional[CampaignConfig] = None,
    jobs: int = 2,
    workdir: Optional[str] = None,
    kernel: Optional[str] = None,
) -> List[ScenarioResult]:
    """Run the named chaos scenarios against ``program``.

    Each scenario gets a private subdirectory of ``workdir`` (a temporary
    directory when omitted) for journals and one-shot chaos markers.
    ``kernel`` names the target for scenarios that drive the campaign
    service (jobs are submitted by kernel name over HTTP); scenarios
    flagged ``needs_kernel`` refuse to run without it.
    """
    import tempfile

    config = config or CampaignConfig(
        max_injection_steps=12, max_sites_per_step=6,
        max_values_per_site=2, seed=20260806,
        max_steps=1_000_000,  # covers the longest kernel (gzip, ~312k)
    )
    results = []
    with tempfile.TemporaryDirectory() as fallback_dir:
        base = workdir or fallback_dir
        for name in scenarios:
            if name not in SCENARIOS:
                raise ValueError(
                    f"unknown chaos scenario {name!r}; known: "
                    f"{', '.join(sorted(SCENARIOS))}")
            scenario = SCENARIOS[name]
            scenario_dir = os.path.join(base, name.replace("-", "_"))
            os.makedirs(scenario_dir, exist_ok=True)
            if scenario.needs_kernel:
                if kernel is None:
                    raise ValueError(
                        f"chaos scenario {name!r} drives the campaign "
                        "service and needs a kernel-name target")
                results.append(scenario.run(program, config, jobs,
                                            scenario_dir, kernel=kernel))
            else:
                results.append(scenario.run(program, config, jobs,
                                            scenario_dir))
    return results
