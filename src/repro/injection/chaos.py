"""Infrastructure chaos harness: fault-inject the campaign runtime itself.

TAL_FT injects faults into the *machine under test* and proves the report
is unaffected; this module does the same to the **campaign
infrastructure** -- the process pool, the scheduler, the journal file --
and asserts the final :class:`~repro.injection.campaign.CampaignReport`
still comes out bit-identical to an uninterrupted serial run.  The
harness treats the runtime as part of the threat model, mirroring the
infrastructure-fault framing of symbolic fault-attack work (PAPERS.md):
a fault-tolerance *claim* about the harness is only worth what the
harness survives.

Scenarios (CLI: ``talft chaos``):

* ``kill-worker`` -- a pool worker SIGKILLs itself at the start of a
  chunk (exactly once); the supervisor must detect the broken pool,
  harvest finished chunks, rebuild, and re-execute the remainder;
* ``delay-chunk`` -- a worker stalls one chunk past its deadline; the
  supervisor must time the chunk out, recycle the pool and retry;
* ``truncate-journal`` -- a completed journal loses its tail (including a
  torn half-line, as a crash mid-``write`` leaves); ``--resume`` must
  recompute exactly the missing steps;
* ``corrupt-journal`` -- a journal line's payload is flipped so its
  checksum fails; resume must skip it with a warning and recompute;
* ``recovery`` -- the machine-level analog: the recovering executor
  (:mod:`repro.recovery`) must reproduce the fault-free output sequence
  under an injected SEU, tying the two recovery layers together.

Worker-side behaviors are one-shot: the first worker to reach the marked
chunk claims an ``O_CREAT | O_EXCL`` marker file and misbehaves; every
re-execution of that chunk (after the pool rebuild) sees the marker and
runs clean.  That makes scenarios deterministic without any cross-process
coordination beyond the filesystem.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.injection.campaign import (
    CampaignConfig,
    CampaignReport,
    run_campaign,
)
from repro.injection.resilience import ResilienceConfig, ResilienceStats
from repro.program import Program


@dataclass
class ChaosSpec:
    """Infrastructure faults to inject into pool workers.

    Picklable (it rides the pool initializer into every worker).  Marker
    files under ``marker_dir`` make each behavior one-shot across pool
    rebuilds.
    """

    #: Chunk index whose worker SIGKILLs itself (first execution only).
    kill_chunk: Optional[int] = None
    #: Chunk index whose worker stalls (first execution only).
    delay_chunk: Optional[int] = None
    #: Stall duration, seconds.
    delay_seconds: float = 0.0
    #: Directory for the one-shot marker files (required when any
    #: worker-side behavior is set).
    marker_dir: str = ""
    #: Sharded campaigns: fleet worker index that SIGKILLs itself
    #: mid-shard.  The coordinator embeds the directive in that worker's
    #: job message; the worker dies right after streaming its
    #: ``kill_shard_after_steps``-th step result.  One-shot by
    #: construction -- dead shard workers are never respawned, the
    #: coordinator reissues their unfinished steps elsewhere.
    kill_shard_worker: Optional[int] = None
    #: Step results the doomed shard worker sends before dying.
    kill_shard_after_steps: int = 1

    def apply_in_worker(self, chunk_index: int) -> None:
        """Called by the worker at the start of every chunk."""
        if self.kill_chunk == chunk_index and self._claim("kill"):
            os.kill(os.getpid(), signal.SIGKILL)
        if self.delay_chunk == chunk_index and self._claim("delay"):
            time.sleep(self.delay_seconds)

    def _claim(self, name: str) -> bool:
        path = os.path.join(self.marker_dir, f"chaos-{name}.marker")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True


# ---------------------------------------------------------------------------
# Journal tampering
# ---------------------------------------------------------------------------


def truncate_journal_tail(path: str, lines: int = 1,
                          torn_bytes: int = 0) -> int:
    """Drop the last ``lines`` journal lines; optionally leave the first
    ``torn_bytes`` bytes of the next-dropped line behind as a torn write
    (no trailing newline), exactly what a crash mid-append produces.
    Returns how many complete lines were removed."""
    with open(path) as handle:
        content = handle.readlines()
    kept = content[:-lines] if lines else list(content)
    removed = len(content) - len(kept)
    with open(path, "w") as handle:
        handle.writelines(kept)
        if torn_bytes and removed:
            handle.write(content[len(kept)][:torn_bytes])
    return removed


def corrupt_journal_line(path: str, line_index: int = -1) -> None:
    """Flip a digit inside one line's payload so its checksum fails."""
    with open(path) as handle:
        content = handle.readlines()
    line = content[line_index]
    for position, char in enumerate(line):
        if char.isdigit():
            flipped = "1" if char != "1" else "2"
            content[line_index] = (line[:position] + flipped
                                   + line[position + 1:])
            break
    with open(path, "w") as handle:
        handle.writelines(content)


# ---------------------------------------------------------------------------
# Parity checking
# ---------------------------------------------------------------------------


def report_fingerprint(report: CampaignReport) -> Tuple:
    """Everything the bit-identical contract covers: every record field,
    every classification, and the human-readable summary."""
    return (
        report.injections,
        tuple(sorted((key.value, value)
                     for key, value in report.counts.items())),
        tuple((r.step, r.fault, r.result, r.outputs, r.latency)
              for r in report.records),
        tuple((r.step, r.fault, r.result, r.outputs, r.latency)
              for r in report.violations),
        report.summary(),
    )


@dataclass
class ScenarioResult:
    """One chaos scenario's verdict."""

    scenario: str
    #: Did the chaotic run produce a bit-identical report?
    matches: bool
    #: What supervision/journaling reported doing.
    stats: Optional[ResilienceStats]
    #: Human-readable evidence ("retries: 1, ..." or a mismatch note).
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.matches


@dataclass
class _Scenario:
    name: str
    run: Callable[[Program, CampaignConfig, int, str], ScenarioResult]
    description: str = ""


def _compare(name: str, reference: CampaignReport, chaotic: CampaignReport,
             stats: Optional[ResilienceStats],
             expect: Callable[[Optional[ResilienceStats]], str] = None,
             ) -> ScenarioResult:
    matches = report_fingerprint(reference) == report_fingerprint(chaotic)
    detail = (stats.summary() if stats is not None else "")
    if not matches:
        detail = (f"MISMATCH: reference {reference.summary()!r} vs "
                  f"chaotic {chaotic.summary()!r}; " + detail)
    elif expect is not None:
        complaint = expect(stats)
        if complaint:
            matches = False
            detail = f"parity held but {complaint}; " + detail
    return ScenarioResult(name, matches, stats, detail)


def _scenario_kill_worker(program, config, jobs, workdir) -> ScenarioResult:
    reference = run_campaign(program, config, jobs=1)
    chaos = ChaosSpec(kill_chunk=1, marker_dir=workdir)
    chaotic = run_campaign(
        program, config, jobs=max(2, jobs),
        resilience=ResilienceConfig(max_retries=3, backoff_base=0.01),
        chaos=chaos,
    )
    return _compare(
        "kill-worker", reference, chaotic, chaotic.resilience,
        expect=lambda stats: (
            "" if stats.worker_crashes or stats.fallback_chunks
            else "no worker crash was observed"),
    )


def _scenario_delay_chunk(program, config, jobs, workdir) -> ScenarioResult:
    reference = run_campaign(program, config, jobs=1)
    chaos = ChaosSpec(delay_chunk=1, delay_seconds=2.0, marker_dir=workdir)
    chaotic = run_campaign(
        program, config, jobs=max(2, jobs),
        resilience=ResilienceConfig(chunk_timeout=0.5, max_retries=3,
                                    backoff_base=0.01),
        chaos=chaos,
    )
    return _compare(
        "delay-chunk", reference, chaotic, chaotic.resilience,
        expect=lambda stats: (
            "" if stats.timeouts or stats.fallback_chunks
            else "no chunk deadline expired"),
    )


def _scenario_truncate_journal(program, config, jobs, workdir
                               ) -> ScenarioResult:
    import warnings

    reference = run_campaign(program, config, jobs=1)
    journal_path = os.path.join(workdir, "truncate.journal")
    run_campaign(program, config, jobs=1, journal_path=journal_path)
    # Crash simulation: lose the last two records, leave a torn half-line.
    truncate_journal_tail(journal_path, lines=2, torn_bytes=25)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # the torn-tail skip is expected
        resumed = run_campaign(program, config, jobs=1,
                               journal_path=journal_path, resume=True)
    return _compare(
        "truncate-journal", reference, resumed, resumed.resilience,
        expect=lambda stats: (
            "" if stats.resumed_steps and stats.journaled_steps
            else "resume did not mix journaled and recomputed steps"),
    )


def _scenario_corrupt_journal(program, config, jobs, workdir
                              ) -> ScenarioResult:
    import warnings

    reference = run_campaign(program, config, jobs=1)
    journal_path = os.path.join(workdir, "corrupt.journal")
    run_campaign(program, config, jobs=1, journal_path=journal_path)
    corrupt_journal_line(journal_path, line_index=-1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # the skip warning is the point
        resumed = run_campaign(program, config, jobs=1,
                               journal_path=journal_path, resume=True)
    return _compare(
        "corrupt-journal", reference, resumed, resumed.resilience,
        expect=lambda stats: (
            "" if stats.corrupt_journal_lines
            else "the corrupt line went undetected"),
    )


def _scenario_kill_shard_worker(program, config, jobs, workdir
                                ) -> ScenarioResult:
    """SIGKILL one shard-fleet worker mid-campaign; the coordinator must
    reissue its unfinished tail and keep the merged report bit-identical."""
    from repro.service import run_campaign_sharded

    reference = run_campaign(program, config, jobs=1)
    chaos = ChaosSpec(kill_shard_worker=0, kill_shard_after_steps=1)
    chaotic = run_campaign_sharded(
        program, config, shards=max(2, jobs),
        resilience=ResilienceConfig(max_retries=3, backoff_base=0.01),
        chaos=chaos,
    )
    return _compare(
        "kill-shard-worker", reference, chaotic, chaotic.resilience,
        expect=lambda stats: (
            "" if stats.shard_worker_deaths
            else "no shard worker death was observed"),
    )


def _scenario_recovery(program, config, jobs, workdir) -> ScenarioResult:
    """Machine-level chaos: an SEU under the recovering executor."""
    from repro.core.faults import RegZap
    from repro.recovery import RecoveringMachine

    fault_free = RecoveringMachine(program, checkpoint_interval=16).run()
    faulted = RecoveringMachine(program, checkpoint_interval=16).run(
        fault=RegZap("r1", 0xBAD), fault_at_step=3)
    matches = (faulted.outputs == fault_free.outputs
               and faulted.outcome == fault_free.outcome)
    detail = (f"recoveries: {faulted.recoveries}, replayed steps: "
              f"{faulted.replayed_steps}")
    if not matches:
        detail = "MISMATCH: recovered outputs differ; " + detail
    return ScenarioResult("recovery", matches, None, detail)


SCENARIOS: Dict[str, _Scenario] = {
    scenario.name: scenario for scenario in (
        _Scenario("kill-worker", _scenario_kill_worker,
                  "SIGKILL a pool worker mid-chunk; supervisor rebuilds"),
        _Scenario("delay-chunk", _scenario_delay_chunk,
                  "stall a chunk past its deadline; supervisor retries"),
        _Scenario("truncate-journal", _scenario_truncate_journal,
                  "crash-truncate the journal tail; --resume recomputes"),
        _Scenario("corrupt-journal", _scenario_corrupt_journal,
                  "flip a journal checksum; resume skips and recomputes"),
        _Scenario("kill-shard-worker", _scenario_kill_shard_worker,
                  "SIGKILL a shard-fleet worker; coordinator reissues"),
        _Scenario("recovery", _scenario_recovery,
                  "SEU under the recovering executor; outputs identical"),
    )
}


def run_scenarios(
    program: Program,
    scenarios: List[str],
    config: Optional[CampaignConfig] = None,
    jobs: int = 2,
    workdir: Optional[str] = None,
) -> List[ScenarioResult]:
    """Run the named chaos scenarios against ``program``.

    Each scenario gets a private subdirectory of ``workdir`` (a temporary
    directory when omitted) for journals and one-shot chaos markers.
    """
    import tempfile

    config = config or CampaignConfig(
        max_injection_steps=12, max_sites_per_step=6,
        max_values_per_site=2, seed=20260806,
        max_steps=1_000_000,  # covers the longest kernel (gzip, ~312k)
    )
    results = []
    with tempfile.TemporaryDirectory() as fallback_dir:
        base = workdir or fallback_dir
        for name in scenarios:
            if name not in SCENARIOS:
                raise ValueError(
                    f"unknown chaos scenario {name!r}; known: "
                    f"{', '.join(sorted(SCENARIOS))}")
            scenario_dir = os.path.join(base, name.replace("-", "_"))
            os.makedirs(scenario_dir, exist_ok=True)
            results.append(
                SCENARIOS[name].run(program, config, jobs, scenario_dir))
    return results
