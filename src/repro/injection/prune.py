"""Fault-equivalence pruning: run one representative per outcome class.

Exhaustive SEU sweeps execute every (step, site, value) variant, yet most
variants are provably equivalent *before any lane is stepped*:

* **Masking analysis.**  A def-use walk over the cached reference
  schedule: a corrupted location that is overwritten (or never consulted)
  before its first semantic use cannot change the run.  All such faults
  at one injection step collapse into a single "no-effect" class whose
  outcome is the reference tail itself.
* **Detection congruence.**  The TAL_FT check rules are *total* on
  corrupt-vs-reference mismatches: a blue store compares both copies, the
  jump/branch protocol compares the announced and committed targets, and
  every fetch compares the two program counters.  Any corruption that
  reaches such a check with the "corrupt != reference" invariant intact
  is detected there regardless of the corrupt magnitude -- so all
  corruptions of a value reaching the same check share one
  "detected@step" class, detection-latency bucket included.
* **Outcome memoization.**  Per (program digest, config digest), a table
  keyed by (injection step, fault site, canonical replacement value)
  remembers executed outcomes.  The table is shared with worker pools
  (exported at pool start, new entries drained back with each chunk's
  telemetry) and persisted next to the campaign journal
  (``<journal>.memo``), so resumed or repeated campaigns skip even the
  representatives.

Only class representatives and unclassifiable faults execute on the
underlying engine (vector batch, compiled, or the interpreter, exactly
as an unpruned step would); every pruned member is assigned the class
prediction *after the representative's real execution confirmed it*, so
``CampaignReport`` stays bit-identical by construction.  A randomized
audit mode (``--prune-audit P``) re-executes a sampled fraction of the
pruned variants on the scalar engines and hard-fails
(:class:`PruneAuditError`) on any mismatch.

Soundness of the classifier rests on one invariant: between semantic
events, both the reference and the faulty run leave a corrupted location
untouched, so "corrupt value != reference value" holds at the next event
exactly when it held at the previous one.  The walk is deliberately
conservative: any event whose outcome depends on the corrupt *magnitude*
(an ALU read, a flipped branch condition, a store-queue scan that could
hit), any two entities whose next events collide on the same step (the
correlated-corruption hazard), and anything exotic returns "unclassified"
and runs for real.
"""

from __future__ import annotations

import json
import os
import random
import zlib
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.core.colors import Color
from repro.core.errors import MachineStuck, ReproError
from repro.core.instructions import (
    ArithRRI,
    ArithRRR,
    Bz,
    Halt,
    Jmp,
    Load,
    Mov,
    PlainBz,
    PlainJmp,
    PlainLoad,
    PlainStore,
    Store,
)
from repro.core.faults import (
    Fault,
    QueueZapAddress,
    QueueZapValue,
    RegZap,
    is_effective,
)
from repro.core.machine import Outcome, Trace
from repro.core.registers import DEST, PC_B, PC_G
from repro.core.semantics import OobPolicy, step as _semantics_step
from repro.core.state import MachineState, Status
from repro.exec.cache import code_fingerprint, get_aux
from repro.observe import get_registry


class PruneAuditError(ReproError):
    """A pruned variant's re-execution disagreed with its class
    prediction -- the pruning analysis is unsound for this program and
    must not be trusted (run with ``--no-prune`` and report the case)."""


# ---------------------------------------------------------------------------
# Reference-schedule analysis
# ---------------------------------------------------------------------------

#: Register event kinds, in increasing "gives up more" order.
#: READ: the corrupt magnitude flows into data/control -- unclassified.
#: CHECK: a TAL_FT check that detects any corrupt != reference value.
#: WRITE: the location is overwritten with a reference value -- the
#: corruption dies.
#: LOADADDR: the corrupt value is used as a load address (classifiable
#: when it cannot alias any address the run ever maps).
#: SPAWN_*: a green store / green jump copies the corruption into a new
#: location (a store-queue pair, the destination register) while the
#: source stays live.
(EV_READ, EV_CHECK, EV_WRITE, EV_LOADADDR,
 EV_SPAWN_DEST, EV_SPAWN_ADDR, EV_SPAWN_VAL, EV_SPAWN_BOTH) = range(8)

#: Store-queue event kinds (one per queue-touching instruction).
QE_PUSH, QE_POP, QE_SCAN = range(3)


class PruneAnalysis:
    """Per-program def-use/check schedule for the masking and
    detection-congruence analyses.

    ``reg_events[name]`` is a pair of parallel lists ``(steps, kinds)``
    sorted by step: the first semantic touch of that register at each
    execute step that touches it.  ``queue_steps``/``queue_events`` record
    every queue-touching instruction chronologically.  ``universe`` is
    every address that can ever be mapped (boot memory and queue, plus
    every green/plain store address): a corrupt load address outside it
    is guaranteed out-of-bounds.
    """

    __slots__ = ("reg_names", "pcs", "instrs", "reg_events", "queue_steps",
                 "queue_events", "universe", "steps")

    def __init__(self, reg_names, pcs, instrs, reg_events, queue_steps,
                 queue_events, universe, steps):
        self.reg_names = reg_names
        self.pcs = pcs
        self.instrs = instrs
        self.reg_events = reg_events
        self.queue_steps = queue_steps
        self.queue_events = queue_events
        self.universe = universe
        self.steps = steps


def _build_analysis(
    boot: MachineState,
    oob_policy: OobPolicy,
    expected_steps: int,
) -> Optional[PruneAnalysis]:
    """Replay the fault-free run, recording per-register semantic events.

    Mirrors the event order of :mod:`repro.core.semantics` exactly; the
    first touch of a register within one instruction wins (``add r1, r1,
    r2`` *reads* the corrupt r1 before overwriting it).  Returns ``None``
    for anything the classifier should not reason about (non-halting
    runs, unknown instruction shapes, a reference that would fault).
    """
    state = boot.clone()
    if state.ir is not None or state.status is not Status.RUNNING:
        return None
    reg_names = tuple(state.regs._regs)
    reg_events: Dict[str, Tuple[List[int], List[int]]] = {}
    queue_steps: List[int] = []
    queue_events: List[tuple] = []
    universe = set(state.memory)
    for address, _value in state.queue.pairs():
        universe.add(address)
    pcs: List[int] = []
    instrs: List = []
    steps = 0
    regs = state.regs

    def rec(seen, t, name, kind):
        if name in seen:
            return
        seen.add(name)
        lists = reg_events.get(name)
        if lists is None:
            lists = ([], [])
            reg_events[name] = lists
        lists[0].append(t)
        lists[1].append(kind)

    while steps < expected_steps and state.status is Status.RUNNING:
        pc = regs._regs[PC_G][1]
        try:
            _semantics_step(state, oob_policy)  # fetch
        except (MachineStuck, ReproError):
            return None
        steps += 1
        instr = state.ir
        if instr is None:  # fetch-fail: the reference faulted
            return None
        t = steps  # 0-based index of the execute step about to run
        pcs.append(pc)
        instrs.append(instr)
        seen: set = set()
        if isinstance(instr, ArithRRR):
            rec(seen, t, instr.rs, EV_READ)
            rec(seen, t, instr.rt, EV_READ)
            rec(seen, t, instr.rd, EV_WRITE)
        elif isinstance(instr, ArithRRI):
            rec(seen, t, instr.rs, EV_READ)
            rec(seen, t, instr.rd, EV_WRITE)
        elif isinstance(instr, Mov):
            rec(seen, t, instr.rd, EV_WRITE)
        elif isinstance(instr, Load):
            if instr.color is Color.GREEN:
                address = regs._regs[instr.rs][1]
                hit = -1
                for index, pair in enumerate(state.queue.pairs()):
                    if pair[0] == address:
                        hit = index
                        break
                queue_steps.append(t)
                queue_events.append((QE_SCAN, address, hit))
            rec(seen, t, instr.rs, EV_LOADADDR)
            rec(seen, t, instr.rd, EV_WRITE)
        elif isinstance(instr, Store):
            if instr.color is Color.GREEN:
                universe.add(regs._regs[instr.rd][1])
                if instr.rd == instr.rs:
                    rec(seen, t, instr.rd, EV_SPAWN_BOTH)
                else:
                    rec(seen, t, instr.rd, EV_SPAWN_ADDR)
                    rec(seen, t, instr.rs, EV_SPAWN_VAL)
                queue_steps.append(t)
                queue_events.append((QE_PUSH,))
            else:
                qlen = len(state.queue)
                if qlen == 0:  # the reference would fault here
                    return None
                rec(seen, t, instr.rd, EV_CHECK)
                rec(seen, t, instr.rs, EV_CHECK)
                queue_steps.append(t)
                queue_events.append((QE_POP, qlen))
        elif isinstance(instr, Jmp):
            if instr.color is Color.GREEN:
                rec(seen, t, DEST, EV_CHECK)
                rec(seen, t, instr.rd, EV_SPAWN_DEST)
            else:
                if instr.rd == DEST:
                    # Degenerate blue jump: the check compares the
                    # register against itself, so a nonzero corruption
                    # passes and the machine jumps to it.
                    rec(seen, t, DEST, EV_READ)
                else:
                    rec(seen, t, DEST, EV_CHECK)
                    rec(seen, t, instr.rd, EV_CHECK)
                rec(seen, t, PC_G, EV_WRITE)
                rec(seen, t, PC_B, EV_WRITE)
        elif isinstance(instr, Bz):
            rec(seen, t, instr.rz, EV_READ)
            if regs._regs[instr.rz][1] != 0:  # reference falls through
                rec(seen, t, DEST, EV_CHECK)
            elif instr.color is Color.GREEN:
                rec(seen, t, DEST, EV_CHECK)
                rec(seen, t, instr.rd, EV_SPAWN_DEST)
            else:
                if instr.rd == DEST:
                    rec(seen, t, DEST, EV_READ)
                else:
                    rec(seen, t, DEST, EV_CHECK)
                    rec(seen, t, instr.rd, EV_CHECK)
                rec(seen, t, PC_G, EV_WRITE)
                rec(seen, t, PC_B, EV_WRITE)
        elif isinstance(instr, Halt):
            pass
        elif isinstance(instr, PlainLoad):
            rec(seen, t, instr.rs, EV_LOADADDR)
            rec(seen, t, instr.rd, EV_WRITE)
        elif isinstance(instr, PlainStore):
            universe.add(regs._regs[instr.rd][1])
            rec(seen, t, instr.rd, EV_READ)
            rec(seen, t, instr.rs, EV_READ)
        elif isinstance(instr, PlainJmp):
            rec(seen, t, instr.rd, EV_READ)
            rec(seen, t, PC_G, EV_WRITE)
            rec(seen, t, PC_B, EV_WRITE)
        elif isinstance(instr, PlainBz):
            rec(seen, t, instr.rz, EV_READ)
            if regs._regs[instr.rz][1] == 0:  # reference takes the branch
                rec(seen, t, instr.rd, EV_READ)
                rec(seen, t, PC_G, EV_WRITE)
                rec(seen, t, PC_B, EV_WRITE)
        else:
            return None
        if steps >= expected_steps:
            return None  # reference cannot end between fetch and execute
        try:
            _semantics_step(state, oob_policy)  # execute
        except (MachineStuck, ReproError):
            return None
        steps += 1
    if steps != expected_steps or state.status is not Status.HALTED:
        return None
    return PruneAnalysis(reg_names, pcs, instrs, reg_events, queue_steps,
                         queue_events, frozenset(universe), steps)


#: Negative-cache marker (``get_aux`` treats ``None`` as a miss).
_UNSUPPORTED = object()


def analysis_for(
    boot: MachineState,
    oob_policy: OobPolicy,
    expected_steps: int,
) -> Optional[PruneAnalysis]:
    """The cached :class:`PruneAnalysis` for ``boot``'s program, or
    ``None``.  Keyed exactly like the vector backend's schedule cache:
    program fingerprint plus the boot observables that determine the
    reference run."""
    try:
        signature = (
            tuple(cv[1] for cv in boot.regs._regs.values()),
            tuple(sorted(boot.memory.items())),
            boot.queue.pairs(),
            boot.observable_min,
        )
        key = (code_fingerprint(boot.code), oob_policy, "prune-analysis",
               signature)
    except TypeError:  # unhashable exotic state: just decline
        return None
    built = get_aux(
        key,
        lambda: _build_analysis(boot, oob_policy, expected_steps)
        or _UNSUPPORTED,
    )
    return None if built is _UNSUPPORTED else built


# ---------------------------------------------------------------------------
# Per-fault classification
# ---------------------------------------------------------------------------

#: Entity caps: a fault tracks at most this many corrupt locations (the
#: original plus spawned copies) for at most this many event rounds
#: before the walk gives up and the fault runs for real.
_MAX_ENTITIES = 3
_MAX_ROUNDS = 64


def _reg_next_event(analysis: PruneAnalysis, name: str, cursor: int):
    """The register's next semantic event at or after ``cursor``, as
    ``(step, kind)``; for the program counters the ubiquitous fetch
    comparison is an analytic CHECK at the next even step."""
    lists = analysis.reg_events.get(name)
    sparse = None
    if lists is not None:
        steps, kinds = lists
        index = bisect_left(steps, cursor)
        if index < len(steps):
            sparse = (steps[index], kinds[index])
    if name == PC_G or name == PC_B:
        fetch = cursor if cursor % 2 == 0 else cursor + 1
        # Execute events sit on odd steps, fetches on even ones -- no tie.
        if fetch < analysis.steps and (sparse is None or fetch < sparse[0]):
            return (fetch, EV_CHECK)
    return sparse


def _pair_next_event(analysis: PruneAnalysis, entity: List):
    """Walk the corrupt queue pair through the reference queue events,
    consuming transparent ones (pushes ahead of it, pops and scans that
    cannot see it) in place.  Returns the next *significant* event:
    EV_CHECK when the blue-store compare pops the corrupt pair (always a
    mismatch -- the registers hold reference values or their own entity
    would collide on the same step), EV_READ when a green-load scan could
    observe the corruption, or ``None`` when it stays buried until halt.
    """
    queue_steps = analysis.queue_steps
    queue_events = analysis.queue_events
    index = bisect_left(queue_steps, entity[4])
    while index < len(queue_steps):
        step = queue_steps[index]
        event = queue_events[index]
        kind = event[0]
        if kind == QE_PUSH:
            entity[1] += 1
        elif kind == QE_POP:
            if entity[1] == event[1] - 1:
                return (step, EV_CHECK)
        else:  # QE_SCAN(address, hit)
            address, hit = event[1], event[2]
            if not (hit >= 0 and entity[1] > hit):
                # The scan reaches our position before stopping.
                if entity[2]:  # corrupt address component
                    # Either the reference hit this pair (the corrupt
                    # address now misses) or the corrupt address aliases
                    # the scanned one (a spurious hit): divergence.
                    if entity[1] == hit or entity[3] == address:
                        return (step, EV_READ)
                elif entity[1] == hit:
                    # Address intact, so the scan still hits -- and
                    # returns the corrupt value.
                    return (step, EV_READ)
        entity[4] = step + 1
        index += 1
    return None


def classify_fault(
    analysis: PruneAnalysis,
    fault: Fault,
    step_index: int,
    oob_trap: bool,
) -> Optional[tuple]:
    """Classify one *effective* fault injected before ``step_index``.

    Returns ``("masked",)`` (the corruption provably never reaches an
    observable), ``("det", t)`` (a TAL_FT check detects it at step ``t``
    with certainty), or ``None`` (run it for real).
    """
    if isinstance(fault, RegZap):
        entities: List[List] = [["r", fault.reg, fault.new_value, step_index]]
    elif isinstance(fault, QueueZapAddress):
        entities = [["q", fault.index, True, fault.new_value, step_index]]
    elif isinstance(fault, QueueZapValue):
        entities = [["q", fault.index, False, fault.new_value, step_index]]
    else:
        return None
    for _round in range(_MAX_ROUNDS):
        if not entities:
            return ("masked",)
        live: List[Tuple[tuple, List]] = []
        for entity in entities:
            if entity[0] == "r":
                event = _reg_next_event(analysis, entity[1], entity[3])
            else:
                event = _pair_next_event(analysis, entity)
            if event is not None:
                live.append((event, entity))
        if not live:
            return ("masked",)
        live.sort(key=lambda item: item[0][0])
        if len(live) > 1 and live[0][0][0] == live[1][0][0]:
            # Two corrupt locations reach events on the same step: their
            # effects can correlate (e.g. both copies of a blue store
            # corrupted identically would *pass* the compare).  Decline.
            return None
        (step, kind), entity = live[0]
        entities = [item[1] for item in live]
        if kind == EV_WRITE:
            entities.remove(entity)
            continue
        if kind == EV_CHECK:
            return ("det", step)
        if kind == EV_READ:
            return None
        if kind == EV_LOADADDR:
            if oob_trap and entity[2] not in analysis.universe:
                return ("det", step)
            return None
        # Spawns: the corruption is copied into a new location while the
        # source stays live; both continue past this step.
        if len(entities) >= _MAX_ENTITIES:
            return None
        value = entity[2]
        entity[3] = step + 1
        if kind == EV_SPAWN_DEST:
            entities.append(["r", DEST, value, step + 1])
        elif kind == EV_SPAWN_VAL:
            entities.append(["q", 0, False, value, step + 1])
        else:  # EV_SPAWN_ADDR / EV_SPAWN_BOTH: the address-corrupt walk
            # is exact for both (transparent paths never consult the
            # value component).
            entities.append(["q", 0, True, value, step + 1])
    return None


# ---------------------------------------------------------------------------
# Outcome memo table
# ---------------------------------------------------------------------------

_MEMO_MAGIC = "talft-prune-memo"
_MEMO_VERSION = 1

#: Hard cap per memo table: beyond it new outcomes simply are not
#: remembered (lookups keep working), bounding worst-case memory.
MEMO_MAX_ENTRIES = 500_000


class OutcomeMemo:
    """One campaign identity's memoized outcomes.

    Keys are ``(step_index, site_tag, site, value)``; values are the
    JSON-portable encoding of ``(result, output tail, steps)`` produced
    by :func:`_encode_value` -- portable across processes (pool export /
    drain) and across runs (the ``.memo`` sidecar file).
    """

    __slots__ = ("table", "pending", "track_new")

    def __init__(self):
        self.table: Dict[tuple, list] = {}
        #: Entries recorded since the last drain (worker processes only;
        #: ``track_new`` stays False in the parent so the list is empty).
        self.pending: List[Tuple[tuple, list]] = []
        self.track_new = False

    def lookup(self, key: tuple):
        return self.table.get(key)

    def record(self, key: tuple, value: list) -> None:
        if key in self.table or len(self.table) >= MEMO_MAX_ENTRIES:
            return
        self.table[key] = value
        if self.track_new:
            self.pending.append((key, value))


#: Memo tables by (program digest, config digest), a small LRU: campaigns
#: rarely interleave more than a couple of identities per process.
_MEMO_TABLES: Dict[Tuple[str, str], OutcomeMemo] = {}
_MEMO_TABLES_MAX = 4


def _identity(program, config) -> Tuple[str, str]:
    from repro.injection.journal import config_digest, program_digest

    return (program_digest(program), config_digest(config))


def memo_for(program, config) -> OutcomeMemo:
    identity = _identity(program, config)
    memo = _MEMO_TABLES.get(identity)
    if memo is None:
        while len(_MEMO_TABLES) >= _MEMO_TABLES_MAX:
            _MEMO_TABLES.pop(next(iter(_MEMO_TABLES)))
        memo = OutcomeMemo()
        _MEMO_TABLES[identity] = memo
    else:
        # Refresh LRU position.
        _MEMO_TABLES[identity] = _MEMO_TABLES.pop(identity)
    return memo


def _fault_key(step_index: int, fault: Fault) -> Optional[tuple]:
    if isinstance(fault, RegZap):
        return (step_index, "R", fault.reg, fault.new_value)
    if isinstance(fault, QueueZapAddress):
        return (step_index, "QA", fault.index, fault.new_value)
    if isinstance(fault, QueueZapValue):
        return (step_index, "QV", fault.index, fault.new_value)
    return None


def _encode_value(result, outputs, steps, ref_tail) -> list:
    if outputs == ref_tail:
        encoded: object = "="
    else:
        encoded = [[address, value] for address, value in outputs]
    return [result.value, encoded, steps]


def _decode_value(data, ref_tail):
    """Decode a memo value, tolerantly: malformed entries (a corrupted
    sidecar file, a future format) decode to ``None`` and the fault
    simply runs."""
    from repro.injection.campaign import FaultResult

    try:
        result = FaultResult(data[0])
        encoded = data[1]
        steps = int(data[2])
        if encoded == "=":
            outputs = ref_tail
        else:
            outputs = tuple((int(a), int(v)) for a, v in encoded)
    except (ValueError, TypeError, IndexError, KeyError):
        return None
    return (result, outputs, steps)


def export_entries(program, config) -> List[Tuple[tuple, list]]:
    """Snapshot the memo table for shipping to worker pools."""
    return list(memo_for(program, config).table.items())


def absorb_entries(program, config, entries) -> None:
    """Merge entries from a peer process (pool init or chunk drain)."""
    if not entries:
        return
    memo = memo_for(program, config)
    record = memo.record
    for key, value in entries:
        record(tuple(key), value)


def drain_new_entries(program, config) -> List[Tuple[tuple, list]]:
    """New entries recorded since the last drain (worker telemetry)."""
    memo = memo_for(program, config)
    pending = memo.pending
    memo.pending = []
    return pending


def enable_tracking(program, config) -> None:
    """Start recording new entries for draining (worker processes)."""
    memo_for(program, config).track_new = True


def _memo_frame(payload) -> str:
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(encoded.encode()) & 0xFFFFFFFF
    return f'{{"crc":"{crc:08x}","d":{encoded}}}\n'


def _memo_unframe(line: str):
    from repro.injection.journal import _unframe

    return _unframe(line)


def save_memo(path: str, program, config) -> None:
    """Persist the memo table next to the journal (temp file + atomic
    rename, so a crash mid-save leaves the previous file intact)."""
    identity = _identity(program, config)
    memo = _MEMO_TABLES.get(identity)
    if memo is None or not memo.table:
        return
    temp_path = path + ".tmp"
    with open(temp_path, "w") as handle:
        handle.write(_memo_frame({
            "magic": _MEMO_MAGIC, "version": _MEMO_VERSION,
            "program": identity[0], "config": identity[1],
        }))
        for key, value in memo.table.items():
            handle.write(_memo_frame([list(key), value]))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, path)


def load_memo(path: str, program, config) -> int:
    """Load a persisted memo table, returning the entry count absorbed.

    The memo is a pure cache: a missing file, a different identity
    header, or corrupt lines silently load as empty -- never an error
    (unlike the journal, whose mismatch is a correctness hazard).
    """
    if not os.path.exists(path):
        return 0
    identity = _identity(program, config)
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError:
        return 0
    header_seen = False
    loaded = 0
    memo = memo_for(program, config)
    for line in lines:
        payload = _memo_unframe(line)
        if payload is None:
            continue
        if not header_seen:
            if not (isinstance(payload, dict)
                    and payload.get("magic") == _MEMO_MAGIC
                    and payload.get("version") == _MEMO_VERSION
                    and payload.get("program") == identity[0]
                    and payload.get("config") == identity[1]):
                return 0
            header_seen = True
            continue
        try:
            key = tuple(payload[0])
            value = payload[1]
        except (TypeError, IndexError):
            continue
        memo.record(key, value)
        loaded += 1
    return loaded


# ---------------------------------------------------------------------------
# The pruned step driver
# ---------------------------------------------------------------------------


def run_step_pruned(
    program,
    config,
    reference,
    budget: int,
    step_index: int,
    base: MachineState,
    faults: List[Fault],
) -> Optional[List]:
    """One injection step with equivalence pruning and memoization.

    Returns the step's outcomes in fault order -- element-for-element
    equal to the unpruned engines' -- or ``None`` when the program
    resists analysis and the caller must run the step unpruned.
    """
    from repro.injection.campaign import (
        FaultResult,
        _run_faults,
        classify_tail,
    )

    ref_trace = reference.trace
    if ref_trace.outcome is not Outcome.HALTED:
        return None
    analysis = analysis_for(program.boot(), config.oob_policy,
                            ref_trace.steps)
    if analysis is None or analysis.steps != ref_trace.steps:
        return None
    # Sanity-pin the base state against the analysis replay, exactly as
    # the vector backend pins against its schedule.
    s = step_index
    instr_index = s // 2
    if tuple(base.regs._regs) != analysis.reg_names:
        return None
    if not 0 <= instr_index < len(analysis.pcs):
        return None
    if base.regs._regs[PC_G][1] != analysis.pcs[instr_index] \
            or base.regs._regs[PC_B][1] != analysis.pcs[instr_index]:
        return None
    if (s % 2 == 1) != (base.ir is not None):
        return None
    if s % 2 == 1 and base.ir != analysis.instrs[instr_index]:
        return None

    produced = reference.outputs_before[s]
    outputs_before = reference.outputs_before
    ref_outputs = ref_trace.outputs
    ref_steps = ref_trace.steps
    full_tail = tuple(ref_outputs[produced:])
    oob_trap = config.oob_policy is OobPolicy.TRAP
    error_port = config.error_port

    # Predictions mirror the vector backend's settle rules exactly.
    masked_steps = ref_steps - s
    if error_port is None:
        masked_pred = (FaultResult.MASKED, full_tail, masked_steps)
    else:
        trace = Trace(Outcome.HALTED, list(full_tail), masked_steps)
        masked_pred = (
            classify_tail(trace, ref_trace, produced, error_port),
            full_tail, masked_steps)

    tail_at: Dict[int, tuple] = {}

    def predict(cls: tuple):
        if cls[0] == "masked":
            return masked_pred
        t = cls[1]
        tail = tail_at.get(t)
        if tail is None:
            end = outputs_before[t] if t < ref_steps else len(ref_outputs)
            tail = tuple(ref_outputs[produced:end])
            tail_at[t] = tail
        return (FaultResult.DETECTED, tail, t - s + 1)

    memo = memo_for(program, config)
    results: List[Optional[tuple]] = [None] * len(faults)
    classes: Dict[tuple, List[int]] = {}
    to_run: List[int] = []  # positions that must execute for real
    memoized: List[int] = []  # positions filled straight from the memo
    memo_misses: List[int] = []  # executed positions to record afterwards
    for position, fault in enumerate(faults):
        cls = ("masked",) if not is_effective(base, fault) \
            else classify_fault(analysis, fault, s, oob_trap)
        if cls is not None:
            classes.setdefault(cls, []).append(position)
            continue
        key = _fault_key(s, fault)
        hit = _decode_value(memo.lookup(key), full_tail) \
            if key is not None else None
        if hit is not None:
            results[position] = (fault,) + hit
            memoized.append(position)
        else:
            to_run.append(position)
            if key is not None:
                memo_misses.append(position)

    # One representative per class: from the memo when possible,
    # otherwise executed for real.
    rep_of: Dict[tuple, int] = {}
    for cls, members in classes.items():
        rep = members[0]
        rep_of[cls] = rep
        key = _fault_key(s, faults[rep])
        hit = _decode_value(memo.lookup(key), full_tail) \
            if key is not None else None
        if hit is not None:
            results[rep] = (faults[rep],) + hit
            memoized.append(rep)
        else:
            to_run.append(rep)
            if key is not None:
                memo_misses.append(rep)

    def execute(positions: List[int]) -> None:
        if not positions:
            return
        positions.sort()
        subset = [faults[position] for position in positions]
        outcomes = _run_faults(program, config, reference, budget, s, base,
                               subset)
        for position, outcome in zip(positions, outcomes):
            results[position] = outcome

    execute(to_run)

    # Replicate each class prediction to its members -- but only after
    # the representative's *real* outcome confirmed it.  A mismatch means
    # the analysis mis-modeled this program: fall back to executing the
    # whole class (the report stays exact; only the speedup is lost).
    replicated: List[int] = []
    mismatched: List[int] = []
    mismatches = 0
    for cls, members in classes.items():
        rep = rep_of[cls]
        prediction = predict(cls)
        if results[rep][1:] == prediction:
            for member in members[1:]:
                results[member] = (faults[member],) + prediction
                replicated.append(member)
        else:
            mismatches += 1
            mismatched.extend(member for member in members[1:]
                              if results[member] is None)
    if mismatched:
        memo_miss_set = set(memo_misses)
        for position in mismatched:
            key = _fault_key(s, faults[position])
            if key is not None and position not in memo_miss_set:
                memo_misses.append(position)
        execute(mismatched)

    # Remember every real execution for future pools/steps/campaigns.
    for position in memo_misses:
        key = _fault_key(s, faults[position])
        outcome = results[position]
        if key is not None and outcome is not None:
            memo.record(key, _encode_value(outcome[1], outcome[2],
                                           outcome[3], full_tail))

    # Randomized audit: re-execute a sampled fraction of the variants
    # that were *not* executed (replicated members and memo hits) on the
    # real engines and hard-fail on any disagreement.  The audit RNG is
    # derived from (seed, step) like everything else, so audits are
    # deterministic and identical across jobs/backends -- and it never
    # touches the campaign RNG, so audited reports stay bit-identical.
    audit_runs = 0
    audit_pool = sorted(replicated + memoized)
    if config.prune_audit > 0.0 and audit_pool:
        audit_rng = random.Random(f"{config.seed}:prune-audit:{s}")
        sampled = [position for position in audit_pool
                   if audit_rng.random() < config.prune_audit]
        if sampled:
            audit_runs = len(sampled)
            subset = [faults[position] for position in sampled]
            actual = _run_faults(program, config, reference, budget, s,
                                 base, subset)
            for position, outcome in zip(sampled, actual):
                if outcome != results[position]:
                    raise PruneAuditError(
                        f"prune audit mismatch at step {s} for "
                        f"{faults[position].describe()}: pruned outcome "
                        f"{results[position][1].value}/"
                        f"{len(results[position][2])} outputs/"
                        f"{results[position][3]} steps, re-execution got "
                        f"{outcome[1].value}/{len(outcome[2])} outputs/"
                        f"{outcome[3]} steps; the pruning analysis is "
                        "unsound for this program -- rerun with --no-prune")

    registry = get_registry()
    registry.counter("prune_steps_total").inc()
    registry.counter("prune_classes_total").inc(len(classes))
    registry.counter("prune_pruned_variants_total").inc(len(replicated))
    registry.counter("prune_executed_total").inc(
        len(faults) - len(replicated) - len(memoized))
    registry.counter("prune_memo_hits_total").inc(len(memoized))
    if audit_runs:
        registry.counter("prune_audit_runs_total").inc(audit_runs)
    if mismatches:
        registry.counter("prune_analysis_mismatch_total").inc(mismatches)

    return results
