"""Instruction typing (Figure 7): ``Psi; T |- ir => RT``.

The result ``RT`` of checking an instruction is either a postcondition
context (control may fall through) or ``void`` (control never falls
through: ``jmpB`` and our ``halt``).

The four principles of Section 3.3 shape every rule:

1. standard TAL safety (jump targets have code types, loads/stores operate
   on references),
2. green values depend only on green values, blue only on blue,
3. both computations get equal say in dangerous actions (stores, jumps),
4. in the absence of faults the two computations compute *equal* values --
   enforced with singleton types and the static-expression prover.

Where the scanned paper's ``jmpB-t``/``bzB-t`` premises are garbled, the
rules here are reconstructed from the prose and the principles; see
DESIGN.md section 7.

Jump rules need a substitution ``S`` with ``Delta |- S : Delta'``
instantiating the target's binder.  A compiler provides it as an
:class:`InstructionHint`; when absent, :func:`infer_jump_subst` recovers it
by first-order matching (sufficient for the "solved forms" our compiler and
assembler emit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.colors import Color
from repro.core.instructions import (
    ArithRRI,
    ArithRRR,
    Bz,
    Halt,
    Instruction,
    Jmp,
    Load,
    Mov,
    Store,
    is_plain,
)
from repro.core.registers import DEST, PC_B, PC_G
from repro.statics.expressions import BinExpr, Expr, IntConst, Sel, Upd, Var
from repro.statics.kinds import KindContext
from repro.statics.normalize import (
    fold_binop,
    normalize_int,
    normalize_mem,
    prove_equal,
)
from repro.statics.substitution import Subst, check_substitution
from repro.statics.expressions import StaticsError
from repro.types.errors import TypeCheckError
from repro.types.subtyping import check_regfile_subtype, check_subtype, \
    coerce_to_int
from repro.types.syntax import (
    BasicType,
    CodeType,
    CondType,
    HeapType,
    IntType,
    RefType,
    RegType,
    StaticContext,
    basic_type_equal,
    subst_reg_assign,
)


_INT = IntType()  # the singleton integer basic type, hoisted off hot paths


class Void:
    """The ``void`` result type: control does not proceed."""

    _instance: Optional["Void"] = None

    def __new__(cls) -> "Void":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "void"


VOID = Void()

ResultType = Union[StaticContext, Void]


@dataclass(frozen=True)
class InstructionHint:
    """Compiler-provided typing hints for one instruction.

    ``subst`` instantiates the target context of a ``jmpB``/``bzB`` (and of
    fall-through edges into labeled blocks); ``mov_basic`` overrides the
    basic type chosen for a ``mov`` immediate (default: ``Psi``'s type for
    the constant when it has one, else ``int``).
    """

    subst: Optional[Subst] = None
    mov_basic: Optional[BasicType] = None


NO_HINT = InstructionHint()


def check_instruction(
    psi: HeapType,
    context: StaticContext,
    instruction: Instruction,
    hint: InstructionHint = NO_HINT,
    address: Optional[int] = None,
) -> ResultType:
    """``Psi; T |- ir => RT``.  Raises :class:`TypeCheckError` on failure."""
    try:
        return _dispatch(psi, context, instruction, hint)
    except TypeCheckError as exc:
        if exc.address is None and address is not None:
            raise TypeCheckError(f"{instruction}: {exc.args[0]}", address) from None
        raise
    except StaticsError as exc:
        raise TypeCheckError(f"{instruction}: {exc}", address) from None


def _dispatch(
    psi: HeapType,
    context: StaticContext,
    instruction: Instruction,
    hint: InstructionHint,
) -> ResultType:
    # Typing rules keyed by the exact instruction class (the instruction
    # hierarchy is flat); one dict probe replaces an isinstance chain.
    handler = _RULES.get(type(instruction))
    if handler is None:
        if is_plain(instruction):
            raise TypeCheckError(
                f"{instruction} belongs to the unprotected baseline ISA and "
                "is outside the TAL_FT typed fragment"
            )
        raise TypeCheckError(f"no typing rule for {instruction!r}")
    return handler(psi, context, instruction, hint)


# ---------------------------------------------------------------------------
# Basic instructions
# ---------------------------------------------------------------------------


def _check_op2r(context: StaticContext, instr: ArithRRR) -> StaticContext:
    delta = context.delta
    source = coerce_to_int(context.gamma.get(instr.rs), instr.rs, delta)
    other = coerce_to_int(context.gamma.get(instr.rt), instr.rt, delta)
    if source.color is not other.color:
        raise TypeCheckError(
            f"operands mix colors: {instr.rs} is {source.color}, "
            f"{instr.rt} is {other.color}"
        )
    result_expr = fold_binop(instr.op, source.expr, other.expr)
    result = RegType(other.color, _INT, result_expr)
    gamma = context.gamma.bump_pcs_and_set(instr.rd, result)
    return context.with_gamma(gamma)


def _check_op1r(context: StaticContext, instr: ArithRRI) -> StaticContext:
    delta = context.delta
    source = coerce_to_int(context.gamma.get(instr.rs), instr.rs, delta)
    if source.color is not instr.imm.color:
        raise TypeCheckError(
            f"operands mix colors: {instr.rs} is {source.color}, "
            f"immediate is {instr.imm.color}"
        )
    result_expr = fold_binop(instr.op, source.expr, IntConst(instr.imm.value))
    result = RegType(instr.imm.color, _INT, result_expr)
    gamma = context.gamma.bump_pcs_and_set(instr.rd, result)
    return context.with_gamma(gamma)


def _check_mov(
    psi: HeapType,
    context: StaticContext,
    instr: Mov,
    hint: InstructionHint,
) -> StaticContext:
    value = instr.imm.value
    basic = hint.mov_basic if hint.mov_basic is not None else psi.get(value, _INT)
    if hint.mov_basic is not None and not isinstance(hint.mov_basic, IntType):
        declared = psi.get(value)
        if declared is None or not basic_type_equal(
            declared, hint.mov_basic, context.delta
        ):
            raise TypeCheckError(
                f"mov hint claims {value} : {hint.mov_basic}, but Psi gives "
                f"{declared}"
            )
    result = RegType(instr.imm.color, basic, IntConst(value))
    gamma = context.gamma.bump_pcs_and_set(instr.rd, result)
    return context.with_gamma(gamma)


# ---------------------------------------------------------------------------
# Memory instructions
# ---------------------------------------------------------------------------


def _require_reg_type(context: StaticContext, name: str) -> RegType:
    assign = context.gamma.get(name)
    if isinstance(assign, CondType):
        raise TypeCheckError(f"register {name} has conditional type {assign}")
    return assign


def _require_ref(
    psi: HeapType, context: StaticContext, name: str, color: Color
) -> RegType:
    assign = _require_reg_type(context, name)
    if assign.color is not color:
        raise TypeCheckError(
            f"register {name} is {assign.color}, instruction wants {color}"
        )
    if isinstance(assign.basic, RefType):
        return assign
    # Masked-region addressing extension (see repro.types.region): an
    # integer-typed address whose expression provably stays inside a
    # uniformly-typed region may be used as a reference.
    if isinstance(assign.basic, IntType):
        from repro.types.region import region_pointee

        pointee = region_pointee(psi, assign.expr, context.delta)
        if pointee is not None:
            return RegType(assign.color, RefType(pointee), assign.expr)
    raise TypeCheckError(f"register {name} : {assign} is not a reference")


def _queue_overlay(context: StaticContext) -> Expr:
    """``upd Em (Ed, Es)``: memory overlaid with pending queue updates.

    The queue is stored front (newest) first; the newest update must shadow
    the others, so updates are applied oldest-first.
    """
    overlay = context.mem
    for ed, es in reversed(context.queue):
        overlay = Upd(overlay, ed, es)
    return overlay


def _check_load(psi: HeapType, context: StaticContext, instr: Load) -> StaticContext:
    source = _require_ref(psi, context, instr.rs, instr.color)
    pointee = source.basic.pointee  # type: ignore[union-attr]
    if instr.color is Color.GREEN:
        # ldG-t: the green computation sees memory overlaid with the queue.
        value_expr = Sel(_queue_overlay(context), source.expr)
    else:
        # ldB-t: the blue computation reads committed memory only.
        value_expr = Sel(context.mem, source.expr)
    result = RegType(instr.color, pointee, normalize_int(value_expr))
    gamma = context.gamma.bump_pcs_and_set(instr.rd, result)
    return context.with_gamma(gamma)


def _check_store_operands(
    psi: HeapType, context: StaticContext, instr: Store, color: Color
) -> tuple:
    address = _require_ref(psi, context, instr.rd, color)
    value = _require_reg_type(context, instr.rs)
    if value.color is not color:
        raise TypeCheckError(
            f"register {instr.rs} is {value.color}, st{color} wants {color}"
        )
    pointee = address.basic.pointee  # type: ignore[union-attr]
    if not basic_type_equal(value.basic, pointee, context.delta):
        # Subtyping: anything may be stored into an int cell as an integer.
        if not isinstance(pointee, IntType):
            raise TypeCheckError(
                f"storing {value.basic} through a {pointee} ref"
            )
    return address, value


def _check_store(psi: HeapType, context: StaticContext, instr: Store) -> StaticContext:
    if instr.color is Color.GREEN:
        # stG-t: push the announced pair onto the front of the queue type.
        address, value = _check_store_operands(psi, context, instr, Color.GREEN)
        queue = ((address.expr, value.expr),) + context.queue
        return context.with_gamma(context.gamma.bump_pcs()).with_queue(queue)
    # stB-t: the queue must describe a pending pair equal to our operands.
    address, value = _check_store_operands(psi, context, instr, Color.BLUE)
    if not context.queue:
        raise TypeCheckError("stB with statically empty store queue")
    pending_addr, pending_value = context.queue[-1]
    delta = context.delta
    if not prove_equal(pending_addr, address.expr, delta):
        raise TypeCheckError(
            f"blue store address {address.expr} is not provably the pending "
            f"address {pending_addr}"
        )
    if not prove_equal(pending_value, value.expr, delta):
        raise TypeCheckError(
            f"blue store value {value.expr} is not provably the pending "
            f"value {pending_value}"
        )
    new_mem = normalize_mem(Upd(context.mem, pending_addr, pending_value))
    return (
        context.with_gamma(context.gamma.bump_pcs())
        .with_queue(context.queue[:-1])
        .with_mem(new_mem)
    )


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


def _dest_is_zero(context: StaticContext) -> None:
    assign = context.gamma.get(DEST)
    if isinstance(assign, CondType):
        raise TypeCheckError(
            f"destination register has pending conditional type {assign}"
        )
    if assign.color is not Color.GREEN or not isinstance(assign.basic, IntType) \
            or not prove_equal(assign.expr, IntConst(0), context.delta):
        raise TypeCheckError(
            f"destination register must be (G, int, 0); it is {assign}"
        )


def _target_expects_zero_dest(target: CodeType) -> None:
    assign = target.context.gamma.get(DEST)
    if not (
        isinstance(assign, RegType)
        and assign.color is Color.GREEN
        and isinstance(assign.basic, IntType)
        and prove_equal(assign.expr, IntConst(0), target.context.delta)
    ):
        raise TypeCheckError(
            f"jump-target precondition must give d the type (G, int, 0); "
            f"it gives {assign}"
        )


def _require_code(context: StaticContext, name: str, color: Color) -> RegType:
    assign = _require_reg_type(context, name)
    if assign.color is not color:
        raise TypeCheckError(
            f"register {name} is {assign.color}, instruction wants {color}"
        )
    if not isinstance(assign.basic, CodeType):
        raise TypeCheckError(f"register {name} : {assign} is not a code pointer")
    return assign


def _jump_solve_plan(target: StaticContext):
    """The static matching plan of a jump target, memoized on the target.

    Which binder variables can be read off which slots (memory, the program
    counters, each register, the queue) depends only on the *target's*
    patterns, never on the jumping context, so it is computed once per
    target and stashed on the (plain-``__dict__``) frozen dataclass.
    Returns ``(wanted_vars, mem_var, pcg_var, pcb_var, reg_pairs,
    cond_regs, binder_names)`` where ``reg_pairs`` lists
    ``(variable, register)`` for registers whose whole expression is a
    binder variable and ``cond_regs`` lists registers with conditional
    variable patterns (handled generically).
    """
    plan = target.__dict__.get("_solve_plan")
    if plan is not None:
        return plan
    binder_names = frozenset(target.delta.names())

    def var_of(pattern: Expr):
        if isinstance(pattern, Var) and pattern.name in binder_names:
            return pattern.name
        return None

    mem_var = var_of(target.mem)
    pcg_var = pcb_var = None
    pc_assign = target.gamma.get(PC_G)
    if isinstance(pc_assign, RegType):
        pcg_var = var_of(pc_assign.expr)
    pc_assign = target.gamma.get(PC_B)
    if isinstance(pc_assign, RegType):
        pcb_var = var_of(pc_assign.expr)
    reg_pairs = []
    cond_regs = []
    target_assigns = target.gamma.as_mapping()
    for name in target.gamma.gprs():
        wanted = target_assigns[name]
        if isinstance(wanted, RegType):
            var_name = var_of(wanted.expr)
            if var_name is not None:
                reg_pairs.append((var_name, name))
        elif isinstance(wanted, CondType):
            if isinstance(wanted.guard, Var) \
                    or isinstance(wanted.inner.expr, Var):
                cond_regs.append(name)
    plan = (
        len(binder_names), mem_var, pcg_var, pcb_var,
        tuple(reg_pairs), tuple(cond_regs), binder_names,
    )
    object.__setattr__(target, "_solve_plan", plan)
    return plan


def infer_jump_subst(
    context: StaticContext,
    target: StaticContext,
    green_expr: Expr,
    blue_expr: Expr,
) -> Subst:
    """Recover the instantiation ``S`` by first-order matching.

    The target's binder variables are matched against the current context
    wherever they occur as the *entire* expression of a register type, a
    queue slot, the memory description, or a program-counter type.  This is
    complete for the solved-form preconditions the compiler and assembler
    emit; hand-written code with fancier preconditions supplies an explicit
    hint instead.  Matching follows the memoized per-target plan (see
    :func:`_jump_solve_plan`); earlier sources win when a variable occurs
    in several patterns.
    """
    (wanted_vars, mem_var, pcg_var, pcb_var,
     reg_pairs, cond_regs, binder_names) = _jump_solve_plan(target)
    images = {}
    if mem_var is not None:
        images[mem_var] = context.mem
    if pcg_var is not None and pcg_var not in images:
        images[pcg_var] = green_expr
    if pcb_var is not None and pcb_var not in images:
        images[pcb_var] = blue_expr
    if len(images) != wanted_vars:
        context_assigns = context.gamma.as_mapping()
        for var_name, name in reg_pairs:
            if var_name in images:
                continue
            actual = context_assigns.get(name)
            if type(actual) is RegType:
                images[var_name] = actual.expr
        if cond_regs:
            target_assigns = target.gamma.as_mapping()
            for name in cond_regs:
                wanted = target_assigns[name]
                actual = context_assigns.get(name)
                if isinstance(actual, CondType):
                    guard_var = wanted.guard
                    if isinstance(guard_var, Var) \
                            and guard_var.name in binder_names \
                            and guard_var.name not in images:
                        images[guard_var.name] = actual.guard
                    inner_var = wanted.inner.expr
                    if isinstance(inner_var, Var) \
                            and inner_var.name in binder_names \
                            and inner_var.name not in images:
                        images[inner_var.name] = actual.inner.expr
    if len(images) != wanted_vars \
            and len(target.queue) == len(context.queue):
        for (wanted_addr, wanted_value), (actual_addr, actual_value) in zip(
            target.queue, context.queue
        ):
            for pattern, image in (
                (wanted_addr, actual_addr), (wanted_value, actual_value)
            ):
                if isinstance(pattern, Var) \
                        and pattern.name in binder_names \
                        and pattern.name not in images:
                    images[pattern.name] = image
    if len(images) != wanted_vars:
        missing = [
            name for name, _ in target.delta.items() if name not in images
        ]
        raise TypeCheckError(
            f"cannot infer a jump substitution for variables {missing}; "
            "provide an explicit hint"
        )
    return Subst(images)


def check_jump_target(
    psi: HeapType,
    context: StaticContext,
    target_code: CodeType,
    green_expr: Expr,
    blue_expr: Expr,
    subst: Optional[Subst],
) -> None:
    """The shared jump-edge check of ``jmpB-t``/``bzB-t`` (and fall-through).

    Verifies that the current context, instantiated via ``S``, establishes
    the target's precondition: destination register clear, program-counter
    expressions equal to the transfer addresses, register file a subtype,
    queue and memory descriptions provably equal.
    """
    target = target_code.context
    if subst is None:
        subst = infer_jump_subst(context, target, green_expr, blue_expr)
    check_substitution(subst, context.delta, target.delta)
    delta = context.delta

    # The instantiated target context ``target[S]`` is *not* materialized:
    # each precondition slot is instantiated on the fly as it is checked.
    # For solved-form preconditions the image of a register's binder
    # variable is exactly the jumping context's register expression, so the
    # pointwise subtype test below almost always hits the identity fast
    # path without allocating a single instantiated RegType.
    target_assigns = target.gamma.as_mapping()
    smapping = subst.as_mapping()

    def instantiate(assign):
        if type(assign) is RegType:
            expr = assign.expr
            if type(expr) is Var:
                image = smapping.get(expr.name, expr)
            else:
                image = subst.apply(expr)
            if image is expr:
                return assign
            return RegType(assign.color, assign.basic, image)
        if assign is None:
            return None
        return subst_reg_assign(subst, assign)

    dest = instantiate(target_assigns.get(DEST))
    if not (
        isinstance(dest, RegType)
        and dest.color is Color.GREEN
        and isinstance(dest.basic, IntType)
        and prove_equal(dest.expr, IntConst(0), delta)
    ):
        raise TypeCheckError(f"target expects d : {dest}, not (G, int, 0)")

    for pc, expected, expected_color in (
        (PC_G, green_expr, Color.GREEN),
        (PC_B, blue_expr, Color.BLUE),
    ):
        assign = instantiate(target_assigns.get(pc))
        if not (
            isinstance(assign, RegType)
            and assign.color is expected_color
            and isinstance(assign.basic, IntType)
            and prove_equal(assign.expr, expected, delta)
        ):
            raise TypeCheckError(
                f"target precondition types {pc} as {assign}, which does not "
                f"match the transfer address {expected}"
            )

    # Pointwise register-file subtyping against the virtual ``Gamma[S]``
    # (the fused form of :func:`check_regfile_subtype`, same diagnostics).
    sub_assigns = context.gamma.as_mapping()
    for name in target.gamma.gprs():
        wanted_raw = target_assigns[name]
        actual = sub_assigns.get(name)
        if actual is None:
            raise TypeCheckError(f"register {name} missing from subtype Gamma")
        if type(wanted_raw) is RegType:
            wexpr = wanted_raw.expr
            if type(wexpr) is Var:
                image = smapping.get(wexpr.name, wexpr)
            else:
                image = subst.apply(wexpr)
            if (
                type(actual) is RegType
                and actual.color is wanted_raw.color
                and actual.expr is image
                and actual.basic is wanted_raw.basic
            ):
                continue
            wanted = wanted_raw if image is wexpr \
                else RegType(wanted_raw.color, wanted_raw.basic, image)
        else:
            wanted = subst_reg_assign(subst, wanted_raw)
            if actual is wanted:
                continue
        try:
            check_subtype(actual, wanted, delta)
        except TypeCheckError as exc:
            raise TypeCheckError(f"register {name}: {exc}") from None

    if len(context.queue) != len(target.queue):
        raise TypeCheckError(
            f"queue length mismatch at jump: have {len(context.queue)}, "
            f"target expects {len(target.queue)}"
        )
    for (have_addr, have_value), (want_addr, want_value) in zip(
        context.queue, target.queue
    ):
        if not prove_equal(have_addr, subst.apply(want_addr), delta) \
                or not prove_equal(have_value, subst.apply(want_value), delta):
            raise TypeCheckError("queue descriptions disagree at jump")

    target_mem = subst.apply(target.mem)
    if not prove_equal(context.mem, target_mem, delta):
        raise TypeCheckError(
            f"memory description {context.mem} does not establish the "
            f"target's {target_mem}"
        )


def _check_jmp(
    psi: HeapType,
    context: StaticContext,
    instr: Jmp,
    hint: InstructionHint,
) -> ResultType:
    if instr.color is Color.GREEN:
        # jmpG-t: a checked move of the green target into d.
        _dest_is_zero(context)
        target = _require_code(context, instr.rd, Color.GREEN)
        _target_expects_zero_dest(target.basic)  # type: ignore[arg-type]
        gamma = context.gamma.bump_pcs_and_set(DEST, target)
        return context.with_gamma(gamma)
    # jmpB-t: the true transfer.
    dest = context.gamma.get(DEST)
    if isinstance(dest, CondType):
        raise TypeCheckError(
            "jmpB with a conditional destination (pending bzG?)"
        )
    if dest.color is not Color.GREEN or not isinstance(dest.basic, CodeType):
        raise TypeCheckError(
            f"jmpB requires d to hold a green code pointer; it is {dest}"
        )
    blue = _require_code(context, instr.rd, Color.BLUE)
    if not basic_type_equal(dest.basic, blue.basic, context.delta):
        raise TypeCheckError(
            "green and blue jump targets have different code types"
        )
    if not prove_equal(dest.expr, blue.expr, context.delta):
        raise TypeCheckError(
            f"green target {dest.expr} and blue target {blue.expr} are not "
            "provably equal"
        )
    check_jump_target(psi, context, dest.basic, dest.expr, blue.expr, hint.subst)
    return VOID


def _check_bz(
    psi: HeapType,
    context: StaticContext,
    instr: Bz,
    hint: InstructionHint,
) -> ResultType:
    delta = context.delta
    if instr.color is Color.GREEN:
        # bzG-t: conditional announcement.
        _dest_is_zero(context)
        zero_reg = coerce_to_int(context.gamma.get(instr.rz), instr.rz, delta)
        if zero_reg.color is not Color.GREEN:
            raise TypeCheckError(f"bzG condition {instr.rz} must be green")
        target = _require_code(context, instr.rd, Color.GREEN)
        _target_expects_zero_dest(target.basic)  # type: ignore[arg-type]
        conditional = CondType(zero_reg.expr, target)
        gamma = context.gamma.bump_pcs_and_set(DEST, conditional)
        return context.with_gamma(gamma)
    # bzB-t: conditional commit.
    dest = context.gamma.get(DEST)
    if not isinstance(dest, CondType):
        raise TypeCheckError(
            f"bzB requires d to have a conditional type (set by bzG); "
            f"it is {dest}"
        )
    if dest.inner.color is not Color.GREEN \
            or not isinstance(dest.inner.basic, CodeType):
        raise TypeCheckError(
            f"conditional destination does not hold a green code pointer: "
            f"{dest}"
        )
    zero_reg = coerce_to_int(context.gamma.get(instr.rz), instr.rz, delta)
    if zero_reg.color is not Color.BLUE:
        raise TypeCheckError(f"bzB condition {instr.rz} must be blue")
    blue = _require_code(context, instr.rd, Color.BLUE)
    if not prove_equal(dest.guard, zero_reg.expr, delta):
        raise TypeCheckError(
            f"green condition {dest.guard} and blue condition "
            f"{zero_reg.expr} are not provably equal"
        )
    if not basic_type_equal(dest.inner.basic, blue.basic, delta):
        raise TypeCheckError(
            "green and blue branch targets have different code types"
        )
    if not prove_equal(dest.inner.expr, blue.expr, delta):
        raise TypeCheckError(
            f"green target {dest.inner.expr} and blue target {blue.expr} "
            "are not provably equal"
        )
    check_jump_target(
        psi, context, dest.inner.basic, dest.inner.expr, blue.expr, hint.subst
    )
    # Fall-through: the hardware guarantees d is 0 on this path.
    zero = RegType(Color.GREEN, IntType(), IntConst(0))
    gamma = context.gamma.bump_pcs_and_set(DEST, zero)
    return context.with_gamma(gamma)


def _check_halt(context: StaticContext) -> ResultType:
    # halt-t (extension): all announced stores must have committed, so a
    # halting program never leaves an observable write undone.
    if context.queue:
        raise TypeCheckError(
            f"halt with {len(context.queue)} uncommitted store(s) in the queue"
        )
    return VOID


#: Typing rules by instruction class (adapters normalize the signatures).
_RULES = {
    ArithRRR: lambda psi, context, instr, hint: _check_op2r(context, instr),
    ArithRRI: lambda psi, context, instr, hint: _check_op1r(context, instr),
    Mov: _check_mov,
    Load: lambda psi, context, instr, hint: _check_load(psi, context, instr),
    Store: lambda psi, context, instr, hint: _check_store(psi, context, instr),
    Jmp: _check_jmp,
    Bz: _check_bz,
    Halt: lambda psi, context, instr, hint: _check_halt(context),
}
