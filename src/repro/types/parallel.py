"""Process-pool checking of basic blocks (``Psi |- C`` fan-out).

Every basic block of a TAL_FT program is checked from its *declared*
precondition (see :mod:`repro.types.code`), so blocks are mutually
independent given the label types: the work partitions arbitrarily
without changing any result.  This module fans the blocks out across
``jobs`` worker processes, following the same plumbing as the
fault-injection pool (:mod:`repro.injection.parallel`):

* the program tables (``psi``, code, label types, hints) are shipped once
  per worker through the pool initializer, not once per task;
* blocks are split into contiguous chunks, several per worker, since
  block lengths vary;
* the parent consumes the per-block results **in block order** and
  re-raises the error of the lowest-addressed failing block, so the
  outcome -- the :class:`~repro.types.code.CheckedProgram` or the first
  :class:`~repro.types.errors.TypeCheckError` -- is identical to the
  serial checker's.

Determinism of diagnostics falls out of the block structure: blocks are
contiguous address ranges, each block's check stops at its first error,
and the serial loop walks blocks in ascending address order -- hence the
serial first error *is* the first error of the lowest-addressed failing
block, which is exactly what the merge selects.

Hash-consed expressions re-intern on unpickling (``Expr.__reduce__``), so
the contexts coming back from workers keep the identity invariants the
statics layer relies on.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.pool import (
    CHUNKS_PER_WORKER as _CHUNKS_PER_WORKER,
    chunk as _chunk,
    default_jobs,
    mp_context as _mp_context,
)
from repro.types.errors import TypeCheckError

#: Per-process program tables, set up once by the pool initializer.
_WORKER_STATE = None

#: A worker's verdict on one block: ``(block_start, contexts, error)``
#: with exactly one of ``contexts``/``error`` set.
BlockResult = Tuple[int, Optional[Dict], Optional[Exception]]


def _init_worker(psi, code, label_types, hints) -> None:
    """Pool initializer: install the (immutable) program tables."""
    global _WORKER_STATE
    _WORKER_STATE = (psi, code, label_types, hints)


def _reset_state() -> None:
    global _WORKER_STATE
    _WORKER_STATE = None


def _run_chunk(blocks: Sequence[List[int]]) -> List[BlockResult]:
    """Worker body: check every block of a chunk, capturing failures."""
    from repro.types.code import _check_block

    psi, code, label_types, hints = _WORKER_STATE
    results: List[BlockResult] = []
    for block in blocks:
        try:
            contexts = _check_block(psi, code, label_types, hints, block)
        except Exception as exc:  # noqa: BLE001 -- serial parity: the parent
            # re-raises the lowest-addressed block's exception whatever its
            # type (the serial loop stops at the first raising block).
            results.append((block[0], None, exc))
        else:
            results.append((block[0], contexts, None))
    return results


def check_blocks_parallel(
    psi,
    code,
    label_types,
    hints: Mapping,
    blocks: Sequence[List[int]],
    jobs: Optional[int] = None,
) -> Iterator[Dict]:
    """Check the blocks across a process pool, yielding context dicts.

    Yields each block's ``{address: StaticContext}`` in ascending block
    order.  If any block fails, raises the error of the lowest-addressed
    failing block -- the same exception (message and ``.address``) the
    serial checker would raise first.
    """
    if jobs is None or jobs <= 0:
        jobs = default_jobs()
    jobs = min(jobs, len(blocks))
    if jobs <= 1:
        # Degenerate pool: run inline rather than paying for a process.
        _init_worker(psi, code, label_types, hints)
        try:
            results = _run_chunk(list(blocks))
        finally:
            _reset_state()
        yield from _merge(results)
        return
    from repro.observe import get_registry, phase_timer

    registry = get_registry()
    chunks = _chunk(list(blocks), jobs * _CHUNKS_PER_WORKER)
    with phase_timer("typecheck.pool", registry, jobs=jobs), \
            ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=_mp_context(),
        initializer=_init_worker,
        initargs=(psi, code, label_types, hints),
    ) as pool:
        # Executor.map preserves submission order and the chunks are
        # contiguous ascending slices, so concatenation walks the blocks
        # exactly as the serial loop does.
        results = [
            result
            for chunk_results in pool.map(_run_chunk, chunks)
            for result in chunk_results
        ]
    registry.counter("typecheck_parallel_blocks_total").inc(len(blocks))
    yield from _merge(results)


def _merge(results: Sequence[BlockResult]) -> Iterator[Dict]:
    """Surface the earliest failure, else the contexts in block order."""
    for start, contexts, error in sorted(results, key=lambda r: r[0]):
        if error is not None:
            raise error
        yield contexts
