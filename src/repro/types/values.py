"""Value typing (Figure 6): ``Psi; Delta |-_Z v : t``.

The rules:

* ``int-t`` / ``base-t``: ``Psi |- n : b`` holds when ``b`` is ``int`` or
  ``b`` equals ``Psi(n)``;
* ``val-t``: ``c n : (c, b, E)`` when ``Delta |- E = n`` and ``Psi |- n : b``;
* ``cond-t``: under a provably-zero guard the conditional type behaves as
  its inner type;
* ``cond-t-n0``: under a provably-nonzero guard the value must be ``c 0``;
* ``val-zap-t`` / ``val-zap-cond``: a value whose color matches the zap tag
  may have been arbitrarily corrupted, so it types at any (well-kinded)
  type of that color.
"""

from __future__ import annotations

from repro.core.colors import ColoredValue
from repro.statics.expressions import IntConst, StaticsError
from repro.statics.kinds import KIND_INT, KindContext, infer_kind
from repro.statics.normalize import prove_equal, prove_nonzero, prove_zero
from repro.types.errors import TypeCheckError
from repro.types.syntax import (
    BasicType,
    CondType,
    HeapType,
    IntType,
    RegAssign,
    RegType,
    ZapTag,
    basic_type_equal,
)


def check_heap_value(psi: HeapType, n: int, basic: BasicType,
                     delta: KindContext) -> None:
    """``Psi |- n : b`` (rules ``int-t`` and ``base-t``)."""
    if isinstance(basic, IntType):
        return
    declared = psi.get(n)
    if declared is None or not basic_type_equal(declared, basic, delta):
        raise TypeCheckError(
            f"value {n} does not have basic type {basic} "
            f"(Psi gives {declared})"
        )


def heap_value_ok(psi: HeapType, n: int, basic: BasicType,
                  delta: KindContext) -> bool:
    try:
        check_heap_value(psi, n, basic, delta)
    except TypeCheckError:
        return False
    return True


def check_value(
    psi: HeapType,
    delta: KindContext,
    zap: ZapTag,
    value: ColoredValue,
    assign: RegAssign,
) -> None:
    """``Psi; Delta |-_Z v : t``.  Raises :class:`TypeCheckError` on failure."""
    # val-zap-t / val-zap-cond: corrupted-color data types at anything
    # (well-kinded) of its color.
    if zap is not None and value.color is zap:
        _check_zap_assign(delta, value, assign)
        return
    if isinstance(assign, CondType):
        if value.color is not assign.inner.color:
            raise TypeCheckError(
                f"value {value} has color {value.color}, type wants "
                f"{assign.inner.color}"
            )
        if prove_zero(assign.guard, delta):
            # cond-t: the guard is zero, so the inner type governs.
            check_value(psi, delta, zap, value, assign.inner)
            return
        if prove_nonzero(assign.guard, delta):
            # cond-t-n0: the guard is nonzero, so the value must be c 0.
            if value.value != 0:
                raise TypeCheckError(
                    f"conditional type with nonzero guard requires 0, "
                    f"got {value}"
                )
            return
        raise TypeCheckError(
            f"cannot decide guard {assign.guard} of conditional type"
        )
    # val-t
    if value.color is not assign.color:
        raise TypeCheckError(
            f"value {value} has color {value.color}, type wants {assign.color}"
        )
    if not prove_equal(assign.expr, IntConst(value.value), delta):
        raise TypeCheckError(
            f"value {value} is not provably equal to {assign.expr}"
        )
    check_heap_value(psi, value.value, assign.basic, delta)


def _check_zap_assign(delta: KindContext, value: ColoredValue,
                      assign: RegAssign) -> None:
    inner = assign.inner if isinstance(assign, CondType) else assign
    if value.color is not inner.color:
        raise TypeCheckError(
            f"zapped value {value} has color {value.color}, type wants "
            f"{inner.color}"
        )
    exprs = [inner.expr]
    if isinstance(assign, CondType):
        exprs.append(assign.guard)
    for expr in exprs:
        try:
            kind = infer_kind(expr, delta)
        except StaticsError as exc:
            raise TypeCheckError(str(exc)) from None
        if kind is not KIND_INT:
            raise TypeCheckError(f"register type expression {expr} is not ι_int")


def value_ok(
    psi: HeapType,
    delta: KindContext,
    zap: ZapTag,
    value: ColoredValue,
    assign: RegAssign,
) -> bool:
    """Boolean form of :func:`check_value`."""
    try:
        check_value(psi, delta, zap, value, assign)
    except TypeCheckError:
        return False
    return True
