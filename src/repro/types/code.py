"""Code-memory typing (rule ``C-t`` of Figure 8).

``Psi |- C`` requires every code address to carry a code type whose context
is a valid precondition for the instruction stored there, with fall-through
postconditions feeding the next address.  Practically, compilers declare
preconditions only at *labels* (block entries); the checker threads the
context through each block, computing the interior preconditions, and
verifies fall-through edges into labeled blocks with the same subsumption
check used for jumps.

The restriction relative to the fully general rule -- interior (computed)
addresses are not valid ``mov`` immediates or jump targets -- is sound: it
merely shrinks the set of accepted programs (to those whose control flow
targets labels, which is every program a compiler emits).

:func:`check_program` returns a :class:`CheckedProgram` carrying the
per-address contexts, which the machine-state typing judgment and the
executable Preservation checker consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.instructions import Instruction
from repro.statics.expressions import IntConst
from repro.types.errors import TypeCheckError
from repro.types.instructions import (
    VOID,
    InstructionHint,
    NO_HINT,
    check_instruction,
    check_jump_target,
)
from repro.types.syntax import (
    BasicType,
    CodeType,
    HeapType,
    RegType,
    StaticContext,
    check_code_type_closed,
)
from repro.core.registers import PC_B, PC_G


@dataclass
class CheckedProgram:
    """The outcome of a successful ``Psi |- C`` check."""

    #: Full heap typing: data addresses -> ref types, labels -> code types.
    psi: Dict[int, BasicType]
    #: The precondition context established at *every* code address.
    contexts: Dict[int, StaticContext]
    #: Label addresses (the declared block entries).
    labels: Dict[int, CodeType] = field(default_factory=dict)


def check_program(
    code: Mapping[int, Instruction],
    label_types: Mapping[int, CodeType],
    data_psi: Mapping[int, BasicType],
    hints: Optional[Mapping[int, InstructionHint]] = None,
) -> CheckedProgram:
    """Check ``Psi |- C`` and return the computed per-address contexts.

    ``label_types`` declares the code type of each block entry;
    ``data_psi`` types the data addresses; ``hints`` maps code addresses to
    their :class:`InstructionHint`.

    Raises :class:`TypeCheckError` (with the offending address) on failure.
    """
    hints = hints or {}
    if not label_types:
        raise TypeCheckError("a program needs at least one labeled block")
    for address, code_type in label_types.items():
        if address not in code:
            raise TypeCheckError(f"label at {address} has no instruction")
        check_code_type_closed(code_type)
    for address in label_types:
        if address in data_psi:
            raise TypeCheckError(
                f"address {address} is both code and data", address
            )
    psi: Dict[int, BasicType] = dict(data_psi)
    psi.update(label_types)

    contexts: Dict[int, StaticContext] = {}
    addresses = sorted(code)
    label_addresses = sorted(label_types)
    if addresses[0] not in label_types:
        raise TypeCheckError(
            f"first code address {addresses[0]} is not labeled", addresses[0]
        )

    pending: Dict[int, StaticContext] = {}
    for address in addresses:
        if address in label_types:
            current: Optional[StaticContext] = label_types[address].context
        else:
            current = pending.pop(address, None)
        if current is None:
            raise TypeCheckError(
                "unreachable unlabeled instruction (no context flows here)",
                address,
            )
        contexts[address] = current
        result = check_instruction(
            psi, current, code[address], hints.get(address, NO_HINT), address
        )
        successor = address + 1
        if result is VOID:
            # Control never falls through; the next address (if any) must be
            # a fresh label.
            if successor in code and successor not in label_types:
                raise TypeCheckError(
                    "instruction after a non-falling-through instruction "
                    "must be labeled",
                    successor,
                )
            continue
        assert isinstance(result, StaticContext)
        if successor not in code:
            raise TypeCheckError(
                "control falls off the end of code memory", address
            )
        if successor in label_types:
            # Fall-through into a labeled block: the computed postcondition
            # must establish the declared precondition (same subsumption
            # check as a jump, with the transfer address = successor).
            target = label_types[successor]
            green_expr = _pc_expr(result, PC_G, address)
            blue_expr = _pc_expr(result, PC_B, address)
            try:
                check_jump_target(
                    psi, result, target, green_expr, blue_expr,
                    hints.get(address, NO_HINT).subst,
                )
            except TypeCheckError as exc:
                raise TypeCheckError(
                    f"fall-through into label {successor} fails: {exc.args[0]}",
                    address,
                ) from None
        else:
            pending[successor] = result

    return CheckedProgram(psi=psi, contexts=contexts, labels=dict(label_types))


def _pc_expr(context: StaticContext, pc: str, address: int):
    assign = context.gamma.get(pc)
    if not isinstance(assign, RegType):
        raise TypeCheckError(f"{pc} has a conditional type", address)
    return assign.expr
