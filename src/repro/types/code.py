"""Code-memory typing (rule ``C-t`` of Figure 8).

``Psi |- C`` requires every code address to carry a code type whose context
is a valid precondition for the instruction stored there, with fall-through
postconditions feeding the next address.  Practically, compilers declare
preconditions only at *labels* (block entries); the checker threads the
context through each block, computing the interior preconditions, and
verifies fall-through edges into labeled blocks with the same subsumption
check used for jumps.

The restriction relative to the fully general rule -- interior (computed)
addresses are not valid ``mov`` immediates or jump targets -- is sound: it
merely shrinks the set of accepted programs (to those whose control flow
targets labels, which is every program a compiler emits).

Because every block starts from its *declared* precondition, the blocks
are mutually independent given ``label_types``: checking them in any order
(or in parallel -- see :mod:`repro.types.parallel`) produces the same
per-address contexts and, on ill-typed programs, the same first
diagnostic, which is always the lowest-addressed error (blocks are
contiguous address ranges and each block's check stops at its first
error).

:func:`check_program` returns a :class:`CheckedProgram` carrying the
per-address contexts, which the machine-state typing judgment and the
executable Preservation checker consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.instructions import Instruction
from repro.statics.expressions import IntConst
from repro.types.errors import TypeCheckError
from repro.types.instructions import (
    VOID,
    InstructionHint,
    NO_HINT,
    check_instruction,
    check_jump_target,
)
from repro.types.syntax import (
    BasicType,
    CodeType,
    HeapType,
    RegType,
    StaticContext,
    check_code_type_closed,
)
from repro.core.registers import PC_B, PC_G


@dataclass
class CheckedProgram:
    """The outcome of a successful ``Psi |- C`` check."""

    #: Full heap typing: data addresses -> ref types, labels -> code types.
    psi: Dict[int, BasicType]
    #: The precondition context established at *every* code address.
    contexts: Dict[int, StaticContext]
    #: Label addresses (the declared block entries).
    labels: Dict[int, CodeType] = field(default_factory=dict)


def _validate(
    code: Mapping[int, Instruction],
    label_types: Mapping[int, CodeType],
    data_psi: Mapping[int, BasicType],
) -> Tuple[Dict[int, BasicType], List[int]]:
    """The whole-program well-formedness checks (run once, in the parent)."""
    if not label_types:
        raise TypeCheckError("a program needs at least one labeled block")
    for address, code_type in label_types.items():
        if address not in code:
            raise TypeCheckError(f"label at {address} has no instruction")
        check_code_type_closed(code_type)
    for address in label_types:
        if address in data_psi:
            raise TypeCheckError(
                f"address {address} is both code and data", address
            )
    psi: Dict[int, BasicType] = dict(data_psi)
    psi.update(label_types)
    addresses = sorted(code)
    if addresses[0] not in label_types:
        raise TypeCheckError(
            f"first code address {addresses[0]} is not labeled", addresses[0]
        )
    return psi, addresses


def _split_blocks(
    addresses: List[int], label_types: Mapping[int, CodeType]
) -> List[List[int]]:
    """Partition the sorted code addresses into basic blocks.

    A block starts at every label and at every discontinuity of the
    address sequence, and runs to the next such boundary.  This mirrors
    exactly how the serial context-threading loop propagates state: a
    context only ever flows from ``address`` to ``address + 1``, and
    labeled addresses restart from their declared precondition.
    """
    blocks: List[List[int]] = []
    current: List[int] = []
    previous: Optional[int] = None
    for address in addresses:
        if address in label_types or previous is None \
                or address != previous + 1:
            current = [address]
            blocks.append(current)
        else:
            current.append(address)
        previous = address
    return blocks


def _check_block(
    psi: HeapType,
    code: Mapping[int, Instruction],
    label_types: Mapping[int, CodeType],
    hints: Mapping[int, InstructionHint],
    block: List[int],
) -> Dict[int, StaticContext]:
    """Check one basic block from its declared precondition.

    Returns the per-address contexts of the block; raises
    :class:`TypeCheckError` at the block's first ill-typed address.  The
    loop body is the exact serial rule: the only contexts entering from
    outside the block are declared label preconditions.
    """
    entry = block[0]
    declared = label_types.get(entry)
    current: Optional[StaticContext]
    if declared is None:
        current = None
    else:
        current = declared.context
    contexts: Dict[int, StaticContext] = {}
    for address in block:
        if current is None:
            raise TypeCheckError(
                "unreachable unlabeled instruction (no context flows here)",
                address,
            )
        contexts[address] = current
        result = check_instruction(
            psi, current, code[address], hints.get(address, NO_HINT), address
        )
        successor = address + 1
        if result is VOID:
            # Control never falls through; the next address (if any) must be
            # a fresh label.
            if successor in code and successor not in label_types:
                raise TypeCheckError(
                    "instruction after a non-falling-through instruction "
                    "must be labeled",
                    successor,
                )
            current = None
            continue
        assert isinstance(result, StaticContext)
        if successor not in code:
            raise TypeCheckError(
                "control falls off the end of code memory", address
            )
        if successor in label_types:
            # Fall-through into a labeled block: the computed postcondition
            # must establish the declared precondition (same subsumption
            # check as a jump, with the transfer address = successor).
            target = label_types[successor]
            green_expr = _pc_expr(result, PC_G, address)
            blue_expr = _pc_expr(result, PC_B, address)
            try:
                check_jump_target(
                    psi, result, target, green_expr, blue_expr,
                    hints.get(address, NO_HINT).subst,
                )
            except TypeCheckError as exc:
                raise TypeCheckError(
                    f"fall-through into label {successor} fails: {exc.args[0]}",
                    address,
                ) from None
            current = None
        else:
            current = result
    return contexts


def check_program(
    code: Mapping[int, Instruction],
    label_types: Mapping[int, CodeType],
    data_psi: Mapping[int, BasicType],
    hints: Optional[Mapping[int, InstructionHint]] = None,
    jobs: Optional[int] = None,
) -> CheckedProgram:
    """Check ``Psi |- C`` and return the computed per-address contexts.

    ``label_types`` declares the code type of each block entry;
    ``data_psi`` types the data addresses; ``hints`` maps code addresses to
    their :class:`InstructionHint`.

    ``jobs`` selects the execution strategy: ``None`` or ``1`` checks the
    blocks serially in this process; ``N > 1`` fans them out over ``N``
    worker processes; ``0`` uses one worker per CPU.  Every strategy
    produces an identical :class:`CheckedProgram` and, on ill-typed input,
    raises the identical (lowest-addressed) :class:`TypeCheckError`.

    Raises :class:`TypeCheckError` (with the offending address) on failure.
    """
    from repro.observe import get_registry, phase_timer
    from time import perf_counter as _perf_counter

    hints = hints or {}
    registry = get_registry()
    with phase_timer("typecheck", registry):
        psi, addresses = _validate(code, label_types, data_psi)
        blocks = _split_blocks(addresses, label_types)

        contexts: Dict[int, StaticContext] = {}
        if jobs is not None and jobs != 1 and len(blocks) > 1:
            from repro.types.parallel import check_blocks_parallel

            for block_contexts in check_blocks_parallel(
                psi, code, label_types, hints, blocks, jobs
            ):
                contexts.update(block_contexts)
        else:
            block_seconds = registry.histogram("typecheck_block_seconds")
            for block in blocks:
                block_start = _perf_counter()
                contexts.update(
                    _check_block(psi, code, label_types, hints, block)
                )
                block_seconds.observe(_perf_counter() - block_start)
        registry.counter("typecheck_blocks_total").inc(len(blocks))
        registry.counter("typecheck_instructions_total").inc(len(addresses))

    return CheckedProgram(psi=psi, contexts=contexts, labels=dict(label_types))


def _pc_expr(context: StaticContext, pc: str, address: int):
    assign = context.gamma.get(pc)
    if not isinstance(assign, RegType):
        raise TypeCheckError(f"{pc} has a conditional type", address)
    return assign.expr
