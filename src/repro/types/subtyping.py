"""Value and register-file subtyping.

The paper's subtyping relation forgets singleton precision: every type
``(c, b, E1)`` is a subtype of ``(c, int, E2)`` when ``Delta |- E1 = E2``
(a code pointer or reference can always be *used* as the integer it is).
Register-file subtyping ``Delta |- Gamma1 <= Gamma2`` is pointwise on the
general-purpose registers; the special registers ``d``, ``pcG`` and ``pcB``
are deliberately unrelated (their invariants are enforced by the
instruction rules instead).
"""

from __future__ import annotations

from repro.statics.kinds import KindContext
from repro.statics.normalize import prove_equal
from repro.types.errors import TypeCheckError
from repro.types.syntax import (
    CondType,
    IntType,
    RegAssign,
    RegFileType,
    RegType,
    reg_assign_equal,
)


def check_subtype(sub: RegAssign, sup: RegAssign, delta: KindContext) -> None:
    """``Delta |- t <= t'``.  Raises :class:`TypeCheckError` on failure."""
    # Reflexivity (modulo provable expression equality).
    if reg_assign_equal(sub, sup, delta):
        return
    # (c, b, E1) <= (c, int, E2) when Delta |- E1 = E2.
    if (
        isinstance(sub, RegType)
        and isinstance(sup, RegType)
        and isinstance(sup.basic, IntType)
        and sub.color is sup.color
        and prove_equal(sub.expr, sup.expr, delta)
    ):
        return
    raise TypeCheckError(f"{sub} is not a subtype of {sup}")


def is_subtype(sub: RegAssign, sup: RegAssign, delta: KindContext) -> bool:
    try:
        check_subtype(sub, sup, delta)
    except TypeCheckError:
        return False
    return True


def check_regfile_subtype(
    sub: RegFileType, sup: RegFileType, delta: KindContext
) -> None:
    """``Delta |- Gamma1 <= Gamma2`` -- pointwise on general-purpose registers.

    Every GPR typed by ``sup`` must be typed by a subtype in ``sub``.  The
    special registers are exempt, following the paper.
    """
    sub_assigns = sub.as_mapping()
    sup_assigns = sup.as_mapping()
    for name in sup.gprs():
        wanted = sup_assigns[name]
        actual = sub_assigns.get(name)
        if actual is None:
            raise TypeCheckError(f"register {name} missing from subtype Gamma")
        if actual is wanted:
            continue
        # Inlined reflexivity fast path (the common case after a jump
        # substitution: identical hash-consed expression, singleton basic).
        if (
            type(actual) is RegType
            and type(wanted) is RegType
            and actual.color is wanted.color
            and actual.expr is wanted.expr
            and actual.basic is wanted.basic
        ):
            continue
        try:
            check_subtype(actual, wanted, delta)
        except TypeCheckError as exc:
            raise TypeCheckError(f"register {name}: {exc}") from None


def regfile_subtype_ok(
    sub: RegFileType, sup: RegFileType, delta: KindContext
) -> bool:
    try:
        check_regfile_subtype(sub, sup, delta)
    except TypeCheckError:
        return False
    return True


def coerce_to_int(assign: RegAssign, register: str, delta: KindContext) -> RegType:
    """View ``assign`` at type ``(c, int, E)`` via subtyping.

    The arithmetic rules require integer operands; by the subtyping relation
    any unconditional register type can be weakened to its integer view.
    Conditional types cannot.
    """
    if isinstance(assign, CondType):
        raise TypeCheckError(
            f"register {register} has conditional type {assign}; "
            "an integer is required"
        )
    if type(assign.basic) is IntType:  # already the integer view
        return assign
    return RegType(assign.color, IntType(), assign.expr)
