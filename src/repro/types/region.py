"""Masked-region addressing: typing dynamic array accesses.

The paper's singleton types can type loads and stores only through values
whose *exact* address is statically known -- enough for the formal core,
but not for compiled array code.  This module implements the documented
extension (DESIGN.md section 5): an address expression of the shape

    base + (E & mask)        with ``base``, ``mask`` literal,
                             ``mask + 1`` a power of two,

provably lies in ``[base, base + mask]``; if every address in that range
is typed ``b ref`` by the heap typing, the expression may be used where a
``b ref`` is required.  The extension is *sound*: it only adds memory-
safety knowledge, while the green/blue agreement obligations (the fault-
tolerance content of the rules) still go through the singleton expressions
unchanged.

The MWL compiler emits exactly this shape for every array access (arrays
are padded to power-of-two sizes and indices are masked).
"""

from __future__ import annotations

from typing import Optional

from repro.statics.expressions import BinExpr, Expr, IntConst
from repro.statics.kinds import KindContext
from repro.statics.normalize import normalize_int
from repro.types.syntax import BasicType, HeapType, RefType, basic_type_equal

#: Safety cap on region sizes (the membership check enumerates addresses).
MAX_REGION_SIZE = 1 << 20


def region_bounds(expr: Expr) -> Optional[range]:
    """The provable address range of ``expr``, if it has the masked shape."""
    normal = normalize_int(expr)
    if isinstance(normal, IntConst):
        return range(normal.value, normal.value + 1)
    base = 0
    rest = normal
    if isinstance(normal, BinExpr) and normal.op == "add" \
            and isinstance(normal.left, IntConst):
        base = normal.left.value
        rest = normal.right
    mask = _mask_of(rest)
    if mask is None or mask >= MAX_REGION_SIZE:
        return None
    return range(base, base + mask + 1)


def _mask_of(expr: Expr) -> Optional[int]:
    """``mask`` if ``expr`` is ``E & mask`` with ``mask + 1`` a power of 2."""
    if not isinstance(expr, BinExpr) or expr.op != "and":
        return None
    for operand in (expr.right, expr.left):
        if isinstance(operand, IntConst):
            mask = operand.value
            if mask >= 0 and (mask + 1) & mask == 0:
                return mask
    return None


def region_pointee(
    psi: HeapType, expr: Expr, delta: KindContext
) -> Optional[BasicType]:
    """The common pointee type of the region ``expr`` addresses, if any.

    Returns ``None`` unless the expression has the masked shape *and*
    every address it can denote is typed as a reference to one common
    basic type.
    """
    bounds = region_bounds(expr)
    if bounds is None:
        return None
    pointee: Optional[BasicType] = None
    for address in bounds:
        declared = psi.get(address)
        if not isinstance(declared, RefType):
            return None
        if pointee is None:
            pointee = declared.pointee
        elif declared.pointee is not pointee \
                and not basic_type_equal(declared.pointee, pointee, delta):
            return None
    return pointee
