"""Type syntax of TAL_FT (Figure 5).

::

    zap tags      Z  ::= . | c
    basic types   b  ::= int | T -> void | b ref
    reg types     t  ::= (c, b, E) | E' = 0 => (c, b, E)
    regfile types G  ::= . | G, a -> t
    heap typing   Psi::= . | Psi, n : b
    static ctx    T  ::= (Delta; Gamma; (Ed, Es); Em)

A register type is a *singleton*: it records the color of the value, its
basic shape, and a static expression the value provably equals when its
color is fault-free.  The conditional form ``E'=0 => (c,b,E)`` types the
destination register between a ``bzG`` and the matching ``bzB``.

Design restriction (documented in DESIGN.md): code types are **closed** --
every free expression variable of the inner context is bound by the inner
``Delta``.  Substitution therefore never descends into a
:class:`CodeType`, avoiding variable capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.core.colors import Color
from repro.core.registers import DEST, PC_B, PC_G, is_gpr, is_register
from repro.statics.expressions import Expr, IntConst, Var, free_vars
from repro.statics.kinds import KIND_INT, KIND_MEM, KindContext
from repro.statics.normalize import add_const, prove_equal
from repro.statics.substitution import Subst
from repro.types.errors import TypeCheckError

#: A zap tag ``Z``: ``None`` (no fault so far) or the color that may have
#: been corrupted.
ZapTag = Optional[Color]


# ---------------------------------------------------------------------------
# Basic types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BasicType:
    """Base class of basic types ``b``."""


@dataclass(frozen=True)
class IntType(BasicType):
    """``int`` -- any bit pattern.

    A singleton: ``IntType() is IntType()``, so the identity fast paths of
    :func:`reg_assign_equal` fire for the overwhelmingly common int/int case.
    """

    _instance = None

    def __new__(cls) -> "IntType":
        instance = cls._instance
        if instance is None:
            instance = super().__new__(cls)
            IntType._instance = instance
        return instance

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class RefType(BasicType):
    """``b ref`` -- a pointer to a value of basic type ``b``."""

    pointee: BasicType

    def __str__(self) -> str:
        return f"{self.pointee} ref"


@dataclass(frozen=True)
class CodeType(BasicType):
    """``T -> void`` -- a code pointer whose precondition is ``T``."""

    context: "StaticContext"

    def __str__(self) -> str:
        return f"{self.context} -> void"


INT = IntType()

_ONE = IntConst(1)


# ---------------------------------------------------------------------------
# Register types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegType:
    """``(c, b, E)`` -- a colored singleton type."""

    color: Color
    basic: BasicType
    expr: Expr

    def __str__(self) -> str:
        return f"({self.color}, {self.basic}, {self.expr})"


@dataclass(frozen=True)
class CondType:
    """``E' = 0 => (c, b, E)`` -- the conditional type of ``d`` after ``bzG``.

    When ``E'`` equals 0 (the branch *was* taken by the green computation)
    values of this type have the inner type; when ``E'`` is nonzero the value
    must be 0 (no announcement happened).
    """

    guard: Expr
    inner: RegType

    def __str__(self) -> str:
        return f"{self.guard} = 0 => {self.inner}"


#: What a register-file type assigns to each register.
RegAssign = Union[RegType, CondType]


def reg_assign_free_vars(assign: RegAssign):
    if isinstance(assign, CondType):
        return free_vars(assign.guard) | free_vars(assign.inner.expr)
    return free_vars(assign.expr)


def subst_reg_assign(subst: Subst, assign: RegAssign) -> RegAssign:
    """Apply a substitution to a register type.

    Code types are closed (module invariant) so the traversal stops at
    :class:`CodeType` boundaries.
    """
    if isinstance(assign, CondType):
        inner = subst_reg_assign(subst, assign.inner)
        assert isinstance(inner, RegType)
        guard = subst.apply(assign.guard)
        if inner is assign.inner and guard is assign.guard:
            return assign
        return CondType(guard, inner)
    expr = subst.apply(assign.expr)
    if expr is assign.expr:  # hash-consed pruning: nothing to rewrite
        return assign
    return RegType(assign.color, assign.basic, expr)


# ---------------------------------------------------------------------------
# Register-file types
# ---------------------------------------------------------------------------


class RegFileType:
    """``Gamma`` -- an immutable total map from register names to types.

    Functional updates (:meth:`set`, :meth:`bump_pcs`, :meth:`apply_subst`)
    go through the trusted constructor :meth:`_trusted`, which skips the
    name validation of ``__init__`` -- the register-name set is unchanged
    (or extended by one already-validated name), so revalidating every name
    on every update would only re-prove the invariant.  The GPR name tuple
    is computed lazily and carried across updates for the same reason.
    """

    __slots__ = ("_assigns", "_gprs")

    def __init__(self, assigns: Mapping[str, RegAssign]):
        for name in assigns:
            if not is_register(name):
                raise TypeCheckError(f"Gamma mentions non-register {name!r}")
        for special in (PC_G, PC_B, DEST):
            if special not in assigns:
                raise TypeCheckError(f"Gamma must assign a type to {special}")
        self._assigns: Dict[str, RegAssign] = dict(assigns)
        self._gprs: Optional[Tuple[str, ...]] = None

    @classmethod
    def _trusted(
        cls,
        assigns: Dict[str, RegAssign],
        gprs: Optional[Tuple[str, ...]] = None,
    ) -> "RegFileType":
        """Wrap an already-validated assignment dict (takes ownership)."""
        regfile = object.__new__(cls)
        regfile._assigns = assigns
        regfile._gprs = gprs
        return regfile

    def get(self, name: str) -> RegAssign:
        try:
            return self._assigns[name]
        except KeyError:
            raise TypeCheckError(f"Gamma assigns no type to register {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._assigns

    def set(self, name: str, assign: RegAssign) -> "RegFileType":
        """Functional update ``Gamma[a -> t]``."""
        if not is_register(name):
            raise TypeCheckError(f"not a register: {name!r}")
        known = name in self._assigns
        updated = dict(self._assigns)
        updated[name] = assign
        return RegFileType._trusted(updated, self._gprs if known else None)

    def bump_pcs(self) -> "RegFileType":
        """``Gamma++`` -- add one to each program counter's static expression."""
        return self.bump_pcs_and_set()

    def bump_pcs_and_set(
        self, name: Optional[str] = None, assign: Optional[RegAssign] = None
    ) -> "RegFileType":
        """``Gamma++[a -> t]`` in one copy -- the per-instruction fast path.

        Every fall-through instruction bumps both program counters and most
        also retype their destination register; fusing the two functional
        updates halves the dict copies on the checker's hottest path.
        """
        assigns = self._assigns
        updated = dict(assigns)
        for pc in (PC_G, PC_B):
            pc_assign = assigns[pc]
            if not isinstance(pc_assign, RegType):
                raise TypeCheckError(f"{pc} has a conditional type")
            bumped = add_const(pc_assign.expr, 1)
            updated[pc] = RegType(pc_assign.color, pc_assign.basic, bumped)
        gprs = self._gprs
        if name is not None:
            if not is_register(name):
                raise TypeCheckError(f"not a register: {name!r}")
            if name not in assigns:
                gprs = None
            updated[name] = assign
        return RegFileType._trusted(updated, gprs)

    def registers(self) -> Tuple[str, ...]:
        return tuple(self._assigns)

    def gprs(self) -> Tuple[str, ...]:
        cached = self._gprs
        if cached is None:
            cached = tuple(name for name in self._assigns if is_gpr(name))
            self._gprs = cached
        return cached

    def items(self) -> Iterable[Tuple[str, RegAssign]]:
        return self._assigns.items()

    def as_mapping(self) -> Mapping[str, RegAssign]:
        """The underlying assignment mapping (read-only by convention).

        For hot loops that look up many registers: skips the per-call
        method dispatch and error wrapping of :meth:`get`.
        """
        return self._assigns

    def apply_subst(self, subst: Subst) -> "RegFileType":
        # Specialised loop: jump-site instantiations touch every register
        # (solved-form preconditions bind one variable per register), so the
        # per-register work must stay minimal.  The common case -- a RegType
        # whose expression is exactly a bound variable -- is handled inline;
        # everything else falls back to :func:`subst_reg_assign`.
        mapping = subst.as_mapping()
        out = {}
        for name, assign in self._assigns.items():
            if type(assign) is RegType:
                expr = assign.expr
                if type(expr) is Var:
                    image = mapping.get(expr.name)
                    if image is not None and image is not expr:
                        assign = RegType(assign.color, assign.basic, image)
                else:
                    image = subst.apply(expr)
                    if image is not expr:
                        assign = RegType(assign.color, assign.basic, image)
            else:
                assign = subst_reg_assign(subst, assign)
            out[name] = assign
        return RegFileType._trusted(out, self._gprs)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RegFileType) and self._assigns == other._assigns

    def __repr__(self) -> str:
        return f"<RegFileType {len(self._assigns)} registers>"


# ---------------------------------------------------------------------------
# Static contexts and heap typings
# ---------------------------------------------------------------------------

#: The static description of the store queue: ``(Ed, Es)`` pairs, front
#: (newest) first -- the same order as the run-time queue.
QueueType = Tuple[Tuple[Expr, Expr], ...]


@dataclass(frozen=True)
class StaticContext:
    """``T = (Delta; Gamma; (Ed, Es); Em)``.

    ``delta`` binds the expression variables, ``gamma`` types the register
    file, ``queue`` describes the store queue (front first) and ``mem``
    describes value memory.
    """

    delta: KindContext
    gamma: RegFileType
    queue: QueueType
    mem: Expr

    def apply_subst(self, subst: Subst) -> "StaticContext":
        """Instantiate the context (the binder ``delta`` becomes empty)."""
        return StaticContext(
            delta=KindContext(),
            gamma=self.gamma.apply_subst(subst),
            queue=tuple(
                (subst.apply(ed), subst.apply(es)) for ed, es in self.queue
            ),
            mem=subst.apply(self.mem),
        )

    def with_gamma(self, gamma: RegFileType) -> "StaticContext":
        return StaticContext(self.delta, gamma, self.queue, self.mem)

    def with_queue(self, queue: QueueType) -> "StaticContext":
        return StaticContext(self.delta, self.gamma, queue, self.mem)

    def with_mem(self, mem: Expr) -> "StaticContext":
        return StaticContext(self.delta, self.gamma, self.queue, mem)

    def __str__(self) -> str:
        return f"({self.delta}; Gamma; |Q|={len(self.queue)}; {self.mem})"


#: ``Psi`` -- the heap typing: basic types for code and data addresses.
HeapType = Mapping[int, BasicType]


# ---------------------------------------------------------------------------
# Type equality (modulo provable expression equality)
# ---------------------------------------------------------------------------


def basic_type_equal(left: BasicType, right: BasicType, delta: KindContext) -> bool:
    """Structural equality of basic types, with provable-equality on the
    expressions buried inside code types."""
    if isinstance(left, IntType) and isinstance(right, IntType):
        return True
    if isinstance(left, RefType) and isinstance(right, RefType):
        return basic_type_equal(left.pointee, right.pointee, delta)
    if isinstance(left, CodeType) and isinstance(right, CodeType):
        return context_equal(left.context, right.context)
    return False


def reg_assign_equal(left: RegAssign, right: RegAssign, delta: KindContext) -> bool:
    if left is right:
        return True
    if isinstance(left, CondType) and isinstance(right, CondType):
        return prove_equal(left.guard, right.guard, delta) and \
            reg_assign_equal(left.inner, right.inner, delta)
    if isinstance(left, RegType) and isinstance(right, RegType):
        if left.color is not right.color:
            return False
        # Hash-consing fast path: identical expressions and identical basic
        # types (IntType is a singleton) need no prover call.
        if left.expr is right.expr and left.basic is right.basic:
            return True
        return basic_type_equal(left.basic, right.basic, delta) \
            and prove_equal(left.expr, right.expr, delta)
    return False


def context_equal(left: StaticContext, right: StaticContext) -> bool:
    """Equality of (closed) static contexts.

    Used to compare the code types of the green and blue copies of a jump
    target.  Requires identical binders; register types, queue descriptions
    and memory descriptions are compared up to provable expression equality
    under the shared binder.
    """
    if left is right:
        return True
    if left.delta != right.delta:
        return False
    delta = left.delta
    if set(left.gamma.registers()) != set(right.gamma.registers()):
        return False
    if len(left.queue) != len(right.queue):
        return False
    for name, assign in left.gamma.items():
        if not reg_assign_equal(assign, right.gamma.get(name), delta):
            return False
    for (led, les), (red, res) in zip(left.queue, right.queue):
        if not prove_equal(led, red, delta) or not prove_equal(les, res, delta):
            return False
    return prove_equal(left.mem, right.mem, delta)


def check_code_type_closed(code_type: CodeType) -> None:
    """Enforce the closed-code-type restriction (see module docstring).

    Closedness is a property of the (immutable) code type alone, so a
    successful check is memoized on the object -- label types are
    re-validated on every :func:`check_program` run.
    """
    if code_type.__dict__.get("_closed_ok"):
        return
    context = code_type.context
    bound = set(context.delta.names())
    unbound = set()
    for _, assign in context.gamma.items():
        unbound |= reg_assign_free_vars(assign) - bound
    for ed, es in context.queue:
        unbound |= (free_vars(ed) | free_vars(es)) - bound
    unbound |= free_vars(context.mem) - bound
    if unbound:
        raise TypeCheckError(
            f"code type mentions unbound expression variables {sorted(unbound)}"
        )
    object.__setattr__(code_type, "_closed_ok", True)


def make_entry_gamma(
    num_gprs: int,
    entry: int,
    gpr_colors: Mapping[str, Color],
) -> RegFileType:
    """A boot register-file type: every register zeroed at its color.

    Matches :meth:`repro.core.state.RegisterFile.initial`, so booted states
    are well-typed by construction.
    """
    from repro.core.registers import gpr_range

    zero = IntConst(0)
    assigns: Dict[str, RegAssign] = {
        PC_G: RegType(Color.GREEN, INT, IntConst(entry)),
        PC_B: RegType(Color.BLUE, INT, IntConst(entry)),
        DEST: RegType(Color.GREEN, INT, zero),
    }
    for name in gpr_range(num_gprs):
        color = gpr_colors.get(name, Color.GREEN)
        assigns[name] = RegType(color, INT, zero)
    return RegFileType(assigns)
