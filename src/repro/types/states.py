"""Machine-state typing (Figure 8): ``|-_Z S``.

A state ``(R, C, M, Q, ir)`` is well-typed under zap tag ``Z`` when there is
a substitution ``S`` closing the precondition ``T`` at the (non-zapped)
program counter such that the register file, memory and queue all satisfy
their typing judgments (rules ``R-t``, ``M-t``, ``Q-t``/``Q-zap-t``,
``S-t``).  The ``fault`` state is never well-typed.

:func:`check_state` is the executable form of ``S-t``; the existential
substitution is supplied by the caller (the Preservation checker threads it
along execution) or recovered by :func:`infer_closing_subst` for solved-form
contexts.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.colors import Color
from repro.core.instructions import Instruction
from repro.core.registers import DEST, PC_B, PC_G
from repro.core.state import MachineState, Status
from repro.statics.expressions import (
    Expr,
    IntConst,
    StaticsError,
    Var,
    denote,
    free_vars,
    memory_to_expr,
)
from repro.statics.kinds import KIND_INT, EMPTY_CONTEXT, infer_kind
from repro.statics.substitution import Subst, check_substitution
from repro.types.errors import StateTypeError
from repro.types.syntax import (
    CondType,
    HeapType,
    RefType,
    RegType,
    StaticContext,
    ZapTag,
)
from repro.types.values import check_heap_value, check_value


def _denote_closed_int(expr: Expr, what: str) -> int:
    if free_vars(expr):
        raise StateTypeError(f"{what} expression {expr} is not closed")
    value = denote(expr)
    if not isinstance(value, int):
        raise StateTypeError(f"{what} expression {expr} is not an integer")
    return value


def check_state(
    psi: HeapType,
    code: Mapping[int, Instruction],
    context: StaticContext,
    subst: Subst,
    state: MachineState,
    zap: ZapTag = None,
) -> None:
    """Check ``|-_Z S`` against precondition ``context`` closed by ``subst``.

    Raises :class:`StateTypeError` when any premise of ``S-t`` fails.
    """
    if state.status is Status.FAULT_DETECTED:
        raise StateTypeError("the fault state is never well-typed")
    if state.status is Status.HALTED:
        raise StateTypeError("halted states are terminal, not typed")

    check_substitution(subst, EMPTY_CONTEXT, context.delta)
    closed = context.apply_subst(subst)

    # S-t domain premises.
    if zap is not Color.GREEN:
        for address, _ in state.queue.pairs():
            if address not in state.memory:
                raise StateTypeError(
                    f"queue address {address} is outside Dom(M)"
                )

    # ir consistency: the loaded instruction matches code memory at the
    # program counter of each non-zapped color.
    if state.ir is not None:
        for pc, color in ((PC_G, Color.GREEN), (PC_B, Color.BLUE)):
            if zap is color:
                continue
            pc_value = state.regs.value(pc)
            if state.code.get(pc_value) != state.ir:
                raise StateTypeError(
                    f"loaded instruction {state.ir} does not match code at "
                    f"{pc} = {pc_value}"
                )

    _check_register_file(psi, closed, state, zap)
    _check_memory(psi, closed, state)
    _check_queue(psi, closed, state, zap)


def _check_register_file(
    psi: HeapType, closed: StaticContext, state: MachineState, zap: ZapTag
) -> None:
    """Rule ``R-t``."""
    gamma = closed.gamma
    for pc, color in ((PC_G, Color.GREEN), (PC_B, Color.BLUE)):
        assign = gamma.get(pc)
        if not isinstance(assign, RegType) or assign.color is not color:
            raise StateTypeError(f"Gamma types {pc} at the wrong color")
    green_expr = gamma.get(PC_G).expr  # type: ignore[union-attr]
    blue_expr = gamma.get(PC_B).expr  # type: ignore[union-attr]
    if _denote_closed_int(green_expr, "pcG") != _denote_closed_int(
        blue_expr, "pcB"
    ):
        raise StateTypeError("pcG and pcB static expressions disagree")
    for name in gamma.registers():
        try:
            check_value(psi, EMPTY_CONTEXT, zap, state.regs.get(name),
                        gamma.get(name))
        except Exception as exc:
            raise StateTypeError(f"register {name}: {exc}") from None


def _check_memory(psi: HeapType, closed: StaticContext, state: MachineState) -> None:
    """Rule ``M-t``: ``[[Em]] = M`` and every location is well-typed."""
    try:
        described = denote(closed.mem)
    except StaticsError as exc:
        raise StateTypeError(f"memory description: {exc}") from None
    if described != state.memory:
        raise StateTypeError(
            "memory description does not denote the actual memory"
        )
    for address, value in state.memory.items():
        declared = psi.get(address)
        if not isinstance(declared, RefType):
            raise StateTypeError(
                f"data address {address} is not typed as a reference in Psi"
            )
        try:
            check_heap_value(psi, value, declared.pointee, EMPTY_CONTEXT)
        except Exception as exc:
            raise StateTypeError(f"memory[{address}]: {exc}") from None


def _check_queue(
    psi: HeapType, closed: StaticContext, state: MachineState, zap: ZapTag
) -> None:
    """Rules ``Q-emp-t``, ``Q-t`` and ``Q-zap-t``."""
    pairs = state.queue.pairs()
    if len(pairs) != len(closed.queue):
        raise StateTypeError(
            f"queue length {len(pairs)} does not match its description "
            f"({len(closed.queue)} pairs)"
        )
    if zap is Color.GREEN:
        # Q-zap-t: the queue is a green structure; under a green zap only
        # well-kindedness and length are required.
        for ed, es in closed.queue:
            for expr in (ed, es):
                if free_vars(expr) or infer_kind(expr) is not KIND_INT:
                    raise StateTypeError(
                        f"queue description {expr} is not a closed ι_int"
                    )
        return
    for (address, value), (ed, es) in zip(pairs, closed.queue):
        declared = psi.get(address)
        if not isinstance(declared, RefType):
            raise StateTypeError(
                f"queued address {address} is not a reference in Psi"
            )
        try:
            check_heap_value(psi, value, declared.pointee, EMPTY_CONTEXT)
        except Exception as exc:
            raise StateTypeError(f"queued value {value}: {exc}") from None
        if _denote_closed_int(ed, "queue address") != address:
            raise StateTypeError(
                f"queue address {address} does not match description {ed}"
            )
        if _denote_closed_int(es, "queue value") != value:
            raise StateTypeError(
                f"queue value {value} does not match description {es}"
            )


def infer_closing_subst(
    context: StaticContext,
    state: MachineState,
    zap: ZapTag = None,
) -> Subst:
    """Recover a closing substitution for a solved-form context.

    Binder variables are matched against the concrete state wherever they
    occur as the entire expression of a register type (at a non-zapped
    color), a queue slot, or the memory description.  Complete for the
    block-entry contexts the compiler emits.
    """
    binder = context.delta
    images = {}

    def bind(pattern: Expr, image: Expr) -> None:
        if isinstance(pattern, Var) and pattern.name in binder \
                and pattern.name not in images:
            images[pattern.name] = image

    bind(context.mem, memory_to_expr(state.memory))
    # First pass: registers of non-zapped colors (their values are trusted).
    # Second pass: zapped-color registers as a fallback -- sound because the
    # zap rule types such registers at anything, so a variable bound *only*
    # through them is unconstrained elsewhere.
    for trusted in (True, False):
        for name in context.gamma.registers():
            assign = context.gamma.get(name)
            if isinstance(assign, CondType):
                # The register's run-time value only matches the inner
                # expression when the guard is zero; conditional types are
                # not solved forms, so their variables must be bound via
                # other registers.
                continue
            zapped = zap is not None and assign.color is zap
            if zapped == trusted:
                continue
            bind(assign.expr, IntConst(state.regs.value(name)))
    if zap is not Color.GREEN:
        for (address, value), (ed, es) in zip(
            state.queue.pairs(), context.queue
        ):
            bind(ed, IntConst(address))
            bind(es, IntConst(value))
    missing = [name for name, _ in binder.items() if name not in images]
    if missing:
        raise StateTypeError(
            f"cannot infer a closing substitution for variables {missing}"
        )
    return Subst(images)
