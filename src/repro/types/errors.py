"""Type-checking errors."""

from __future__ import annotations

from typing import Optional

from repro.core.errors import ReproError


def _rebuild_error(cls, args, address):
    """Reconstruct a :class:`TypeCheckError` without re-running ``__init__``.

    The constructor formats the address into the message; naive unpickling
    would re-run it on the already-formatted message (duplicating the
    location suffix) and lose ``address``.  Used by ``__reduce__`` so
    errors cross process boundaries intact (parallel block checking).
    """
    error = cls.__new__(cls)
    Exception.__init__(error, *args)
    error.address = address
    return error


class TypeCheckError(ReproError):
    """A TAL_FT typing judgment failed.

    Carries the code address being checked (when known) and the judgment
    that failed, so compiler bugs surface with actionable messages -- the
    paper's motivating use case for the checker.
    """

    def __init__(self, message: str, address: Optional[int] = None):
        location = f" (at code address {address})" if address is not None else ""
        super().__init__(f"{message}{location}")
        self.address = address

    def __reduce__(self):
        return (_rebuild_error, (type(self), self.args, self.address))


class StateTypeError(TypeCheckError):
    """A machine-state typing judgment (Figure 8) failed."""
