"""Type-checking errors."""

from __future__ import annotations

from typing import Optional

from repro.core.errors import ReproError


class TypeCheckError(ReproError):
    """A TAL_FT typing judgment failed.

    Carries the code address being checked (when known) and the judgment
    that failed, so compiler bugs surface with actionable messages -- the
    paper's motivating use case for the checker.
    """

    def __init__(self, message: str, address: Optional[int] = None):
        location = f" (at code address {address})" if address is not None else ""
        super().__init__(f"{message}{location}")
        self.address = address


class StateTypeError(TypeCheckError):
    """A machine-state typing judgment (Figure 8) failed."""
