"""The TAL_FT type system (Section 3 of the paper).

* :mod:`repro.types.syntax`       -- type syntax (Figure 5)
* :mod:`repro.types.values`       -- value typing (Figure 6)
* :mod:`repro.types.subtyping`    -- value / register-file subtyping
* :mod:`repro.types.instructions` -- instruction typing (Figure 7)
* :mod:`repro.types.code`         -- code-memory typing (rule C-t)
* :mod:`repro.types.states`       -- machine-state typing (Figure 8)
"""

from repro.types.code import CheckedProgram, check_program
from repro.types.errors import StateTypeError, TypeCheckError
from repro.types.instructions import (
    VOID,
    InstructionHint,
    NO_HINT,
    ResultType,
    Void,
    check_instruction,
    check_jump_target,
    infer_jump_subst,
)
from repro.types.states import check_state, infer_closing_subst
from repro.types.subtyping import (
    check_regfile_subtype,
    check_subtype,
    coerce_to_int,
    is_subtype,
    regfile_subtype_ok,
)
from repro.types.syntax import (
    INT,
    BasicType,
    CodeType,
    CondType,
    HeapType,
    IntType,
    QueueType,
    RefType,
    RegAssign,
    RegFileType,
    RegType,
    StaticContext,
    ZapTag,
    basic_type_equal,
    check_code_type_closed,
    context_equal,
    make_entry_gamma,
    reg_assign_equal,
)
from repro.types.values import check_heap_value, check_value, heap_value_ok, value_ok

__all__ = [
    "BasicType",
    "CheckedProgram",
    "CodeType",
    "CondType",
    "HeapType",
    "INT",
    "InstructionHint",
    "IntType",
    "NO_HINT",
    "QueueType",
    "RefType",
    "RegAssign",
    "RegFileType",
    "RegType",
    "ResultType",
    "StateTypeError",
    "StaticContext",
    "TypeCheckError",
    "VOID",
    "Void",
    "ZapTag",
    "basic_type_equal",
    "check_code_type_closed",
    "check_heap_value",
    "check_instruction",
    "check_jump_target",
    "check_program",
    "check_regfile_subtype",
    "check_state",
    "check_subtype",
    "check_value",
    "coerce_to_int",
    "context_equal",
    "heap_value_ok",
    "infer_closing_subst",
    "infer_jump_subst",
    "is_subtype",
    "make_entry_gamma",
    "reg_assign_equal",
    "regfile_subtype_ok",
    "value_ok",
]
