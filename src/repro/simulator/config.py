"""Timing-model configuration: an Itanium-2-flavored in-order machine.

The evaluation machine of the paper is a 900 MHz Itanium 2 -- a 6-issue
in-order EPIC core with two load ports, two store ports and (for TAL_FT)
the new hardware structures: the store queue and the destination register.
The defaults below model that envelope; benchmarks sweep them for the
ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class MachineConfig:
    """Knobs of the timing model."""

    #: Instructions issued per cycle (Itanium 2: 6).
    issue_width: int = 6
    #: Loads that may issue per cycle.
    load_ports: int = 2
    #: Stores that may issue per cycle (``stG`` and ``stB`` both count).
    store_ports: int = 2
    #: Control-flow commits per cycle (``jmpB``/``bzB``/plain jumps).
    branch_ports: int = 1
    #: Extra cycles lost when a transfer is taken (front-end refill).
    branch_penalty: int = 3
    #: Operation latencies in cycles.
    latencies: Dict[str, int] = field(
        default_factory=lambda: {
            "alu": 1,
            "mul": 3,
            "load": 3,
            "store": 1,
            "branch": 1,
            "halt": 1,
        }
    )
    #: Store-queue capacity; a ``stG`` stalls when it is full.
    store_queue_depth: int = 16
    #: Cycles between a ``stG`` writing the store queue and the matching
    #: ``stB``'s compare being able to read it (the paper emulated these
    #: hardware-structure access dependences with extra instructions).
    queue_forward_latency: int = 1
    #: Cycles between a green control announcement writing ``d`` and the
    #: blue commit being able to read it.
    dest_forward_latency: int = 2
    #: When True, the green-before-blue ordering constraint is dropped for
    #: store pairs and two-phase control flow (the paper's "TAL-FT without
    #: ordering" configuration, backed by correlating hardware): the pair
    #: halves meet in a correlation buffer, so neither forwards through the
    #: in-order structures.
    relaxed_pairing: bool = False

    def latency(self, kind: str) -> int:
        return self.latencies[kind]


#: The default (constrained) TAL-FT machine.
DEFAULT_CONFIG = MachineConfig()

#: The "without ordering" machine of Figure 10: the correlation buffer
#: matches pair halves in either order (relaxed scheduling) and forwards
#: faster than the in-order queue/destination-register path.
RELAXED_CONFIG = MachineConfig(
    relaxed_pairing=True,
    queue_forward_latency=0,
    dest_forward_latency=2,
)
