"""Instruction classification and register read/write sets for timing.

Shared by the list scheduler and the issue model.  Program counters are
implicit (handled by the in-order front end); the destination register
``d`` is explicit -- it is exactly the serialization the two-phase
control-flow protocol introduces, which the timing model must see.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.colors import Color
from repro.core.instructions import (
    ArithRRI,
    ArithRRR,
    Bz,
    Halt,
    Instruction,
    Jmp,
    Load,
    Mov,
    PlainBz,
    PlainJmp,
    PlainLoad,
    PlainStore,
    Store,
)
from repro.core.registers import DEST


def kind_of(instruction: Instruction) -> str:
    """Latency class: alu / mul / load / store / branch / halt."""
    if isinstance(instruction, (ArithRRR, ArithRRI)):
        return "mul" if instruction.op == "mul" else "alu"
    if isinstance(instruction, Mov):
        return "alu"
    if isinstance(instruction, (Load, PlainLoad)):
        return "load"
    if isinstance(instruction, (Store, PlainStore)):
        return "store"
    if isinstance(instruction, (Jmp, Bz, PlainJmp, PlainBz)):
        return "branch"
    if isinstance(instruction, Halt):
        return "halt"
    raise TypeError(f"unknown instruction {instruction!r}")


def reads_of(instruction: Instruction) -> Tuple[str, ...]:
    if isinstance(instruction, ArithRRR):
        return (instruction.rs, instruction.rt)
    if isinstance(instruction, ArithRRI):
        return (instruction.rs,)
    if isinstance(instruction, Mov):
        return ()
    if isinstance(instruction, (Load, PlainLoad)):
        return (instruction.rs,)
    if isinstance(instruction, (Store, PlainStore)):
        return (instruction.rd, instruction.rs)
    if isinstance(instruction, Jmp):
        if instruction.color is Color.BLUE:
            return (instruction.rd, DEST)
        return (instruction.rd,)
    if isinstance(instruction, Bz):
        if instruction.color is Color.BLUE:
            return (instruction.rz, instruction.rd, DEST)
        return (instruction.rz, instruction.rd, DEST)
    if isinstance(instruction, PlainJmp):
        return (instruction.rd,)
    if isinstance(instruction, PlainBz):
        return (instruction.rz, instruction.rd)
    return ()


def writes_of(instruction: Instruction) -> Tuple[str, ...]:
    if isinstance(instruction, (ArithRRR, ArithRRI, Mov)):
        return (instruction.rd,)
    if isinstance(instruction, (Load, PlainLoad)):
        return (instruction.rd,)
    if isinstance(instruction, Jmp):
        if instruction.color is Color.GREEN:
            return (DEST,)
        return (DEST,)  # jmpB resets d
    if isinstance(instruction, Bz):
        return (DEST,)  # bzG may set d; bzB resets it
    return ()


def is_commit_branch(instruction: Instruction) -> bool:
    """True for instructions that may actually transfer control."""
    if isinstance(instruction, (PlainJmp, PlainBz)):
        return True
    if isinstance(instruction, (Jmp, Bz)):
        return instruction.color is Color.BLUE
    return False


def is_green_store(instruction: Instruction) -> bool:
    return isinstance(instruction, Store) and instruction.color is Color.GREEN


def is_blue_store(instruction: Instruction) -> bool:
    return isinstance(instruction, Store) and instruction.color is Color.BLUE


def is_green_control(instruction: Instruction) -> bool:
    return isinstance(instruction, (Jmp, Bz)) and \
        instruction.color is Color.GREEN
