"""Per-block list scheduling for the timing model.

The functional program order emitted by the compiler is already legal; the
scheduler reorders each basic block to expose instruction-level parallelism
to the in-order issue model, under the constraints the hardware imposes:

* register data dependences (RAW, WAR, WAW), including the destination
  register ``d`` -- the serialization at the heart of the two-phase
  control-flow protocol;
* store-queue FIFO order: green stores stay ordered, blue stores stay
  ordered, and (in the **constrained** machine) the i-th blue store may
  not precede the i-th green store.  The **relaxed** machine ("TAL-FT
  without ordering", Figure 10) drops the cross-color constraint -- its
  correlation hardware matches the pair in either order -- and likewise
  drops the ``d``-mediated green-before-blue edge of control-flow pairs;
* loads never cross stores (conservative aliasing);
* commit branches are barriers: nothing moves across a ``jmpB``/``bzB``
  (or plain jump), and they stay in order at the block end.

Priority is the longest latency-weighted path to the end of the block.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.instructions import Instruction
from repro.core.registers import DEST
from repro.simulator.config import MachineConfig
from repro.simulator.deps import (
    is_blue_store,
    is_commit_branch,
    is_green_control,
    is_green_store,
    kind_of,
    reads_of,
    writes_of,
)


def dependence_edges(
    instructions: Sequence[Instruction],
    relaxed: bool,
) -> List[Set[int]]:
    """``preds[i]`` = indices that must be scheduled before ``i``."""
    count = len(instructions)
    preds: List[Set[int]] = [set() for _ in range(count)]

    last_write: Dict[str, int] = {}
    last_reads: Dict[str, List[int]] = {}
    green_stores: List[int] = []
    blue_stores: List[int] = []
    last_store = -1
    last_load = -1
    last_branch = -1
    green_control: List[int] = []

    for index, instruction in enumerate(instructions):
        reads = reads_of(instruction)
        writes = writes_of(instruction)

        if relaxed and is_commit_branch(instruction) and green_control:
            # Drop the d-mediated green-before-blue edge: the relaxed
            # hardware correlates the pair in either order.  (The register
            # dependence through d is skipped below instead.)
            pass

        for reg in reads:
            if relaxed and reg == DEST:
                continue
            if reg in last_write:
                preds[index].add(last_write[reg])
        for reg in writes:
            if relaxed and reg == DEST:
                continue
            if reg in last_write:
                preds[index].add(last_write[reg])  # WAW
            for reader in last_reads.get(reg, ()):
                preds[index].add(reader)  # WAR
        # Memory ordering.
        kind = kind_of(instruction)
        if kind == "load":
            if last_store >= 0:
                preds[index].add(last_store)
            last_load = index
        elif kind == "store":
            if last_load >= 0:
                preds[index].add(last_load)
            if is_green_store(instruction):
                if green_stores:
                    preds[index].add(green_stores[-1])
                green_stores.append(index)
            elif is_blue_store(instruction):
                if blue_stores:
                    preds[index].add(blue_stores[-1])
                pair = len(blue_stores)
                if not relaxed and pair < len(green_stores):
                    preds[index].add(green_stores[pair])
                blue_stores.append(index)
            else:
                # Plain (baseline) store: keep stores ordered.
                if last_store >= 0:
                    preds[index].add(last_store)
            last_store = index
        # Branch barriers.
        if last_branch >= 0:
            preds[index].add(last_branch)
        if is_commit_branch(instruction) or kind == "halt":
            for earlier in range(index):
                preds[index].add(earlier)
            last_branch = index
        if is_green_control(instruction):
            green_control.append(index)

        for reg in reads:
            last_reads.setdefault(reg, []).append(index)
        for reg in writes:
            last_write[reg] = index
            last_reads[reg] = []
    return preds


def schedule_block(
    instructions: Sequence[Instruction],
    config: MachineConfig,
) -> List[int]:
    """A legal order of ``range(len(instructions))`` (original indices)."""
    count = len(instructions)
    preds = dependence_edges(instructions, config.relaxed_pairing)
    succs: List[Set[int]] = [set() for _ in range(count)]
    for index, pred_set in enumerate(preds):
        for pred in pred_set:
            succs[pred].add(index)

    # Priority: longest latency-weighted path to the block end.
    priority = [0] * count
    for index in range(count - 1, -1, -1):
        latency = config.latency(kind_of(instructions[index]))
        best = max((priority[s] for s in succs[index]), default=0)
        priority[index] = latency + best

    remaining = {i: len(preds[i]) for i in range(count)}
    ready = sorted(
        (i for i in range(count) if remaining[i] == 0),
        key=lambda i: (-priority[i], i),
    )
    order: List[int] = []
    while ready:
        chosen = ready.pop(0)
        order.append(chosen)
        for successor in succs[chosen]:
            remaining[successor] -= 1
            if remaining[successor] == 0:
                ready.append(successor)
        ready.sort(key=lambda i: (-priority[i], i))
    if len(order) != count:
        raise RuntimeError("dependence cycle in block scheduling")
    return order


def schedule_prefix(order: Sequence[int], executed: int) -> List[int]:
    """The scheduled order restricted to the first ``executed`` original
    instructions (a partially executed block instance)."""
    return [index for index in order if index < executed]
