"""Driving the timing model: functional trace -> scheduled stream -> cycles.

The runner executes a compiled program functionally once, recording the
dynamic *block path* (which block instances ran, how many of their
instructions executed, and whether they ended in a taken transfer).  The
path is then replayed through the issue model using each block's static
schedule -- constrained or relaxed -- which is how the "TAL-FT without
ordering" configuration is timed even though the functional machine can
only execute the constrained order.

The functional pass defaults to the compiled execution backend
(:mod:`repro.exec`): fused chains cover runs of consecutive addresses, so
the executed-address stream is recovered as ``range(pc, pc + n)`` per
dispatch instead of one interpreter round-trip per small step.  Block
paths, per-block instruction lists and static schedules are all memoized
in the shared execution cache (:func:`repro.exec.get_aux`), so timing the
same kernel under several machine configurations -- the Figure 10 sweep --
pays for the functional run and the block walks once.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as _dataclass_fields
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.errors import MachineStuck
from repro.core.instructions import Instruction
from repro.core.registers import PC_B, PC_G
from repro.core.semantics import OobPolicy, step
from repro.compiler.backend import CompiledProgram
from repro.simulator.config import MachineConfig
from repro.simulator.pipeline import TimingResult, time_stream
from repro.simulator.schedule import schedule_block, schedule_prefix


@dataclass(frozen=True)
class BlockInstance:
    """One dynamic execution of (a prefix of) a basic block."""

    label: str
    executed: int  # number of instructions executed, from the block start
    taken: bool  # did the instance end in a taken control transfer?


def _program_key(compiled: CompiledProgram) -> Tuple:
    """Identity of a compiled program for the shared execution cache: the
    code memory fingerprint plus the block structure laid over it."""
    from repro.exec import code_fingerprint

    return (
        code_fingerprint(compiled.program.code),
        tuple(
            (label, tuple(compiled.block_bodies[label]))
            for label in compiled.block_order
        ),
    )


def _config_key(config: MachineConfig) -> Tuple:
    """A hashable rendering of a :class:`MachineConfig` (the latency table
    is a dict, so the dataclass itself cannot key a cache)."""
    parts = []
    for field in _dataclass_fields(config):
        value = getattr(config, field.name)
        parts.append(
            tuple(sorted(value.items())) if isinstance(value, dict) else value
        )
    return tuple(parts)


def _discard(pair) -> None:
    """Output sink for the functional pass (observable outputs do not
    affect block timing)."""


def record_block_path(
    compiled: CompiledProgram,
    max_steps: int = 10_000_000,
    backend: str = "compiled",
) -> List[BlockInstance]:
    """Run the program functionally and decompose it into block instances."""
    if backend not in ("step", "compiled"):
        raise ValueError(f"unknown backend {backend!r}")
    address_to_block: Dict[int, Tuple[str, int]] = {}
    for label, body in compiled.block_bodies.items():
        for offset, address in enumerate(body):
            address_to_block[address] = (label, offset)

    state = compiled.program.boot()
    executed: List[int] = []
    pending_address: Optional[int] = None
    steps = 0

    compiled_exec = None
    if backend == "compiled":
        from repro.exec import compiled_for

        compiled_exec = compiled_for(state, OobPolicy.TRAP)
    if compiled_exec is not None:
        # Fused dispatch: every chain covers consecutive addresses starting
        # at the dispatch pc and every small step contributes one rule, so
        # the executed-address stream of a dispatch returning ``ret`` is
        # exactly range(pc, pc + len(ret) // 2).  Anything the closures
        # cannot drive (pending ir, pc disagreement, missing instruction,
        # a 1-step budget remainder) falls through to interpreter steps.
        regs = state.regs._regs
        fast_get = compiled_exec.fast.get
        base_get = compiled_exec.base.get
        quantum = compiled_exec.max_quantum
        while steps < max_steps and not state.is_terminal:
            if state.ir is None:
                pcg = regs[PC_G][1]
                if pcg == regs[PC_B][1]:
                    remaining = max_steps - steps
                    if remaining >= quantum:
                        fn = fast_get(pcg)
                    elif remaining >= 2:
                        fn = base_get(pcg)
                    else:
                        fn = None
                    if fn is not None:
                        ret = fn(state, regs, _discard, _zero_rand)
                        executed.extend(range(pcg, pcg + len(ret) // 2))
                        steps += len(ret)
                        continue
            if state.ir is None:
                pending_address = state.regs.value(PC_G)
                step(state)
            else:
                assert pending_address is not None
                executed.append(pending_address)
                step(state)
            steps += 1
    else:
        while steps < max_steps and not state.is_terminal:
            if state.ir is None:
                pending_address = state.regs.value(PC_G)
                step(state)
            else:
                assert pending_address is not None
                executed.append(pending_address)
                step(state)
            steps += 1
    if not state.is_terminal:
        raise MachineStuck(
            f"program did not terminate within {max_steps} steps"
        )

    instances: List[BlockInstance] = []
    position = 0
    while position < len(executed):
        label, offset = address_to_block[executed[position]]
        if offset != 0:
            raise MachineStuck(
                f"control entered block {label!r} at interior offset {offset}"
            )
        length = 1
        while (
            position + length < len(executed)
            and executed[position + length] == executed[position + length - 1] + 1
            and address_to_block[executed[position + length]][0] == label
        ):
            length += 1
        next_position = position + length
        taken = (
            next_position < len(executed)
            and executed[next_position] != executed[next_position - 1] + 1
        )
        instances.append(BlockInstance(label, length, taken))
        position = next_position
    return instances


def _zero_rand() -> int:
    return 0


def build_schedules(
    compiled: CompiledProgram,
    config: MachineConfig,
) -> Dict[str, List[int]]:
    """Static per-block schedules under ``config``'s ordering rules."""
    return {
        label: schedule_block(compiled.instructions_of(label), config)
        for label in compiled.block_order
    }


def _block_instructions(compiled: CompiledProgram) -> Dict[str, List[Instruction]]:
    """Per-block instruction lists, memoized in the shared cache (walking
    code memory per ``replay_stream`` call is pure recomputation)."""
    from repro.exec import get_aux

    return get_aux(
        ("sim-block-instrs", _program_key(compiled)),
        lambda: {
            label: compiled.instructions_of(label)
            for label in compiled.block_order
        },
    )


def replay_stream(
    compiled: CompiledProgram,
    path: List[BlockInstance],
    schedules: Dict[str, List[int]],
) -> Iterator[Tuple[Instruction, bool]]:
    """The scheduled dynamic instruction stream with taken-ness marks."""
    instruction_cache = _block_instructions(compiled)
    for instance in path:
        order = schedule_prefix(schedules[instance.label], instance.executed)
        instructions = instruction_cache[instance.label]
        last_original = instance.executed - 1
        for original_index in order:
            taken = instance.taken and original_index == last_original
            yield instructions[original_index], taken


def simulate(
    compiled: CompiledProgram,
    config: Optional[MachineConfig] = None,
    path: Optional[List[BlockInstance]] = None,
    max_steps: int = 10_000_000,
    backend: str = "compiled",
) -> TimingResult:
    """Cycles to execute ``compiled`` on the configured machine."""
    from repro.exec import get_aux

    config = config or MachineConfig()
    if path is None:
        # The block path is backend-invariant (the compiled backend is an
        # observational twin of the interpreter), so both backends share
        # one cache entry; the backend choice only decides who computes it
        # on a miss.
        path = get_aux(
            ("sim-block-path", _program_key(compiled), max_steps),
            lambda: record_block_path(
                compiled, max_steps=max_steps, backend=backend
            ),
        )
    schedules = get_aux(
        ("sim-schedules", _program_key(compiled), _config_key(config)),
        lambda: build_schedules(compiled, config),
    )
    return time_stream(replay_stream(compiled, path, schedules), config)
