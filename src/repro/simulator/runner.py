"""Driving the timing model: functional trace -> scheduled stream -> cycles.

The runner executes a compiled program functionally once, recording the
dynamic *block path* (which block instances ran, how many of their
instructions executed, and whether they ended in a taken transfer).  The
path is then replayed through the issue model using each block's static
schedule -- constrained or relaxed -- which is how the "TAL-FT without
ordering" configuration is timed even though the functional machine can
only execute the constrained order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.errors import MachineStuck
from repro.core.instructions import Instruction
from repro.core.registers import PC_G
from repro.core.semantics import OobPolicy, step
from repro.compiler.backend import CompiledProgram
from repro.simulator.config import MachineConfig
from repro.simulator.pipeline import TimingResult, time_stream
from repro.simulator.schedule import schedule_block, schedule_prefix


@dataclass(frozen=True)
class BlockInstance:
    """One dynamic execution of (a prefix of) a basic block."""

    label: str
    executed: int  # number of instructions executed, from the block start
    taken: bool  # did the instance end in a taken control transfer?


def record_block_path(
    compiled: CompiledProgram,
    max_steps: int = 10_000_000,
) -> List[BlockInstance]:
    """Run the program functionally and decompose it into block instances."""
    address_to_block: Dict[int, Tuple[str, int]] = {}
    for label, body in compiled.block_bodies.items():
        for offset, address in enumerate(body):
            address_to_block[address] = (label, offset)

    state = compiled.program.boot()
    executed: List[int] = []
    pending_address: Optional[int] = None
    steps = 0
    while steps < max_steps and not state.is_terminal:
        if state.ir is None:
            pending_address = state.regs.value(PC_G)
            step(state)
        else:
            assert pending_address is not None
            executed.append(pending_address)
            step(state)
        steps += 1
    if not state.is_terminal:
        raise MachineStuck(
            f"program did not terminate within {max_steps} steps"
        )

    instances: List[BlockInstance] = []
    position = 0
    while position < len(executed):
        label, offset = address_to_block[executed[position]]
        if offset != 0:
            raise MachineStuck(
                f"control entered block {label!r} at interior offset {offset}"
            )
        length = 1
        while (
            position + length < len(executed)
            and executed[position + length] == executed[position + length - 1] + 1
            and address_to_block[executed[position + length]][0] == label
        ):
            length += 1
        next_position = position + length
        taken = (
            next_position < len(executed)
            and executed[next_position] != executed[next_position - 1] + 1
        )
        instances.append(BlockInstance(label, length, taken))
        position = next_position
    return instances


def build_schedules(
    compiled: CompiledProgram,
    config: MachineConfig,
) -> Dict[str, List[int]]:
    """Static per-block schedules under ``config``'s ordering rules."""
    return {
        label: schedule_block(compiled.instructions_of(label), config)
        for label in compiled.block_order
    }


def replay_stream(
    compiled: CompiledProgram,
    path: List[BlockInstance],
    schedules: Dict[str, List[int]],
) -> Iterator[Tuple[Instruction, bool]]:
    """The scheduled dynamic instruction stream with taken-ness marks."""
    instruction_cache: Dict[str, List[Instruction]] = {
        label: compiled.instructions_of(label) for label in compiled.block_order
    }
    for instance in path:
        order = schedule_prefix(schedules[instance.label], instance.executed)
        instructions = instruction_cache[instance.label]
        last_original = instance.executed - 1
        for original_index in order:
            taken = instance.taken and original_index == last_original
            yield instructions[original_index], taken


def simulate(
    compiled: CompiledProgram,
    config: Optional[MachineConfig] = None,
    path: Optional[List[BlockInstance]] = None,
    max_steps: int = 10_000_000,
) -> TimingResult:
    """Cycles to execute ``compiled`` on the configured machine."""
    config = config or MachineConfig()
    if path is None:
        path = record_block_path(compiled, max_steps=max_steps)
    schedules = build_schedules(compiled, config)
    return time_stream(replay_stream(compiled, path, schedules), config)
