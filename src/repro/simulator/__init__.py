"""Timing simulation: the Itanium-2-flavored machine behind Figure 10."""

from repro.simulator.config import DEFAULT_CONFIG, RELAXED_CONFIG, MachineConfig
from repro.simulator.pipeline import IssueModel, TimingResult, time_stream
from repro.simulator.runner import (
    BlockInstance,
    build_schedules,
    record_block_path,
    replay_stream,
    simulate,
)
from repro.simulator.schedule import dependence_edges, schedule_block, schedule_prefix

__all__ = [
    "BlockInstance",
    "DEFAULT_CONFIG",
    "IssueModel",
    "MachineConfig",
    "RELAXED_CONFIG",
    "TimingResult",
    "build_schedules",
    "dependence_edges",
    "record_block_path",
    "replay_stream",
    "schedule_block",
    "schedule_prefix",
    "simulate",
    "time_stream",
]
