"""The in-order issue model: cycles for a stream of scheduled instructions.

A simple but faithful EPIC-style timing model:

* up to ``issue_width`` instructions issue per cycle, **in the scheduled
  order** (in-order issue: an instruction that cannot issue blocks the
  ones behind it);
* an instruction issues when its register operands are ready (scoreboard
  with per-op latencies) and a port of its class (load / store / branch)
  is free this cycle;
* a green store occupies a store-queue entry from issue until its blue
  partner completes; a green store stalls while the queue is full;
* a *taken* transfer flushes the front end: the next instruction issues no
  earlier than ``branch_penalty`` cycles later.

The model is deliberately independent of the functional semantics: it
consumes the dynamic block path recorded by the runner plus the static
per-block schedules, which is what lets it time the *relaxed* ("without
ordering") configuration whose schedules the functional machine cannot
execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.core.instructions import Instruction
from repro.simulator.config import MachineConfig
from repro.simulator.deps import (
    is_blue_store,
    is_green_store,
    kind_of,
    reads_of,
    writes_of,
)


@dataclass
class PipelineState:
    """Mutable scoreboard threaded across block instances."""

    cycle: int = 0
    reg_ready: Dict[str, int] = field(default_factory=dict)
    issued_in_cycle: int = 0
    loads_in_cycle: int = 0
    stores_in_cycle: int = 0
    branches_in_cycle: int = 0
    #: Completion cycles of in-flight green stores (queue occupancy).
    queue_busy_until: List[int] = field(default_factory=list)
    #: FIFO of cycles at which pending green stores become readable by
    #: their blue partner's compare (queue forwarding).
    queue_forward_ready: List[int] = field(default_factory=list)
    instructions: int = 0
    #: Cycles lost per cause: operand / port / queue-full / queue-forward /
    #: branch-flush.
    stalls: Dict[str, int] = field(default_factory=dict)

    def charge_stall(self, cause: str) -> None:
        self.stalls[cause] = self.stalls.get(cause, 0) + 1

    def advance_cycle(self) -> None:
        self.cycle += 1
        self.issued_in_cycle = 0
        self.loads_in_cycle = 0
        self.stores_in_cycle = 0
        self.branches_in_cycle = 0


class IssueModel:
    """Issues instructions against a :class:`MachineConfig`."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.state = PipelineState()

    # -- helpers ---------------------------------------------------------

    def _port_free(self, kind: str) -> bool:
        state = self.state
        config = self.config
        if state.issued_in_cycle >= config.issue_width:
            return False
        if kind == "load" and state.loads_in_cycle >= config.load_ports:
            return False
        if kind == "store" and state.stores_in_cycle >= config.store_ports:
            return False
        if kind == "branch" and \
                state.branches_in_cycle >= config.branch_ports:
            return False
        return True

    def _registers_ready(self, instruction: Instruction) -> bool:
        ready = self.state.reg_ready
        return all(
            ready.get(reg, 0) <= self.state.cycle
            for reg in reads_of(instruction)
        )

    def _queue_forward_ready(self, instruction: Instruction) -> bool:
        # The blue store's compare reads the queue entry its green partner
        # wrote; this forwarding has latency (smaller for the relaxed
        # machine's correlation buffer -- set via the config).
        return not (
            is_blue_store(instruction)
            and self.state.queue_forward_ready
            and self.state.queue_forward_ready[0] > self.state.cycle
        )

    def _queue_has_room(self) -> bool:
        state = self.state
        state.queue_busy_until = [
            done for done in state.queue_busy_until if done > state.cycle
        ]
        return len(state.queue_busy_until) < self.config.store_queue_depth

    # -- issue -------------------------------------------------------------

    def issue(self, instruction: Instruction, taken: bool = False) -> int:
        """Issue one instruction; returns the cycle it issued in.

        ``taken`` marks a control transfer that actually redirected fetch
        (applies the front-end refill penalty afterwards).
        """
        state = self.state
        kind = kind_of(instruction)
        while True:
            if not self._port_free(kind):
                state.charge_stall("port")
                state.advance_cycle()
                continue
            if not self._registers_ready(instruction):
                state.charge_stall("operand")
                state.advance_cycle()
                continue
            if not self._queue_forward_ready(instruction):
                state.charge_stall("queue-forward")
                state.advance_cycle()
                continue
            if is_green_store(instruction) and not self._queue_has_room():
                state.charge_stall("queue-full")
                state.advance_cycle()
                continue
            break
        issued_at = state.cycle
        latency = self.config.latency(kind)
        from repro.simulator.deps import is_green_control

        dest_latency = (
            self.config.dest_forward_latency
            if is_green_control(instruction) else latency
        )
        for reg in writes_of(instruction):
            if reg == "d":
                state.reg_ready[reg] = issued_at + dest_latency
            else:
                state.reg_ready[reg] = issued_at + latency
        state.issued_in_cycle += 1
        state.instructions += 1
        if kind == "load":
            state.loads_in_cycle += 1
        elif kind == "store":
            state.stores_in_cycle += 1
            if is_green_store(instruction):
                # Entry lives until the matching blue store commits; model
                # that as a generous fixed residency tied to the pair
                # completing (updated when the blue store issues).
                state.queue_busy_until.append(issued_at + 1_000_000)
                state.queue_forward_ready.append(
                    issued_at + self.config.queue_forward_latency
                )
            elif is_blue_store(instruction):
                if state.queue_busy_until:
                    # Free the oldest entry when the pair commits.
                    state.queue_busy_until[0] = issued_at + latency
                    state.queue_busy_until.sort()
                if state.queue_forward_ready:
                    state.queue_forward_ready.pop(0)
        elif kind == "branch":
            state.branches_in_cycle += 1
        if taken:
            # Flush: nothing issues until the refill completes.
            state.stalls["branch-flush"] = (
                state.stalls.get("branch-flush", 0) + self.config.branch_penalty
            )
            state.cycle = issued_at + 1 + self.config.branch_penalty
            state.issued_in_cycle = 0
            state.loads_in_cycle = 0
            state.stores_in_cycle = 0
            state.branches_in_cycle = 0
        return issued_at


@dataclass
class TimingResult:
    cycles: int
    instructions: int
    #: Cycles lost per cause (operand / port / queue-full / queue-forward /
    #: branch-flush).  Causes overlap conceptually; each stalled cycle is
    #: charged to the first blocking condition found.
    stalls: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def time_stream(
    stream: Iterable[Tuple[Instruction, bool]],
    config: MachineConfig,
) -> TimingResult:
    """Cycles to issue a stream of (instruction, taken) pairs."""
    model = IssueModel(config)
    last = 0
    for instruction, taken in stream:
        last = model.issue(instruction, taken)
    # Drain: account for the last instruction's latency.
    return TimingResult(
        cycles=max(model.state.cycle, last + 1),
        instructions=model.state.instructions,
        stalls=dict(model.state.stalls),
    )
