"""repro -- a full reproduction of *Fault-tolerant Typed Assembly Language*
(Perry, Mackey, Reis, Ligatti, August, Walker -- PLDI 2007).

Subpackages:

* :mod:`repro.core`      -- the TAL_FT machine and its faulty semantics
* :mod:`repro.statics`   -- the Hoare-logic static expression language
* :mod:`repro.types`     -- the TAL_FT type system and checker
* :mod:`repro.asm`       -- a textual assembler with type annotations
* :mod:`repro.verify`    -- executable metatheory (Progress, Preservation,
                            No False Positives, Fault Tolerance)
* :mod:`repro.injection` -- single-event-upset fault-injection campaigns
* :mod:`repro.lang`      -- the MWL mini source language
* :mod:`repro.compiler`  -- the replication compiler and unprotected baseline
* :mod:`repro.simulator` -- an Itanium-2-flavored in-order timing model
* :mod:`repro.workloads` -- SPEC CINT2000 / MediaBench stand-in kernels

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

__version__ = "1.0.0"
