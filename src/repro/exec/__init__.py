"""The compiled execution backend.

``repro.exec`` executes machine states through per-address closures
(:mod:`repro.exec.compiler`) with superinstruction fusion
(:mod:`repro.exec.fusion`), sharing one compilation per program per process
through a bounded LRU (:mod:`repro.exec.cache`).  The backend is an
*observational twin* of the ``step()`` interpreter: identical rule
sequences, outputs, trace events, step counts, terminal states and stuck
behavior, on fault-free and fault-injected states alike -- pinned by
``tests/test_exec_backend.py``.  See ``docs/EXECUTION.md`` for the design
and the argument for why fusion cannot mask a fault.

Drivers:

* :func:`run_compiled` -- the bounded multi-step runner (the campaign hot
  path), returning the same :class:`~repro.core.machine.Trace` shape as
  :meth:`Machine.run`;
* :func:`step_instruction` -- one whole fetch+execute pair (the recovery
  executor's superstep);
* :func:`trace_events_compiled` -- per-small-step
  :class:`~repro.core.tracing.TraceEvent` reconstruction.

Everything falls back to the interpreter rather than guess: states with a
pending instruction register, register banks the compilation does not
cover, sub-instruction step budgets and uncompilable programs all route
through :func:`repro.core.semantics.step`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.errors import MachineStuck
from repro.core.machine import Outcome, Trace
from repro.core.registers import PC_B, PC_G
from repro.core.semantics import OobPolicy, RandSource, step as _step
from repro.core.state import MachineState, Status
from repro.exec.cache import (
    clear_exec_caches,
    code_fingerprint,
    exec_cache_stats,
    get_aux,
    get_compiled,
    warm_program,
)
from repro.exec.compiler import (
    CompilationUnsupported,
    CompiledExec,
    compile_program,
)

__all__ = [
    "BACKENDS",
    "CompilationUnsupported",
    "CompiledExec",
    "MACHINE_BACKENDS",
    "clear_exec_caches",
    "code_fingerprint",
    "compile_program",
    "compiled_for",
    "exec_cache_stats",
    "get_aux",
    "get_compiled",
    "require_backend",
    "run_compiled",
    "step_instruction",
    "trace_events_compiled",
    "warm_program",
]


#: The execution-backend registry: every backend name the project knows,
#: mapped to the one-line description the CLI help and docs derive from.
#: Config validation (``CampaignConfig``, ``run_campaign``, ``Machine``)
#: goes through :func:`require_backend` so adding a backend is one edit
#: here rather than a hunt for duplicated literal tuples.
BACKENDS: Dict[str, str] = {
    "step": "the step() interpreter (reference semantics)",
    "compiled": "closure-compiled per-address closures with "
                "superinstruction fusion (default)",
    "vector": "batch-vectorized SoA campaign engine (numpy lanes in "
              "lockstep; campaigns only)",
}

#: Backends that can drive a single :class:`~repro.core.machine.Machine`.
#: The vector engine executes whole campaign batches, not one machine, so
#: it is only a valid choice where a campaign is being configured.
MACHINE_BACKENDS: Tuple[str, ...] = ("step", "compiled")


def require_backend(
    name: str, allowed: Optional[Tuple[str, ...]] = None
) -> str:
    """Validate a backend name against the registry and return it.

    ``allowed`` restricts the choice to a subset (e.g.
    :data:`MACHINE_BACKENDS`); the default accepts every registered
    backend.  Raises ``ValueError`` with the registry-derived wording all
    entry points share.
    """
    choices = tuple(allowed) if allowed is not None else tuple(BACKENDS)
    if name not in choices:
        raise ValueError(
            f"unknown backend {name!r} (choose from {', '.join(choices)})")
    return name


def _zero_rand() -> int:
    return 0


def compiled_for(
    state: MachineState,
    oob_policy: OobPolicy = OobPolicy.TRAP,
) -> Optional[CompiledExec]:
    """The compilation that can drive ``state``, or ``None``.

    ``None`` means "use the interpreter": the program is uncompilable, or
    the state's register bank lacks a name the closures address directly
    (plain dict access would silently diverge from the interpreter's
    unknown-register error).
    """
    compiled = get_compiled(state.code, oob_policy)
    if compiled is None or not compiled.supports(state):
        return None
    return compiled


def run_compiled(
    state: MachineState,
    compiled: CompiledExec,
    max_steps: int = 1_000_000,
    rand_source: RandSource = _zero_rand,
    outputs: Optional[List[Tuple[int, int]]] = None,
    rules: Optional[List[str]] = None,
) -> Trace:
    """Run ``state`` for up to ``max_steps`` small steps, compiled.

    Byte-identical to ``Machine(state, ...).run(max_steps=...)`` on the
    interpreter: same outputs, same step count, same outcome, and (when
    ``rules`` is a list) the same rule-name sequence.  ``outputs`` and
    ``rules`` may be supplied to accumulate across segmented runs (the
    mid-run fault-injection path); the returned trace counts only this
    call's steps.
    """
    if outputs is None:
        outputs = []
    record = rules is not None
    steps = 0
    running = Status.RUNNING
    oob_policy = compiled.oob_policy

    # A pending instruction register (states captured mid-instruction by
    # checkpoint replay or a sub-instruction budget) is retired through the
    # interpreter; afterwards ir stays None for the whole compiled loop
    # (closures never leave it set).
    while state.ir is not None and steps < max_steps and state.status is running:
        try:
            result = _step(state, oob_policy, rand_source)
        except MachineStuck:
            return Trace(Outcome.STUCK, outputs, steps, rules if record else [])
        if result.outputs:
            outputs.extend(result.outputs)
        if record:
            rules.append(result.rule)
        steps += 1

    regs = state.regs._regs
    emit = outputs.append
    fused_get = compiled.fused.get
    base_get = compiled.base.get
    pc_g = PC_G
    pc_b = PC_B
    record_extend = rules.extend if record else None

    # Far from the budget horizon every fused entry fits, so the hot loop
    # dispatches through the merged ``fast`` table with no per-dispatch
    # budget arithmetic; the careful loop below finishes the last
    # ``max_quantum`` steps (and all short segments) with exact checks.
    safe = max_steps - compiled.max_quantum
    if steps < safe and state.status is running:
        fast_get = compiled.fast.get
        while True:
            pcg = regs[pc_g][1]
            if pcg != regs[pc_b][1]:
                # Rule fetch-fail: the program counters disagree.
                state.enter_fault()
                steps += 1
                if record:
                    rules.append("fetch-fail")
                break
            fn = fast_get(pcg)
            if fn is None:
                # No instruction at pcG: stuck; the failed fetch does not
                # count as a step (as in the interpreter runner).
                return Trace(Outcome.STUCK, outputs, steps,
                             rules if record else [])
            ret = fn(state, regs, emit, rand_source)
            steps += len(ret)
            if record_extend is not None:
                record_extend(ret)
            if steps >= safe or state.status is not running:
                break

    while steps < max_steps and state.status is running:
        pcg = regs[pc_g][1]
        if pcg != regs[pc_b][1]:
            # Rule fetch-fail: the program counters disagree.
            state.enter_fault()
            steps += 1
            if record:
                rules.append("fetch-fail")
            break
        remaining = max_steps - steps
        entry = fused_get(pcg)
        if entry is not None and entry[0] <= remaining:
            ret = entry[1](state, regs, emit, rand_source)
        elif remaining >= 2:
            closure = base_get(pcg)
            if closure is None:
                # No instruction at pcG: stuck, and (as in the interpreter
                # runner) the failed fetch does not count as a step.
                return Trace(Outcome.STUCK, outputs, steps,
                             rules if record else [])
            ret = closure(state, regs, emit, rand_source)
        else:
            # One step of budget left: take the bare fetch so the state is
            # left exactly where the interpreter would leave it.
            try:
                result = _step(state, oob_policy, rand_source)
            except MachineStuck:
                return Trace(Outcome.STUCK, outputs, steps,
                             rules if record else [])
            if record:
                rules.append(result.rule)
            steps += 1
            break
        steps += len(ret)
        if record:
            rules.extend(ret)

    status = state.status
    if status is Status.HALTED:
        outcome = Outcome.HALTED
    elif status is Status.FAULT_DETECTED:
        outcome = Outcome.FAULT_DETECTED
    else:
        outcome = Outcome.RUNNING
    return Trace(outcome, outputs, steps, rules if record else [])


def step_instruction(
    state: MachineState,
    compiled: CompiledExec,
    outputs: List[Tuple[int, int]],
    rand_source: RandSource = _zero_rand,
) -> Optional[Tuple[str, ...]]:
    """One whole fetch+execute pair through the *unfused* closure table.

    Appends any observable output to ``outputs`` and returns the rule
    tuple (always two rules), or ``None`` when the compiled path does not
    apply (pending ``ir``, pc disagreement, missing instruction) and the
    caller must take interpreter steps instead.  Never mutates the state
    in the ``None`` case.
    """
    if state.ir is not None or state.status is not Status.RUNNING:
        return None
    regs = state.regs._regs
    pcg = regs[PC_G][1]
    if pcg != regs[PC_B][1]:
        return None
    closure = compiled.base.get(pcg)
    if closure is None:
        return None
    return closure(state, regs, outputs.append, rand_source)


def trace_events_compiled(
    state: MachineState,
    max_steps: int = 200,
    oob_policy: OobPolicy = OobPolicy.TRAP,
):
    """Compiled twin of :func:`repro.core.tracing.trace_execution`.

    Reconstructs the per-small-step event list from the unfused closures:
    each instruction contributes its ``fetch`` event (no instruction, no
    register changes) and its execute event (register diffs computed
    around the closure call).  Interpreter steps cover every case the
    closures do not (pending ``ir``, odd step budgets, fetch failures on
    uncovered banks).  Returns a list of ``TraceEvent``.
    """
    from repro.core.tracing import TraceEvent

    compiled = compiled_for(state, oob_policy)
    events: List[TraceEvent] = []
    step_index = 0
    step_outputs: List[Tuple[int, int]] = []
    while step_index < max_steps and not state.is_terminal:
        use_closure = (
            compiled is not None
            and state.ir is None
            and max_steps - step_index >= 2
        )
        if use_closure:
            regs = state.regs._regs
            pcg = regs[PC_G][1]
            if pcg == regs[PC_B][1]:
                closure = compiled.base.get(pcg)
                if closure is None:
                    # Invalid fetch: the interpreter raises MachineStuck and
                    # trace_execution stops without an event.
                    break
                instruction = compiled.code[pcg]
                events.append(TraceEvent(
                    step=step_index, rule="fetch", address=pcg,
                    instruction=None, changes={},
                    queue=state.queue.pairs(), outputs=(),
                ))
                step_index += 1
                before = dict(regs)
                del step_outputs[:]
                ret = closure(state, regs, step_outputs.append, _zero_rand)
                # Diff even when the step terminated the machine -- a final
                # register write belongs in the trace (same rule as
                # trace_execution).
                changes = {
                    name: (value, regs[name])
                    for name, value in before.items()
                    if regs[name] != value
                }
                events.append(TraceEvent(
                    step=step_index, rule=ret[-1], address=pcg,
                    instruction=instruction, changes=changes,
                    queue=state.queue.pairs(),
                    outputs=tuple(step_outputs),
                ))
                step_index += 1
                continue
        # Interpreter step (pending ir, pc disagreement, tail budget, or no
        # compilation) -- mirrors trace_execution's loop body exactly.
        address = state.regs.value(PC_G)
        instruction = state.ir
        before_file = {name: state.regs.get(name)
                       for name in state.regs.names()}
        try:
            result = _step(state, oob_policy)
        except MachineStuck:
            break
        changes = {
            name: (before_file[name], state.regs.get(name))
            for name in before_file
            if state.regs.get(name) != before_file[name]
        }
        events.append(TraceEvent(
            step=step_index, rule=result.rule, address=address,
            instruction=instruction, changes=changes,
            queue=state.queue.pairs(), outputs=result.outputs,
        ))
        step_index += 1
    return events
