"""The batch-vectorized (SoA) campaign execution engine.

Every faulty run of one injection step shares the program, the fault-free
prefix and -- until its fault takes effect -- the reference control path.
This module exploits that: instead of stepping one machine at a time, a
:class:`LaneBatch` holds *thousands of fault variants as columns of 2-D
numpy arrays* (registers, memory words, store-queue entries; one lane per
injection) and executes the reference instruction schedule once,
vectorized, for all lanes in lockstep.

The engine is exact, not approximate.  The invariant that makes it so:

* **Active lanes follow the reference control path and output history.**
  A lane stays active only while its program counters agree with the
  reference schedule and every observable emission it makes equals the
  reference's emission at the same step.  The moment either would cease
  to hold -- a committed store whose pair deviates from the reference
  emission, a branch that lands somewhere else, an ALU result outside the
  value range the int64 arrays can carry safely -- the lane is *retired
  before the deviating mutation* and its exact :class:`MachineState` is
  materialized for the scalar engines to finish
  (:func:`repro.exec.run_compiled`, or the ``step()`` interpreter).
* Lanes whose fault is *detected* (``fetch-fail``, ``stB-mem-fail``,
  ``jmp*/bz*`` protocol checks, out-of-bounds traps) carry, by the
  invariant, an output tail that is exactly a slice of the reference
  outputs -- no per-lane event storage is needed at all.

Value range.  Registers, memory and queue words live in int64 arrays.
Every *stored* value is kept within ``|v| <= VMAX`` (2^61): faults with
larger replacement values are screened out by the caller, and every ALU
op that could leave the range retires the affected lanes to the scalar
fallback *before* writing the result (the guards are computed from the
operands, so no int64 overflow can corrupt a surviving lane).  Program
counters may drift slightly above ``VMAX`` through per-step increments;
the 2x headroom below ``2^63`` keeps even those lanes exact until an ALU
guard retires them.

Colors are *ghost state* here: no operational rule branches on a color,
and classification sees only integer output pairs, so the engine tracks
none and materializes fallback states with the per-register colors of the
injection-time base state.  ``reg-zap`` preserves colors, so this is
exact at the injection step and observationally irrelevant afterwards.

The per-program artifact (:class:`Schedule`: the reference instruction
sequence, decoded into register-row-indexed specs) is cached through
:func:`repro.exec.cache.get_aux` under the program fingerprint, so each
worker process builds it once.

numpy is optional at import time (:func:`vector_available`); campaigns
downgrade ``backend="vector"`` gracefully when it is absent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    np = None  # type: ignore[assignment]

from repro.core.colors import Color, ColoredValue
from repro.core.errors import MachineStuck, ReproError
from repro.core.instructions import (
    ArithRRI,
    ArithRRR,
    Bz,
    Halt,
    Instruction,
    Jmp,
    Load,
    Mov,
    PlainBz,
    PlainJmp,
    PlainLoad,
    PlainStore,
    Store,
)
from repro.core.registers import DEST, PC_B, PC_G
from repro.core.semantics import OobPolicy, step as _semantics_step
from repro.core.state import MachineState, RegisterFile, Status, StoreQueue
from repro.exec.cache import code_fingerprint, get_aux


def vector_available() -> bool:
    """True when numpy is importable and the vector backend can run."""
    return np is not None


#: Largest value magnitude the int64 lane arrays carry as *stored* state.
#: ``|x|, |y| <= VMAX + slack`` guarantees ``x + y`` cannot wrap int64, so
#: the add/sub overflow guards can inspect the exact result.
VMAX = 1 << 61

#: Operand magnitude above which a product might exceed ``VMAX``.
_MUL_SAFE = 1 << 30


class VectorUnsupported(Exception):
    """The program, state or fault set cannot be batch-vectorized."""


# ---------------------------------------------------------------------------
# Vectorized ALU
# ---------------------------------------------------------------------------
#
# Each entry maps an opcode to ``f(x, y) -> (result, unsafe)`` where
# ``unsafe`` is a boolean lane mask of results the engine must not keep
# (possible int64 wrap or a stored value beyond VMAX), or ``None`` when the
# op cannot leave the range.  ``y`` may be an array (op2r) or a Python int
# (op1r immediate, pre-checked to |imm| <= VMAX).


def _vec_add(x, y):
    result = x + y
    return result, np.abs(result) > VMAX


def _vec_sub(x, y):
    result = x - y
    return result, np.abs(result) > VMAX


def _vec_mul(x, y):
    # Guard on the operands: |x|,|y| <= 2^30 keeps |x*y| <= 2^60 <= VMAX.
    # A zero operand is always safe regardless of the other's magnitude.
    unsafe = (x != 0) & (y != 0) \
        & ((np.abs(x) > _MUL_SAFE) | (np.abs(y) > _MUL_SAFE))
    return x * y, unsafe


def _vec_slt(x, y):
    return (x < y).astype(np.int64), None


def _vec_seq(x, y):
    return (x == y).astype(np.int64), None


def _vec_sne(x, y):
    return (x != y).astype(np.int64), None


def _vec_and(x, y):
    return x & y, None


def _vec_or(x, y):
    return x | y, None


def _vec_xor(x, y):
    return x ^ y, None


def _vec_sll(x, y):
    # Mirrors instructions._sll: out-of-range shift counts yield 0.  The
    # shift count is clipped *before* shifting (numpy rejects negative
    # counts), and the magnitude guard runs on the operands so unsafe
    # lanes never depend on a wrapped intermediate.
    y = np.asarray(y)
    in_range = (y >= 0) & (y <= 63)
    count = np.clip(y, 0, 63)
    unsafe = in_range & (np.abs(x) > (VMAX >> count))
    return np.where(in_range, x << count, 0), unsafe


def _vec_sra(x, y):
    # Mirrors instructions._sra: negative counts yield 0, counts clamp at
    # 63.  numpy's >> on int64 is arithmetic, matching Python's floor
    # semantics on negatives.
    y = np.asarray(y)
    return np.where(y < 0, 0, x >> np.clip(y, 0, 63)), None


def _alu_table():
    return {
        "add": _vec_add, "sub": _vec_sub, "mul": _vec_mul,
        "slt": _vec_slt, "seq": _vec_seq, "sne": _vec_sne,
        "and": _vec_and, "or": _vec_or, "xor": _vec_xor,
        "sll": _vec_sll, "sra": _vec_sra,
    }


_ALU_VEC = _alu_table() if np is not None else {}


# ---------------------------------------------------------------------------
# The per-program schedule
# ---------------------------------------------------------------------------

#: Spec kinds (first element of every decoded spec tuple).
K_OP2R, K_OP1R, K_MOV, K_LDG, K_LDB, K_PLD, K_STG, K_STB, K_PST, \
    K_JMPG, K_JMPB, K_PJMP, K_BZG, K_BZB, K_PBZ, K_HALT = range(16)

#: Kinds that can retire lanes to the scalar fallback, by reason (metrics).
FALLBACK_REASONS = {
    K_OP2R: "value-range", K_OP1R: "value-range",
    K_STB: "store", K_PST: "store",
}


class Schedule:
    """The reference run, decoded for lockstep execution.

    One entry per executed instruction: the fetch address, the decoded
    spec (register names resolved to array row indices) and the original
    :class:`Instruction` (for materialized fallback states).
    ``commit_addrs`` collects every memory address the reference commits,
    so a lane batch can pre-size its memory table; lanes committing
    elsewhere retire to the fallback.
    """

    __slots__ = ("reg_names", "reg_index", "pcs", "specs", "instrs",
                 "commit_addrs", "steps", "observable_min")

    def __init__(self, reg_names, reg_index, pcs, specs, instrs,
                 commit_addrs, steps, observable_min):
        self.reg_names = reg_names
        self.reg_index = reg_index
        self.pcs = pcs
        self.specs = specs
        self.instrs = instrs
        self.commit_addrs = commit_addrs
        self.steps = steps
        self.observable_min = observable_min


def _decode(instr: Instruction, reg_index: Dict[str, int]):
    """Decode ``instr`` to a row-indexed spec tuple, or ``None``."""
    rx = reg_index.get
    if isinstance(instr, ArithRRR):
        fn = _ALU_VEC.get(instr.op)
        rd, rs, rt = rx(instr.rd), rx(instr.rs), rx(instr.rt)
        if fn is None or rd is None or rs is None or rt is None:
            return None
        return (K_OP2R, instr.op, rd, rs, rt)
    if isinstance(instr, ArithRRI):
        fn = _ALU_VEC.get(instr.op)
        rd, rs = rx(instr.rd), rx(instr.rs)
        imm = instr.imm[1]
        if fn is None or rd is None or rs is None or abs(imm) > VMAX:
            return None
        return (K_OP1R, instr.op, rd, rs, imm)
    if isinstance(instr, Mov):
        rd, imm = rx(instr.rd), instr.imm[1]
        if rd is None or abs(imm) > VMAX:
            return None
        return (K_MOV, rd, imm)
    if isinstance(instr, Load):
        rd, rs = rx(instr.rd), rx(instr.rs)
        if rd is None or rs is None:
            return None
        return (K_LDG if instr.color is Color.GREEN else K_LDB, rd, rs)
    if isinstance(instr, Store):
        rd, rs = rx(instr.rd), rx(instr.rs)
        if rd is None or rs is None:
            return None
        return (K_STG if instr.color is Color.GREEN else K_STB, rd, rs)
    if isinstance(instr, Jmp):
        rd = rx(instr.rd)
        if rd is None:
            return None
        return (K_JMPG if instr.color is Color.GREEN else K_JMPB, rd)
    if isinstance(instr, Bz):
        rz, rd = rx(instr.rz), rx(instr.rd)
        if rz is None or rd is None:
            return None
        return (K_BZG if instr.color is Color.GREEN else K_BZB, rz, rd)
    if isinstance(instr, Halt):
        return (K_HALT,)
    if isinstance(instr, PlainLoad):
        rd, rs = rx(instr.rd), rx(instr.rs)
        if rd is None or rs is None:
            return None
        return (K_PLD, rd, rs)
    if isinstance(instr, PlainStore):
        rd, rs = rx(instr.rd), rx(instr.rs)
        if rd is None or rs is None:
            return None
        return (K_PST, rd, rs)
    if isinstance(instr, PlainJmp):
        rd = rx(instr.rd)
        if rd is None:
            return None
        return (K_PJMP, rd)
    if isinstance(instr, PlainBz):
        rz, rd = rx(instr.rz), rx(instr.rd)
        if rz is None or rd is None:
            return None
        return (K_PBZ, rz, rd)
    return None


def _build_schedule(
    boot: MachineState,
    oob_policy: OobPolicy,
    expected_steps: int,
) -> Optional[Schedule]:
    """Replay the fault-free run, recording the decoded instruction
    sequence.  Returns ``None`` when the program is not vectorizable
    (unknown instruction shape, oversized immediate, non-halting run)."""
    state = boot.clone()
    if state.ir is not None or state.status is not Status.RUNNING:
        return None
    reg_names = tuple(state.regs._regs)
    reg_index = {name: row for row, name in enumerate(reg_names)}
    pcs: List[int] = []
    specs: List[tuple] = []
    instrs: List[Instruction] = []
    commit_addrs = set()
    steps = 0
    while steps < expected_steps and state.status is Status.RUNNING:
        pc = state.regs._regs[PC_G][1]
        try:
            _semantics_step(state, oob_policy)  # fetch
        except (MachineStuck, ReproError):
            return None
        steps += 1
        instr = state.ir
        if instr is None:  # fetch-fail: the reference faulted
            return None
        spec = _decode(instr, reg_index)
        if spec is None:
            return None
        # Commit addresses are captured pre-execute: a blue store commits
        # the pair at the back of the queue, a plain store the address in
        # its rd register.
        if spec[0] == K_STB:
            if len(state.queue):
                commit_addrs.add(state.queue.back()[0])
        elif spec[0] == K_PST:
            commit_addrs.add(state.regs._regs[instr.rd][1])
        pcs.append(pc)
        specs.append(spec)
        instrs.append(instr)
        if steps >= expected_steps:
            return None  # reference cannot end between fetch and execute
        try:
            _semantics_step(state, oob_policy)  # execute
        except (MachineStuck, ReproError):
            return None
        steps += 1
    if steps != expected_steps or state.status is not Status.HALTED:
        return None
    return Schedule(reg_names, reg_index, pcs, specs, instrs,
                    frozenset(commit_addrs), steps, state.observable_min)


#: Negative-cache marker (``get_aux`` treats ``None`` as a miss).
_UNSUPPORTED = object()


def schedule_for(
    boot: MachineState,
    oob_policy: OobPolicy,
    expected_steps: int,
) -> Optional[Schedule]:
    """The cached :class:`Schedule` for ``boot``'s program, or ``None``.

    Keyed by program fingerprint plus the boot-state observables that
    determine the reference run (register payloads, memory, queue,
    observability threshold); the step count is determined by those, so
    it stays out of the key.
    """
    if np is None:
        return None
    try:
        signature = (
            tuple(cv[1] for cv in boot.regs._regs.values()),
            tuple(sorted(boot.memory.items())),
            boot.queue.pairs(),
            boot.observable_min,
        )
        key = (code_fingerprint(boot.code), oob_policy, "vector-schedule",
               signature)
    except TypeError:  # unhashable exotic state: just decline
        return None
    built = get_aux(
        key,
        lambda: _build_schedule(boot, oob_policy, expected_steps)
        or _UNSUPPORTED,
    )
    return None if built is _UNSUPPORTED else built


# ---------------------------------------------------------------------------
# The lane batch
# ---------------------------------------------------------------------------


class LaneBatch:
    """One injection step's fault variants as columns of SoA arrays.

    ``R`` is ``(num_registers, n)`` int64 (row order = register bank
    order); memory is a sorted address table ``addrs`` with value matrix
    ``M`` and presence matrix ``P`` (both ``(num_addrs, n)``); the store
    queue is a front-first list of ``(addr_row, value_row)`` pairs --
    its *length* is shared across lanes because every active lane pushes
    and pops at exactly the reference's instructions.

    :meth:`fetch` and :meth:`execute` step all active lanes at once and
    report the columns that faulted (detected -- settled from reference
    slices alone), fell back (materialized states for the scalar
    engines) and halted.
    """

    def __init__(self, schedule: Schedule, base: MachineState,
                 faults) -> None:
        if tuple(base.regs._regs) != schedule.reg_names:
            raise VectorUnsupported("register bank differs from schedule")
        n = len(faults)
        self.n = n
        self.schedule = schedule
        self.code = base.code
        self.obs_min = base.observable_min
        self.reg_names = schedule.reg_names
        self.reg_colors = tuple(cv[0] for cv in base.regs._regs.values())
        self.pcg_row = schedule.reg_index[PC_G]
        self.pcb_row = schedule.reg_index[PC_B]
        self.d_row = schedule.reg_index[DEST]
        try:
            base_vals = np.fromiter(
                (cv[1] for cv in base.regs._regs.values()),
                dtype=np.int64, count=len(self.reg_names))
        except OverflowError:
            raise VectorUnsupported("register value exceeds int64") from None
        if base_vals.size and (base_vals.max() > VMAX
                               or base_vals.min() < -VMAX):
            raise VectorUnsupported("register value exceeds VMAX")
        self.R = np.repeat(base_vals[:, None], n, axis=1)

        table = sorted(set(base.memory) | set(schedule.commit_addrs))
        position = {address: k for k, address in enumerate(table)}
        try:
            self.addrs = np.array(table, dtype=np.int64)
        except OverflowError:
            raise VectorUnsupported("memory address exceeds int64") from None
        if self.addrs.size and (self.addrs.max() > VMAX
                                or self.addrs.min() < -VMAX):
            raise VectorUnsupported("memory address exceeds VMAX")
        base_mem = np.zeros(len(table), dtype=np.int64)
        present = np.zeros(len(table), dtype=bool)
        for address, value in base.memory.items():
            if abs(value) > VMAX:
                raise VectorUnsupported("memory value exceeds VMAX")
            k = position[address]
            base_mem[k] = value
            present[k] = True
        self.M = np.repeat(base_mem[:, None], n, axis=1)
        self.P = np.repeat(present[:, None], n, axis=1)

        self.queue: List[Tuple] = []
        for address, value in base.queue.pairs():  # front first
            if abs(address) > VMAX or abs(value) > VMAX:
                raise VectorUnsupported("queue entry exceeds VMAX")
            self.queue.append((np.full(n, address, dtype=np.int64),
                               np.full(n, value, dtype=np.int64)))

        # Inject: one fault per lane.  Callers screen faults to known
        # registers / in-range queue indices / |value| <= VMAX, so plain
        # array pokes apply the zap exactly (colors are untouched ghost
        # state and reg-zap preserves them by definition).
        from repro.core.faults import QueueZapAddress, RegZap

        for j, fault in enumerate(faults):
            if isinstance(fault, RegZap):
                self.R[schedule.reg_index[fault.reg], j] = fault.new_value
            elif isinstance(fault, QueueZapAddress):
                self.queue[fault.index][0][j] = fault.new_value
            else:
                self.queue[fault.index][1][j] = fault.new_value

        self.active = np.ones(n, dtype=bool)
        self.active_count = n
        self._cols = np.arange(n)

    # -- lane retirement ----------------------------------------------------

    def _retire(self, mask) -> List[int]:
        cols = np.nonzero(mask)[0]
        if not cols.size:
            return []
        self.active[cols] = False
        self.active_count -= cols.size
        return [int(j) for j in cols]

    def _fallback(self, mask, ir: Optional[Instruction]):
        return [(j, self.materialize(j, ir)) for j in self._retire(mask)]

    def retire_all(self, ir: Optional[Instruction] = None):
        """Materialize every remaining active lane (cutoff / tail)."""
        return self._fallback(self.active.copy(), ir)

    def materialize(self, lane: int, ir: Optional[Instruction]) -> MachineState:
        """The exact scalar :class:`MachineState` of one lane.

        ``ir`` is the pending instruction when the lane retired during an
        execute phase (the fetch already happened), ``None`` at a fetch
        boundary.  Colors come from the injection-time base state; no
        rule branches on them and classification is colorless, so the
        continuation is observationally exact.
        """
        regs = {
            name: ColoredValue(self.reg_colors[row], int(self.R[row, lane]))
            for row, name in enumerate(self.reg_names)
        }
        memory = {}
        present = self.P[:, lane]
        values = self.M[:, lane]
        for k in np.nonzero(present)[0]:
            memory[int(self.addrs[k])] = int(values[k])
        queue = StoreQueue(
            (int(qa[lane]), int(qv[lane])) for qa, qv in self.queue)
        return MachineState(
            RegisterFile(regs), self.code, memory, queue, ir=ir,
            status=Status.RUNNING, observable_min=self.obs_min)

    # -- memory helpers -----------------------------------------------------

    def _mem_index(self, addr):
        """Per-lane table position of ``addr``: ``(in_table, index)``."""
        if self.addrs.size == 0:
            zero = np.zeros(self.n, dtype=np.int64)
            return np.zeros(self.n, dtype=bool), zero
        idx = np.searchsorted(self.addrs, addr)
        idx = np.minimum(idx, self.addrs.size - 1)
        return self.addrs[idx] == addr, idx

    def _mem_lookup(self, addr):
        """Per-lane memory read: ``(found, value)`` (value 0 when absent)."""
        in_table, idx = self._mem_index(addr)
        found = in_table & self.P[idx, self._cols]
        return found, np.where(found, self.M[idx, self._cols], 0)

    def _bump(self) -> None:
        self.R[self.pcg_row] += 1
        self.R[self.pcb_row] += 1

    # -- lockstep stepping --------------------------------------------------

    def fetch(self, pc: int):
        """One fetch step against the reference address ``pc``.

        Returns ``(faulted_cols, fallback_pairs)``: lanes whose program
        counters disagree take the ``fetch-fail`` rule (detected); lanes
        whose counters agree with each other but not with the reference
        diverged control flow and retire to the scalar fallback with no
        pending instruction.
        """
        pg = self.R[self.pcg_row]
        pb = self.R[self.pcb_row]
        ok = (pg == pc) & (pb == pc)
        bad = self.active & ~ok
        if not bad.any():
            return [], []
        fail = bad & (pg != pb)
        faulted = self._retire(fail)
        fallback = self._fallback(bad & (pg == pb), None)
        return faulted, fallback

    def execute(self, spec, ir: Instruction, oob_trap: bool,
                ref_pair: Optional[Tuple[int, int]]):
        """One execute step of ``spec`` for all active lanes.

        ``ref_pair`` is the reference's emission at this step (or
        ``None``); any lane that would emit differently retires to the
        fallback *before* mutating its queue or memory, which is what
        keeps every active lane's output history a reference slice.
        Returns ``(faulted_cols, fallback_pairs, halted_cols)``.
        """
        kind = spec[0]
        R = self.R
        active = self.active
        faulted: List[int] = []
        fallback: List = []
        halted: List[int] = []

        if kind == K_OP2R or kind == K_OP1R:
            y = R[spec[4]] if kind == K_OP2R else spec[4]
            result, unsafe = _ALU_VEC[spec[1]](R[spec[3]], y)
            if unsafe is not None:
                bad = active & unsafe
                if bad.any():
                    fallback = self._fallback(bad, ir)
            self._bump()
            R[spec[2]] = result

        elif kind == K_MOV:
            self._bump()
            R[spec[1]] = spec[2]

        elif kind == K_HALT:
            halted = self._retire(self.active.copy())

        elif kind in (K_LDG, K_LDB, K_PLD):
            addr = R[spec[2]]
            if kind == K_LDG and self.queue:
                # find(Q, n): first front-to-back match per lane.
                hit = np.zeros(self.n, dtype=bool)
                value = np.zeros(self.n, dtype=np.int64)
                for qa, qv in self.queue:
                    match = (qa == addr) & ~hit
                    if match.any():
                        value[match] = qv[match]
                        hit |= match
                in_mem, mem_value = self._mem_lookup(addr)
                found = hit | in_mem
                result = np.where(hit, value, mem_value)
            else:
                found, result = self._mem_lookup(addr)
            missing = active & ~found
            if missing.any():
                if oob_trap:
                    faulted = self._retire(missing)
                else:
                    # ld*-rand: campaigns always run with the zero rand
                    # source, so the "arbitrary" value is 0.
                    result = np.where(found, result, 0)
            self._bump()
            R[spec[1]] = result

        elif kind == K_STG:
            self.queue.insert(
                0, (R[spec[1]].copy(), R[spec[2]].copy()))
            self._bump()

        elif kind == K_STB:
            if not self.queue:
                # The reference would have faulted here; unreachable for a
                # schedule built from a halting run, but stay exact.
                return faulted, self.retire_all(ir), halted
            qa, qv = self.queue[-1]
            mismatch = active & ((R[spec[1]] != qa) | (R[spec[2]] != qv))
            faulted = self._retire(mismatch)
            in_table, idx = self._mem_index(qa)
            emits = qa >= self.obs_min
            if ref_pair is None:
                deviates = emits
            else:
                deviates = ~emits | (qa != ref_pair[0]) | (qv != ref_pair[1])
            bad = self.active & (~in_table | deviates)
            if bad.any():
                fallback = self._fallback(bad, ir)
            stay = np.nonzero(self.active)[0]
            if stay.size:
                self.M[idx[stay], stay] = qv[stay]
                self.P[idx[stay], stay] = True
            self.queue.pop()
            self._bump()

        elif kind == K_PST:
            addr = R[spec[1]]
            value = R[spec[2]]
            in_table, idx = self._mem_index(addr)
            emits = addr >= self.obs_min
            if ref_pair is None:
                deviates = emits
            else:
                deviates = ~emits | (addr != ref_pair[0]) \
                    | (value != ref_pair[1])
            bad = active & (~in_table | deviates)
            if bad.any():
                fallback = self._fallback(bad, ir)
            stay = np.nonzero(self.active)[0]
            if stay.size:
                self.M[idx[stay], stay] = value[stay]
                self.P[idx[stay], stay] = True
            self._bump()

        elif kind == K_JMPG:
            bad = active & (R[self.d_row] != 0)
            faulted = self._retire(bad)
            target = R[spec[1]].copy()  # read before the bump
            self._bump()
            R[self.d_row] = target

        elif kind == K_JMPB:
            d = R[self.d_row]
            bad = active & ((d == 0) | (R[spec[1]] != d))
            faulted = self._retire(bad)
            d_old = d.copy()
            R[self.pcg_row] = d_old
            # PC_B reads rd *after* PC_G is written (as the interpreter
            # does) -- row assignment above already updated R, so a plain
            # re-read matches even when rd is pcG itself.
            R[self.pcb_row] = R[spec[1]]
            R[self.d_row] = 0

        elif kind == K_PJMP:
            target = R[spec[1]].copy()
            R[self.pcg_row] = target
            R[self.pcb_row] = target

        elif kind == K_BZG:
            z = R[spec[1]]
            # Both the untaken and the taken green branch fault iff a
            # transfer is already pending (d != 0) -- one shared check.
            bad = active & (R[self.d_row] != 0)
            faulted = self._retire(bad)
            taken = z == 0
            target = R[spec[2]].copy()  # read before the bump
            self._bump()
            R[self.d_row] = np.where(taken, target, R[self.d_row])

        elif kind == K_BZB:
            z = R[spec[1]]
            d = R[self.d_row]
            untaken = z != 0
            bad = active & np.where(
                untaken, d != 0, (d == 0) | (R[spec[2]] != d))
            faulted = self._retire(bad)
            d_old = d.copy()
            # Taken lanes re-read rd after the PC_G write, exactly like
            # jmpB: when rd *is* pcG the committed PC_B equals d.
            rd_val = d_old if spec[2] == self.pcg_row else R[spec[2]].copy()
            pg = R[self.pcg_row]
            pb = R[self.pcb_row]
            R[self.pcg_row] = np.where(untaken, pg + 1, d_old)
            R[self.pcb_row] = np.where(untaken, pb + 1, rd_val)
            R[self.d_row] = np.where(untaken, d_old, 0)

        elif kind == K_PBZ:
            untaken = R[spec[1]] != 0
            target = R[spec[2]].copy()
            pg = R[self.pcg_row]
            pb = R[self.pcb_row]
            R[self.pcg_row] = np.where(untaken, pg + 1, target)
            R[self.pcb_row] = np.where(untaken, pb + 1, target)

        else:  # pragma: no cover - decode admits only the kinds above
            return faulted, self.retire_all(ir), halted

        return faulted, fallback, halted
