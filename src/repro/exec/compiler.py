"""Closure compilation of TAL_FT code memory.

The interpreter (:func:`repro.core.semantics.step`) re-fetches, re-dispatches
and re-decodes the instruction at ``pcG`` on every small step of every run.
For a campaign that replays the same program millions of times, all of that
work is invariant: the instruction at a given code address never changes
(code memory sits outside the sphere of replication and is never written).

This module performs that invariant work **once**: every code address is
translated into a Python closure with the operand register names, ALU
operation, immediate, color tag and out-of-bounds policy already resolved.
A closure performs one full ``fetch`` + execute pair of the small-step
semantics -- mutating the state exactly as the two interpreter steps would
-- and returns the tuple of rule names that fired, from which the driver
recovers the step count (every small step has exactly one rule, so
``len(rules)`` *is* the number of steps consumed).

The translation is **behavior-preserving by construction**: each closure
body is the corresponding ``semantics`` handler with the per-step lookups
constant-folded.  Operand reads happen before the program counters are
bumped and destination writes after, in the same order as the interpreter,
so instructions that name ``pcG``/``pcB``/``d`` as operands behave
identically.  Faulty states are first-class inputs: a closure is only
entered by the driver after the fetch preconditions (``pcG`` = ``pcB``,
instruction present) have been re-checked against the *current* -- possibly
zapped -- register bank.

Programs containing instructions the translator does not recognize (or ALU
opcodes outside :data:`repro.core.instructions.ALU_OPS`) raise
:class:`CompilationUnsupported`; callers fall back to the interpreter, so
an exotic instruction degrades throughput, never behavior.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Set, Tuple

from repro.core.colors import Color, ColoredValue, green
from repro.core.instructions import (
    ALU_OPS,
    ArithRRI,
    ArithRRR,
    Bz,
    Halt,
    Instruction,
    Jmp,
    Load,
    Mov,
    PlainBz,
    PlainJmp,
    PlainLoad,
    PlainStore,
    Store,
)
from repro.core.registers import DEST, PC_B, PC_G
from repro.core.semantics import OobPolicy, _RESULTS as _STEP_RESULTS
from repro.core.state import MachineState

_new_cv = tuple.__new__
_CV = ColoredValue
_GREEN = Color.GREEN
_BLUE = Color.BLUE
#: Shared ``G 0`` written into ``d`` by commit branches (value-equal to the
#: fresh ``green(0)`` the interpreter allocates each time).
_GREEN_ZERO = green(0)


class CompilationUnsupported(Exception):
    """The program contains an instruction the closure compiler cannot
    translate; callers must fall back to the ``step()`` interpreter."""


#: A compiled instruction: performs one fetch + execute pair in place.
#: Receives the state, the raw register dict (hoisted by the driver), the
#: output sink (``outputs.append``) and the random source; returns the
#: tuple of rule names fired (``len`` = small steps consumed).
Closure = Callable[
    [MachineState, Dict[str, ColoredValue], Callable, Callable],
    Tuple[str, ...],
]

#: A fusable instruction body: same signature, no return value.  Only
#: generated for instructions with a single, infallible, fall-through
#: outcome (see :mod:`repro.exec.fusion`).
Effect = Callable[[MachineState, Dict[str, ColoredValue], Callable, Callable], None]


def _rules(*names: str) -> Tuple[str, ...]:
    """A rule tuple, validated against the interpreter's rule table so the
    two backends can never silently drift apart on rule names."""
    for name in names:
        if name not in _STEP_RESULTS:
            raise AssertionError(f"unknown semantics rule {name!r}")
    return names


class CompiledExec:
    """A program's code memory, compiled to per-address closures.

    ``base`` holds one closure per code address (one instruction each);
    ``fused`` holds superinstruction entries at addresses where several
    consecutive instructions were fused -- each value is ``(consumed,
    closure)`` with ``consumed`` the fixed number of small steps the fused
    closure accounts for.  ``fast`` is the merged dispatch table drivers
    use far from the step-budget horizon: the fused closure where one
    exists, the base closure otherwise -- one dict lookup per dispatch,
    safe whenever at least ``max_quantum`` steps of budget remain.
    ``registers`` is every register name any closure touches; drivers
    verify it is a subset of the live register bank before entering
    closures (the interpreter reports unknown registers with a
    :class:`~repro.core.errors.ReproError`, which plain dict access would
    not reproduce).
    """

    __slots__ = ("code", "oob_policy", "base", "fused", "fast",
                 "max_quantum", "registers", "size", "fused_sites",
                 "fused_instructions")

    def __init__(
        self,
        code: Dict[int, Instruction],
        oob_policy: OobPolicy,
        base: Dict[int, Closure],
        fused: Dict[int, Tuple[int, Closure]],
        registers: FrozenSet[str],
    ):
        self.code = code
        self.oob_policy = oob_policy
        self.base = base
        self.fused = fused
        self.registers = registers
        self.size = len(base)
        #: Addresses with a superinstruction entry.
        self.fused_sites = len(fused)
        #: Total instructions covered by superinstructions (for stats).
        self.fused_instructions = sum(
            consumed // 2 for consumed, _ in fused.values()
        )
        fast: Dict[int, Closure] = {}
        max_quantum = 2
        for address, closure in base.items():
            entry = fused.get(address)
            if entry is None:
                fast[address] = closure
            else:
                fast[address] = entry[1]
                if entry[0] > max_quantum:
                    max_quantum = entry[0]
        self.fast = fast
        #: The most small steps any single ``fast`` dispatch can consume.
        self.max_quantum = max_quantum

    def supports(self, state: MachineState) -> bool:
        """Can this compilation drive ``state``?  (Register bank must cover
        every name the closures address directly.)"""
        return self.registers <= state.regs._regs.keys()

    def __repr__(self) -> str:
        return (f"<CompiledExec {self.size} instrs, "
                f"{self.fused_sites} fused sites, "
                f"policy={self.oob_policy.value}>")


def _bump(regs: Dict[str, ColoredValue]) -> None:
    """``R++`` on the raw register dict (kept for the rare cold paths; hot
    closures inline these four lines)."""
    pg = regs[PC_G]
    pb = regs[PC_B]
    regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
    regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))


# ---------------------------------------------------------------------------
# Per-instruction translators.  Each returns (closure, effect-or-None,
# referenced register names).  ``effect`` is only provided when the
# instruction has exactly one outcome, never faults, and falls through to
# the next address -- the eligibility condition for fusion interiors.
# ---------------------------------------------------------------------------


def _compile_arith_rrr(instr: ArithRRR, oob_policy: OobPolicy):
    try:
        op = ALU_OPS[instr.op]
    except KeyError:
        raise CompilationUnsupported(f"unknown ALU op {instr.op!r}") from None
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    ret = _rules("fetch", "op2r")

    def run(state, regs, emit, rand):
        rtv = regs[rt]
        result = op(regs[rs][1], rtv[1])
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        regs[rd] = _new_cv(_CV, (rtv[0], result))
        return ret

    def effect(state, regs, emit, rand):
        rtv = regs[rt]
        result = op(regs[rs][1], rtv[1])
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        regs[rd] = _new_cv(_CV, (rtv[0], result))

    return run, (effect, "op2r"), (rd, rs, rt)


def _compile_arith_rri(instr: ArithRRI, oob_policy: OobPolicy):
    try:
        op = ALU_OPS[instr.op]
    except KeyError:
        raise CompilationUnsupported(f"unknown ALU op {instr.op!r}") from None
    rd, rs = instr.rd, instr.rs
    imm_color = instr.imm[0]
    imm_value = instr.imm[1]
    ret = _rules("fetch", "op1r")

    def run(state, regs, emit, rand):
        result = op(regs[rs][1], imm_value)
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        regs[rd] = _new_cv(_CV, (imm_color, result))
        return ret

    def effect(state, regs, emit, rand):
        result = op(regs[rs][1], imm_value)
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        regs[rd] = _new_cv(_CV, (imm_color, result))

    return run, (effect, "op1r"), (rd, rs)


def _compile_mov(instr: Mov, oob_policy: OobPolicy):
    rd = instr.rd
    imm = instr.imm
    ret = _rules("fetch", "mov")

    def run(state, regs, emit, rand):
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        regs[rd] = imm
        return ret

    def effect(state, regs, emit, rand):
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        regs[rd] = imm

    return run, (effect, "mov"), (rd,)


def _compile_halt(instr: Halt, oob_policy: OobPolicy):
    ret = _rules("fetch", "halt")

    def run(state, regs, emit, rand):
        state.halt()
        return ret

    return run, None, ()


def _compile_load(instr: Load, oob_policy: OobPolicy):
    rd, rs = instr.rd, instr.rs
    trap = oob_policy is OobPolicy.TRAP
    if instr.color is _GREEN:
        ret_queue = _rules("fetch", "ldG-queue")
        ret_mem = _rules("fetch", "ldG-mem")
        ret_fail = _rules("fetch", "ldG-fail")
        ret_rand = _rules("fetch", "ldG-rand")

        def run(state, regs, emit, rand):
            address = regs[rs][1]
            hit = state.queue.find(address)
            if hit is not None:
                pg = regs[PC_G]
                pb = regs[PC_B]
                regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
                regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
                regs[rd] = _new_cv(_CV, (_GREEN, hit[1]))
                return ret_queue
            memory = state.memory
            if address in memory:
                value = memory[address]
                pg = regs[PC_G]
                pb = regs[PC_B]
                regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
                regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
                regs[rd] = _new_cv(_CV, (_GREEN, value))
                return ret_mem
            if trap:
                state.enter_fault()
                return ret_fail
            pg = regs[PC_G]
            pb = regs[PC_B]
            regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
            regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
            regs[rd] = ColoredValue(_GREEN, rand())
            return ret_rand

        return run, None, (rd, rs)

    ret_mem = _rules("fetch", "ldB-mem")
    ret_fail = _rules("fetch", "ldB-fail")
    ret_rand = _rules("fetch", "ldB-rand")

    def run(state, regs, emit, rand):
        address = regs[rs][1]
        memory = state.memory
        if address in memory:
            value = memory[address]
            pg = regs[PC_G]
            pb = regs[PC_B]
            regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
            regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
            regs[rd] = _new_cv(_CV, (_BLUE, value))
            return ret_mem
        if trap:
            state.enter_fault()
            return ret_fail
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        regs[rd] = ColoredValue(_BLUE, rand())
        return ret_rand

    return run, None, (rd, rs)


def _compile_store(instr: Store, oob_policy: OobPolicy):
    rd, rs = instr.rd, instr.rs
    if instr.color is _GREEN:
        ret = _rules("fetch", "stG-queue")

        def run(state, regs, emit, rand):
            address = regs[rd][1]
            value = regs[rs][1]
            state.queue._pairs.appendleft((address, value))
            pg = regs[PC_G]
            pb = regs[PC_B]
            regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
            regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
            return ret

        def effect(state, regs, emit, rand):
            address = regs[rd][1]
            value = regs[rs][1]
            state.queue._pairs.appendleft((address, value))
            pg = regs[PC_G]
            pb = regs[PC_B]
            regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
            regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))

        return run, (effect, "stG-queue"), (rd, rs)

    ret_queue_fail = _rules("fetch", "stB-queue-fail")
    ret_mem_fail = _rules("fetch", "stB-mem-fail")
    ret_mem = _rules("fetch", "stB-mem")

    def run(state, regs, emit, rand):
        address = regs[rd][1]
        value = regs[rs][1]
        pairs = state.queue._pairs
        if not pairs:
            state.enter_fault()
            return ret_queue_fail
        queued = pairs[-1]
        if address != queued[0] or value != queued[1]:
            state.enter_fault()
            return ret_mem_fail
        pairs.pop()
        state.memory[queued[0]] = queued[1]
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        if queued[0] >= state.observable_min:
            emit(queued)
        return ret_mem

    return run, None, (rd, rs)


def _compile_jmp(instr: Jmp, oob_policy: OobPolicy):
    rd = instr.rd
    if instr.color is _GREEN:
        ret_ok = _rules("fetch", "jmpG")
        ret_fail = _rules("fetch", "jmpG-fail")

        def run(state, regs, emit, rand):
            if regs[DEST][1] != 0:
                state.enter_fault()
                return ret_fail
            target = regs[rd]
            pg = regs[PC_G]
            pb = regs[PC_B]
            regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
            regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
            regs[DEST] = target
            return ret_ok

        return run, None, (rd, DEST)

    ret_ok = _rules("fetch", "jmpB")
    ret_fail = _rules("fetch", "jmpB-fail")

    def run(state, regs, emit, rand):
        dest = regs[DEST]
        rdv = regs[rd]
        if dest[1] == 0 or rdv[1] != dest[1]:
            state.enter_fault()
            return ret_fail
        regs[PC_G] = dest
        regs[PC_B] = rdv
        regs[DEST] = _GREEN_ZERO
        return ret_ok

    return run, None, (rd, DEST)


def _compile_bz(instr: Bz, oob_policy: OobPolicy):
    rz, rd = instr.rz, instr.rd
    if instr.color is _GREEN:
        ret_untaken = _rules("fetch", "bz-untaken")
        ret_untaken_fail = _rules("fetch", "bz-untaken-fail")
        ret_taken = _rules("fetch", "bzG-taken")
        ret_taken_fail = _rules("fetch", "bzG-taken-fail")

        def run(state, regs, emit, rand):
            z_value = regs[rz][1]
            dest_value = regs[DEST][1]
            if z_value != 0:
                if dest_value != 0:
                    state.enter_fault()
                    return ret_untaken_fail
                pg = regs[PC_G]
                pb = regs[PC_B]
                regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
                regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
                return ret_untaken
            if dest_value != 0:
                state.enter_fault()
                return ret_taken_fail
            target = regs[rd]
            pg = regs[PC_G]
            pb = regs[PC_B]
            regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
            regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
            regs[DEST] = target
            return ret_taken

        return run, None, (rz, rd, DEST)

    ret_untaken = _rules("fetch", "bz-untaken")
    ret_untaken_fail = _rules("fetch", "bz-untaken-fail")
    ret_taken = _rules("fetch", "bzB-taken")
    ret_taken_fail = _rules("fetch", "bzB-taken-fail")

    def run(state, regs, emit, rand):
        z_value = regs[rz][1]
        dest = regs[DEST]
        if z_value != 0:
            if dest[1] != 0:
                state.enter_fault()
                return ret_untaken_fail
            pg = regs[PC_G]
            pb = regs[PC_B]
            regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
            regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
            return ret_untaken
        rdv = regs[rd]
        if dest[1] == 0 or rdv[1] != dest[1]:
            state.enter_fault()
            return ret_taken_fail
        regs[PC_G] = dest
        regs[PC_B] = rdv
        regs[DEST] = _GREEN_ZERO
        return ret_taken

    return run, None, (rz, rd, DEST)


def _compile_plain_load(instr: PlainLoad, oob_policy: OobPolicy):
    rd, rs = instr.rd, instr.rs
    trap = oob_policy is OobPolicy.TRAP
    ret_mem = _rules("fetch", "ld-mem")
    ret_fail = _rules("fetch", "ld-fail")
    ret_rand = _rules("fetch", "ld-rand")

    def run(state, regs, emit, rand):
        address = regs[rs][1]
        memory = state.memory
        if address in memory:
            value = memory[address]
            pg = regs[PC_G]
            pb = regs[PC_B]
            regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
            regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
            regs[rd] = _new_cv(_CV, (_GREEN, value))
            return ret_mem
        if trap:
            state.enter_fault()
            return ret_fail
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        regs[rd] = ColoredValue(_GREEN, rand())
        return ret_rand

    return run, None, (rd, rs)


def _compile_plain_store(instr: PlainStore, oob_policy: OobPolicy):
    rd, rs = instr.rd, instr.rs
    ret = _rules("fetch", "st-mem")

    def run(state, regs, emit, rand):
        address = regs[rd][1]
        value = regs[rs][1]
        state.memory[address] = value
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        if address >= state.observable_min:
            emit((address, value))
        return ret

    def effect(state, regs, emit, rand):
        address = regs[rd][1]
        value = regs[rs][1]
        state.memory[address] = value
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        if address >= state.observable_min:
            emit((address, value))

    return run, (effect, "st-mem"), (rd, rs)


def _compile_plain_jmp(instr: PlainJmp, oob_policy: OobPolicy):
    rd = instr.rd
    ret = _rules("fetch", "jmp")

    def run(state, regs, emit, rand):
        target = regs[rd][1]
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], target))
        regs[PC_B] = _new_cv(_CV, (pb[0], target))
        return ret

    return run, None, (rd,)


def _compile_plain_bz(instr: PlainBz, oob_policy: OobPolicy):
    rz, rd = instr.rz, instr.rd
    ret_taken = _rules("fetch", "bz-taken")
    ret_untaken = _rules("fetch", "bz-untaken-plain")

    def run(state, regs, emit, rand):
        if regs[rz][1] == 0:
            target = regs[rd][1]
            pg = regs[PC_G]
            pb = regs[PC_B]
            regs[PC_G] = _new_cv(_CV, (pg[0], target))
            regs[PC_B] = _new_cv(_CV, (pb[0], target))
            return ret_taken
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        return ret_untaken

    return run, None, (rz, rd)


#: Exact-type translator table; subclasses resolve through the isinstance
#: chain below, mirroring the interpreter's ``_dispatch_subclass``.
_TRANSLATORS = {
    ArithRRR: _compile_arith_rrr,
    ArithRRI: _compile_arith_rri,
    Mov: _compile_mov,
    Load: _compile_load,
    Store: _compile_store,
    Jmp: _compile_jmp,
    Bz: _compile_bz,
    Halt: _compile_halt,
    PlainLoad: _compile_plain_load,
    PlainStore: _compile_plain_store,
    PlainJmp: _compile_plain_jmp,
    PlainBz: _compile_plain_bz,
}

_TRANSLATOR_BASES = tuple(_TRANSLATORS.items())


def _translator_for(instruction: Instruction):
    translator = _TRANSLATORS.get(type(instruction))
    if translator is not None:
        return translator
    for base, candidate in _TRANSLATOR_BASES:
        if isinstance(instruction, base):
            return candidate
    raise CompilationUnsupported(f"unknown instruction {instruction!r}")


def compile_program(
    code: Dict[int, Instruction],
    oob_policy: OobPolicy = OobPolicy.TRAP,
) -> CompiledExec:
    """Compile ``code`` into a :class:`CompiledExec` for ``oob_policy``.

    Raises :class:`CompilationUnsupported` when any instruction cannot be
    translated; callers are expected to fall back to the interpreter.
    """
    from time import perf_counter as _perf_counter

    from repro.exec.fusion import build_fusion_table
    from repro.observe import emit as _emit_event, get_registry

    registry = get_registry()
    started = _perf_counter()
    try:
        base: Dict[int, Closure] = {}
        effects: Dict[int, Tuple[Effect, str]] = {}
        registers: Set[str] = {PC_G, PC_B, DEST}
        for address, instruction in code.items():
            translator = _translator_for(instruction)
            closure, effect, used = translator(instruction, oob_policy)
            base[address] = closure
            if effect is not None and type(instruction) in _TRANSLATORS:
                # Fusion interiors need the exact documented semantics; an
                # instruction subclass keeps its base closure but is excluded
                # from fusion out of caution.
                run_fn, rule = effect
                if instruction.rd not in (PC_G, PC_B):
                    # Writing a program counter breaks the sequential-advance
                    # invariant fused chains rely on.
                    effects[address] = (run_fn, rule)
            registers.update(used)
        fused = build_fusion_table(code, base, effects, oob_policy)
    except CompilationUnsupported:
        registry.counter("exec_compile_unsupported_total").inc()
        raise
    compiled = CompiledExec(code, oob_policy, base, fused,
                            frozenset(registers))
    elapsed = _perf_counter() - started
    registry.histogram("exec_compile_seconds").observe(elapsed)
    registry.counter("exec_compiles_total").inc()
    registry.counter("exec_fused_sites_total").inc(compiled.fused_sites)
    registry.counter("exec_fused_instructions_total").inc(
        compiled.fused_instructions)
    _emit_event("compile", instructions=compiled.size,
                fused_sites=compiled.fused_sites,
                fused_instructions=compiled.fused_instructions,
                seconds=round(elapsed, 6))
    return compiled
