"""Superinstruction fusion for the compiled backend.

TAL_FT code is built from redundant pairs: every green operation is
shadowed by a blue twin (``add``/``add``, ``stG``/``stB``), and every
control transfer is a two-phase announce/commit pair (``jmpG``/``jmpB``,
``bzG``/``bzB``).  Executing such code one instruction at a time pays the
driver's dispatch overhead (program-counter read, equality check, table
lookup) twice per logical operation.  Fusion eliminates that: at every code
address this module tries to build a *superinstruction* closure covering a
maximal run of consecutive instructions, executed in one driver dispatch.

A fused chain is ``interior* tail?``:

* **interiors** are instructions with exactly one outcome that never fault
  and always fall through (ALU ops, ``mov``, ``stG``, plain ``st``).
  Chains are code-generated in SSA style: interior results live in Python
  locals while the chain runs, and a single flush point before the tail
  boxes only the *final* value of each written register and bumps both
  program counters once by the interior count.  This is sound because
  faults never land mid-chain (below) and the intermediate register-bank
  states are observationally silent -- the flush reconstructs exactly the
  bank the interpreter would have built before the first step whose
  outcome can vary;
* the **tail** is any single compilable instruction (it may fault, halt or
  transfer control), or one of the dedicated two-phase pairs
  ``jmpG``+``jmpB`` / ``bzG``+``bzB`` / ``ldG``+``ldB``, inlined here with
  their full dynamic outcome structure (the load pair requires the green
  destination not be a program counter, so its intermediate fetch stays a
  provable no-op on every success path).

**Why fusion cannot mask a fault.**  Fused closures are only entered by a
driver that has just re-checked the fetch preconditions against the live
(possibly corrupted) register bank, and the interior/tail split is chosen
so every intermediate fetch inside a chain is a provable no-op: interiors
bump both program counters together (so ``pcG`` = ``pcB`` is preserved from
the driver's check) and every interior's successor address is in code (by
construction of the chain), so the intermediate ``fetch`` can neither
fetch-fail nor get stuck.  Faults themselves never land *inside* a chain:
the campaign engine materializes injection states at exact small-step
granularity with the interpreter (see ``ReferenceRun.state_at``) and only
then hands the state to the compiled driver, and drivers split chains at
any step-budget boundary (a fused entry is skipped when fewer than
``consumed`` steps remain), so a fault scheduled mid-instruction always
lands between the *original* small steps, exactly as under ``step()``.

Every fused entry coexists with the per-instruction ``base`` entries for
the same addresses, so control may enter a chain in the middle (e.g. after
a zap redirects ``pcG``) and still execute correctly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.colors import Color, ColoredValue, green
from repro.core.instructions import (
    ALU_OPS, ArithRRI, ArithRRR, Bz, Halt, Instruction, Jmp, Load, Mov,
    PlainBz, PlainJmp, PlainLoad, PlainStore, Store,
)
from repro.core.registers import DEST, PC_B, PC_G
from repro.core.semantics import _RESULTS as _STEP_RESULTS

_new_cv = tuple.__new__
_CV = ColoredValue
_GREEN = Color.GREEN
_BLUE = Color.BLUE
_GREEN_ZERO = green(0)

#: Upper bound on interior instructions per chain; bounds both compile
#: time (chains at consecutive addresses overlap) and the largest step
#: quantum a fused dispatch can consume.
MAX_INTERIOR = 16

#: ALU opcodes as inline source expressions -- saves a Python call per
#: interior arithmetic instruction.  ``sll``/``sra`` clamp their shift
#: amounts and stay as environment calls.
_ALU_EXPR = {
    "add": "({a} + {b})",
    "sub": "({a} - {b})",
    "mul": "({a} * {b})",
    "slt": "(1 if {a} < {b} else 0)",
    "seq": "(1 if {a} == {b} else 0)",
    "sne": "(1 if {a} != {b} else 0)",
    "and": "({a} & {b})",
    "or": "({a} | {b})",
    "xor": "({a} ^ {b})",
}


def _fuse_jmp_pair(announce: Jmp, commit: Jmp):
    """``jmpG rd`` immediately followed by ``jmpB rd'`` as one closure."""
    rd_g = announce.rd
    rd_b = commit.rd
    ret_ok = ("fetch", "jmpG", "fetch", "jmpB")
    ret_announce_fail = ("fetch", "jmpG-fail")
    ret_commit_fail = ("fetch", "jmpG", "fetch", "jmpB-fail")

    def run(state, regs, emit, rand):
        # jmpG: announce the target into d (which must be clear).
        if regs[DEST][1] != 0:
            state.enter_fault()
            return ret_announce_fail
        target = regs[rd_g]
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        regs[DEST] = target
        # Intermediate fetch: both pcs were bumped together and the commit
        # instruction exists at the next address, so it cannot fail.
        # jmpB: check agreement and transfer.
        rdv = regs[rd_b]
        if target[1] == 0 or rdv[1] != target[1]:
            state.enter_fault()
            return ret_commit_fail
        regs[PC_G] = target
        regs[PC_B] = rdv
        regs[DEST] = _GREEN_ZERO
        return ret_ok

    return run


def _fuse_bz_pair(announce: Bz, commit: Bz):
    """``bzG rz, rd`` immediately followed by ``bzB rz', rd'``."""
    rz_g, rd_g = announce.rz, announce.rd
    rz_b, rd_b = commit.rz, commit.rd
    # First half untaken (fell through), second half outcomes:
    ret_u_untaken = ("fetch", "bz-untaken", "fetch", "bz-untaken")
    ret_u_untaken_fail = ("fetch", "bz-untaken", "fetch", "bz-untaken-fail")
    ret_u_taken = ("fetch", "bz-untaken", "fetch", "bzB-taken")
    ret_u_taken_fail = ("fetch", "bz-untaken", "fetch", "bzB-taken-fail")
    # First half taken (announced into d), second half outcomes:
    ret_t_untaken = ("fetch", "bzG-taken", "fetch", "bz-untaken")
    ret_t_untaken_fail = ("fetch", "bzG-taken", "fetch", "bz-untaken-fail")
    ret_t_taken = ("fetch", "bzG-taken", "fetch", "bzB-taken")
    ret_t_taken_fail = ("fetch", "bzG-taken", "fetch", "bzB-taken-fail")
    # First half failures:
    ret_untaken_fail = ("fetch", "bz-untaken-fail")
    ret_taken_fail = ("fetch", "bzG-taken-fail")

    def run(state, regs, emit, rand):
        z_value = regs[rz_g][1]
        dest_value = regs[DEST][1]
        if z_value != 0:
            # bzG falls through.
            if dest_value != 0:
                state.enter_fault()
                return ret_untaken_fail
            pg = regs[PC_G]
            pb = regs[PC_B]
            regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
            regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
            # bzB with d still clear.
            z2 = regs[rz_b][1]
            dest = regs[DEST]
            if z2 != 0:
                if dest[1] != 0:
                    state.enter_fault()
                    return ret_u_untaken_fail
                pg = regs[PC_G]
                pb = regs[PC_B]
                regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
                regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
                return ret_u_untaken
            rdv = regs[rd_b]
            if dest[1] == 0 or rdv[1] != dest[1]:
                state.enter_fault()
                return ret_u_taken_fail
            regs[PC_G] = dest
            regs[PC_B] = rdv
            regs[DEST] = _GREEN_ZERO
            return ret_u_taken
        # bzG takes: announce into d (which must be clear).
        if dest_value != 0:
            state.enter_fault()
            return ret_taken_fail
        target = regs[rd_g]
        pg = regs[PC_G]
        pb = regs[PC_B]
        regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
        regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
        regs[DEST] = target
        # bzB with the announced target in d.
        z2 = regs[rz_b][1]
        if z2 != 0:
            if target[1] != 0:
                state.enter_fault()
                return ret_t_untaken_fail
            pg = regs[PC_G]
            pb = regs[PC_B]
            regs[PC_G] = _new_cv(_CV, (pg[0], pg[1] + 1))
            regs[PC_B] = _new_cv(_CV, (pb[0], pb[1] + 1))
            return ret_t_untaken
        rdv = regs[rd_b]
        if target[1] == 0 or rdv[1] != target[1]:
            state.enter_fault()
            return ret_t_taken_fail
        regs[PC_G] = target
        regs[PC_B] = rdv
        regs[DEST] = _GREEN_ZERO
        return ret_t_taken

    # The paper's protocol never takes bzB with a clear d; the closure
    # still handles it (faulty states reach every branch).
    return run


#: Register names each interior type *reads* (writes are its ``rd``, which
#: the compiler already guarantees is not a program counter).  Used to
#: decide whether a chain may defer its pc bumps to one batched update.
_INTERIOR_READS = {
    ArithRRR: lambda i: (i.rs, i.rt),
    ArithRRI: lambda i: (i.rs,),
    Mov: lambda i: (),
    Store: lambda i: (i.rd, i.rs),
    PlainStore: lambda i: (i.rd, i.rs),
}


def _use_value(reg: str, defs) -> str:
    """Source expression for ``reg``'s current *value* at this chain point:
    the pending in-chain definition when one exists, a live register-bank
    read otherwise."""
    if defs is not None:
        pending = defs.get(reg)
        if pending is not None:
            if pending[0] == "cv":
                return f"{pending[1]}[1]"
            return pending[2]
    return f"regs[{reg!r}][1]"


def _gen_interior(instr: Instruction, index, env: Dict, lines: List[str],
                  defs=None):
    """Append the straight-line source for one interior instruction.

    Emitted without pc bumps -- the chain bumps both counters once at the
    end (legal because no interior in a generated chain reads or writes a
    program counter, so intermediate pc values are unobservable).

    When ``defs`` is a dict the chain runs in *deferred-write* mode:
    register results stay in Python locals and ``defs`` records, per
    register, either ``("cv", source)`` (a ready ColoredValue expression)
    or ``("parts", color_src, value_src)``.  Only the chain's flush point
    boxes the final value of each register -- intermediate values are
    unobservable (faults never land inside a chain), so skipping their
    ColoredValue construction is invisible.  With ``defs=None`` (tail
    position, after the flush) every write goes straight to the bank.

    Returns a hoist flag when the snippet needs a per-call local (``_q``
    for the store queue, ``_obs`` for the observability threshold).
    """
    kind = type(instr)
    if kind is ArithRRR:
        pending = defs.get(instr.rt) if defs is not None else None
        if pending is None:
            tmp = f"_t{index}"
            lines.append(f"    {tmp} = regs[{instr.rt!r}]")
            color_src, rt_value = f"{tmp}[0]", f"{tmp}[1]"
        elif pending[0] == "cv":
            color_src, rt_value = f"{pending[1]}[0]", f"{pending[1]}[1]"
        else:
            color_src, rt_value = pending[1], pending[2]
        rs_value = _use_value(instr.rs, defs)
        expr = _ALU_EXPR.get(instr.op)
        if expr is not None:
            value = expr.format(a=rs_value, b=rt_value)
        else:
            op = f"_op{index}"
            env[op] = ALU_OPS[instr.op]
            value = f"{op}({rs_value}, {rt_value})"
        if defs is None:
            lines.append(
                f"    regs[{instr.rd!r}] = _cv(_CV, ({color_src}, {value}))")
        else:
            lines.append(f"    _v{index} = {value}")
            defs[instr.rd] = ("parts", color_src, f"_v{index}")
        return None
    if kind is ArithRRI:
        color = "_G" if instr.imm[0] is _GREEN else "_B"
        rs_value = _use_value(instr.rs, defs)
        expr = _ALU_EXPR.get(instr.op)
        if expr is not None:
            value = expr.format(a=rs_value, b=repr(instr.imm[1]))
        else:
            op = f"_op{index}"
            env[op] = ALU_OPS[instr.op]
            value = f"{op}({rs_value}, {instr.imm[1]!r})"
        if defs is None:
            lines.append(
                f"    regs[{instr.rd!r}] = _cv(_CV, ({color}, {value}))")
        else:
            lines.append(f"    _v{index} = {value}")
            defs[instr.rd] = ("parts", color, f"_v{index}")
        return None
    if kind is Mov:
        imm = f"_imm{index}"
        env[imm] = instr.imm
        if defs is None:
            lines.append(f"    regs[{instr.rd!r}] = {imm}")
        else:
            defs[instr.rd] = ("cv", imm)
        return None
    if kind is Store:  # interior stores are green (enqueue) by eligibility
        lines.append(
            f"    _q.appendleft(({_use_value(instr.rd, defs)}, "
            f"{_use_value(instr.rs, defs)}))")
        return "q"
    if kind is PlainStore:
        lines.append(f"    _a{index} = {_use_value(instr.rd, defs)}")
        lines.append(f"    _v{index} = {_use_value(instr.rs, defs)}")
        lines.append(f"    state.memory[_a{index}] = _v{index}")
        lines.append(f"    if _a{index} >= _obs:")
        lines.append(f"        emit((_a{index}, _v{index}))")
        return "obs"
    raise AssertionError(f"no codegen template for {instr!r}")


_BUMP1 = (
    f"    _pg = regs[{PC_G!r}]",
    f"    _pb = regs[{PC_B!r}]",
    f"    regs[{PC_G!r}] = _cv(_CV, (_pg[0], _pg[1] + 1))",
    f"    regs[{PC_B!r}] = _cv(_CV, (_pb[0], _pb[1] + 1))",
)


def _gen_tail(instr: Instruction, follower: Optional[Instruction],
              oob_policy, env: Dict, body: List[str],
              prefix: Tuple[str, ...]) -> int:
    """Append inline source for the chain tail; every outcome returns a
    fully-constant rule tuple (``prefix`` + the tail's own rules).

    Mirrors the closure translators in :mod:`repro.exec.compiler` line for
    line.  Returns the number of *instructions* the emitted tail covers
    (2 for a fused announce/commit pair, 1 otherwise), or 0 when this tail
    shape has no template and the caller must fall back to calling the
    tail closure.
    """
    from repro.core.semantics import OobPolicy

    def const(name: str, *tail_rules: str) -> str:
        for rule in tail_rules:
            assert rule in _STEP_RESULTS, rule
        parts: List[str] = []
        for rule in tail_rules:
            parts.append("fetch")
            parts.append(rule)
        env[name] = prefix + tuple(parts)
        return name

    kind = type(instr)
    trap = oob_policy is OobPolicy.TRAP

    if kind in _INTERIOR_READS and not (kind is Store
                                        and instr.color is not _GREEN) \
            and not (kind in (ArithRRR, ArithRRI, Mov)
                     and instr.rd in (PC_G, PC_B)):
        # An interior-eligible instruction serving as tail (cap hit, or the
        # next address is empty): same snippet plus its own pc bump.  A
        # destination *write* to a program counter is excluded: the
        # interpreter bumps before writing ``rd``, and this template writes
        # first (harmless for ordinary registers, divergent for a pc).
        rule = {ArithRRR: "op2r", ArithRRI: "op1r", Mov: "mov",
                Store: "stG-queue", PlainStore: "st-mem"}[kind]
        flag = _gen_interior(instr, "t", env, body)
        if flag == "q":
            body.insert(len(body) - 1, "    _q = state.queue._pairs")
        elif flag == "obs":
            # The snippet references _obs after the memory write; hoist it
            # just before the emitted lines (last five).
            body.insert(len(body) - 5, "    _obs = state.observable_min")
        body.extend(_BUMP1)
        body.append(f"    return {const('_p0', rule)}")
        return 1

    if kind is Halt:
        body.append("    state.halt()")
        body.append(f"    return {const('_p0', 'halt')}")
        return 1

    if kind is Load and instr.color is _GREEN and type(follower) is Load \
            and follower.color is _BLUE and instr.rd not in (PC_G, PC_B):
        # ``ldG`` immediately followed by its ``ldB`` shadow, as one
        # template.  The intermediate fetch cannot fail: both pcs are
        # bumped together, the blue load exists at the next address, and
        # ``rd`` is not a program counter (pairs writing a pc fall through
        # to the single-load template below).  The blue half is inlined
        # behind every green success path with its own constants.
        rs_g, rd_g = instr.rs, instr.rd
        rs_b, rd_b = follower.rs, follower.rd
        names = iter(f"_lp{n}" for n in range(12))

        def blue(pad: str, green_rule: str) -> None:
            body.append(f"{pad}_la2 = regs[{rs_b!r}][1]")
            body.append(f"{pad}if _la2 in _m:")
            body.extend(pad + line for line in _BUMP1)
            body.append(f"{pad}    regs[{rd_b!r}] = _cv(_CV, (_B, _m[_la2]))")
            body.append(f"{pad}    return "
                        f"{const(next(names), green_rule, 'ldB-mem')}")
            if trap:
                body.append(f"{pad}state.enter_fault()")
                body.append(f"{pad}return "
                            f"{const(next(names), green_rule, 'ldB-fail')}")
            else:
                body.extend(pad + line[4:] for line in _BUMP1)
                body.append(f"{pad}regs[{rd_b!r}] = _CVn(_B, rand())")
                body.append(f"{pad}return "
                            f"{const(next(names), green_rule, 'ldB-rand')}")
                env["_CVn"] = ColoredValue

        body.append(f"    _la = regs[{rs_g!r}][1]")
        body.append("    _h = state.queue.find(_la)")
        body.append("    _m = state.memory")
        body.append("    if _h is not None:")
        body.extend("    " + line for line in _BUMP1)
        body.append(f"        regs[{rd_g!r}] = _cv(_CV, (_G, _h[1]))")
        blue("        ", "ldG-queue")
        body.append("    if _la in _m:")
        body.extend("    " + line for line in _BUMP1)
        body.append(f"        regs[{rd_g!r}] = _cv(_CV, (_G, _m[_la]))")
        blue("        ", "ldG-mem")
        if trap:
            body.append("    state.enter_fault()")
            body.append(f"    return {const(next(names), 'ldG-fail')}")
        else:
            body.extend(_BUMP1)
            body.append(f"    regs[{rd_g!r}] = _CVn(_G, rand())")
            env["_CVn"] = ColoredValue
            blue("    ", "ldG-rand")
        return 2

    if kind is Load:
        rs, rd = instr.rs, instr.rd
        if instr.color is _GREEN:
            body.append(f"    _la = regs[{rs!r}][1]")
            body.append("    _h = state.queue.find(_la)")
            body.append("    if _h is not None:")
            body.extend("    " + line for line in _BUMP1)
            body.append(f"        regs[{rd!r}] = _cv(_CV, (_G, _h[1]))")
            body.append(f"        return {const('_p0', 'ldG-queue')}")
            body.append("    _m = state.memory")
            body.append("    if _la in _m:")
            body.extend("    " + line for line in _BUMP1)
            body.append(f"        regs[{rd!r}] = _cv(_CV, (_G, _m[_la]))")
            body.append(f"        return {const('_p1', 'ldG-mem')}")
            if trap:
                body.append("    state.enter_fault()")
                body.append(f"    return {const('_p2', 'ldG-fail')}")
            else:
                body.extend(_BUMP1)
                body.append(f"    regs[{rd!r}] = _CVn(_G, rand())")
                body.append(f"    return {const('_p2', 'ldG-rand')}")
                env["_CVn"] = ColoredValue
            return 1
        body.append(f"    _la = regs[{rs!r}][1]")
        body.append("    _m = state.memory")
        body.append("    if _la in _m:")
        body.extend("    " + line for line in _BUMP1)
        body.append(f"        regs[{rd!r}] = _cv(_CV, (_B, _m[_la]))")
        body.append(f"        return {const('_p0', 'ldB-mem')}")
        if trap:
            body.append("    state.enter_fault()")
            body.append(f"    return {const('_p1', 'ldB-fail')}")
        else:
            body.extend(_BUMP1)
            body.append(f"    regs[{rd!r}] = _CVn(_B, rand())")
            body.append(f"    return {const('_p1', 'ldB-rand')}")
            env["_CVn"] = ColoredValue
        return 1

    if kind is PlainLoad:
        rs, rd = instr.rs, instr.rd
        body.append(f"    _la = regs[{rs!r}][1]")
        body.append("    _m = state.memory")
        body.append("    if _la in _m:")
        body.extend("    " + line for line in _BUMP1)
        body.append(f"        regs[{rd!r}] = _cv(_CV, (_G, _m[_la]))")
        body.append(f"        return {const('_p0', 'ld-mem')}")
        if trap:
            body.append("    state.enter_fault()")
            body.append(f"    return {const('_p1', 'ld-fail')}")
        else:
            body.extend(_BUMP1)
            body.append(f"    regs[{rd!r}] = _CVn(_G, rand())")
            body.append(f"    return {const('_p1', 'ld-rand')}")
            env["_CVn"] = ColoredValue
        return 1

    if kind is Store:  # blue: commit the oldest queued store
        rd, rs = instr.rd, instr.rs
        body.append(f"    _sa = regs[{rd!r}][1]")
        body.append(f"    _sv = regs[{rs!r}][1]")
        body.append("    _qp = state.queue._pairs")
        body.append("    if not _qp:")
        body.append("        state.enter_fault()")
        body.append(f"        return {const('_p0', 'stB-queue-fail')}")
        body.append("    _qd = _qp[-1]")
        body.append("    if _sa != _qd[0] or _sv != _qd[1]:")
        body.append("        state.enter_fault()")
        body.append(f"        return {const('_p1', 'stB-mem-fail')}")
        body.append("    _qp.pop()")
        body.append("    state.memory[_qd[0]] = _qd[1]")
        body.extend(_BUMP1)
        body.append("    if _qd[0] >= state.observable_min:")
        body.append("        emit(_qd)")
        body.append(f"    return {const('_p2', 'stB-mem')}")
        return 1

    if kind is Jmp and instr.color is _GREEN and type(follower) is Jmp \
            and follower.color is _BLUE:
        # Announce/commit pair in one template (cf. _fuse_jmp_pair).
        env["_GZ"] = _GREEN_ZERO
        body.append(f"    if regs[{DEST!r}][1] != 0:")
        body.append("        state.enter_fault()")
        body.append(f"        return {const('_p0', 'jmpG-fail')}")
        body.append(f"    _jt = regs[{instr.rd!r}]")
        body.extend(_BUMP1)
        body.append(f"    regs[{DEST!r}] = _jt")
        body.append(f"    _jr = regs[{follower.rd!r}]")
        body.append("    if _jt[1] == 0 or _jr[1] != _jt[1]:")
        body.append("        state.enter_fault()")
        body.append(f"        return {const('_p1', 'jmpG', 'jmpB-fail')}")
        body.append(f"    regs[{PC_G!r}] = _jt")
        body.append(f"    regs[{PC_B!r}] = _jr")
        body.append(f"    regs[{DEST!r}] = _GZ")
        body.append(f"    return {const('_p2', 'jmpG', 'jmpB')}")
        return 2

    if kind is Jmp:
        rd = instr.rd
        if instr.color is _GREEN:
            body.append(f"    if regs[{DEST!r}][1] != 0:")
            body.append("        state.enter_fault()")
            body.append(f"        return {const('_p0', 'jmpG-fail')}")
            body.append(f"    _jt = regs[{rd!r}]")
            body.extend(_BUMP1)
            body.append(f"    regs[{DEST!r}] = _jt")
            body.append(f"    return {const('_p1', 'jmpG')}")
            return 1
        env["_GZ"] = _GREEN_ZERO
        body.append(f"    _jd = regs[{DEST!r}]")
        body.append(f"    _jr = regs[{rd!r}]")
        body.append("    if _jd[1] == 0 or _jr[1] != _jd[1]:")
        body.append("        state.enter_fault()")
        body.append(f"        return {const('_p0', 'jmpB-fail')}")
        body.append(f"    regs[{PC_G!r}] = _jd")
        body.append(f"    regs[{PC_B!r}] = _jr")
        body.append(f"    regs[{DEST!r}] = _GZ")
        body.append(f"    return {const('_p1', 'jmpB')}")
        return 1

    if kind is Bz and instr.color is _GREEN and type(follower) is Bz \
            and follower.color is _BLUE:
        env["_GZ"] = _GREEN_ZERO
        rz_g, rd_g = instr.rz, instr.rd
        rz_b, rd_b = follower.rz, follower.rd
        body.append(f"    _bz = regs[{rz_g!r}][1]")
        body.append(f"    _bd = regs[{DEST!r}][1]")
        body.append("    if _bz != 0:")  # bzG falls through
        body.append("        if _bd != 0:")
        body.append("            state.enter_fault()")
        body.append(f"            return {const('_p0', 'bz-untaken-fail')}")
        body.extend("    " + line for line in _BUMP1)
        body.append(f"        _bz2 = regs[{rz_b!r}][1]")
        body.append(f"        _bd2 = regs[{DEST!r}]")
        body.append("        if _bz2 != 0:")
        body.append("            if _bd2[1] != 0:")
        body.append("                state.enter_fault()")
        body.append(f"                return "
                    f"{const('_p1', 'bz-untaken', 'bz-untaken-fail')}")
        body.extend("        " + line for line in _BUMP1)
        body.append(f"            return "
                    f"{const('_p2', 'bz-untaken', 'bz-untaken')}")
        body.append(f"        _br = regs[{rd_b!r}]")
        body.append("        if _bd2[1] == 0 or _br[1] != _bd2[1]:")
        body.append("            state.enter_fault()")
        body.append(f"            return "
                    f"{const('_p3', 'bz-untaken', 'bzB-taken-fail')}")
        body.append(f"        regs[{PC_G!r}] = _bd2")
        body.append(f"        regs[{PC_B!r}] = _br")
        body.append(f"        regs[{DEST!r}] = _GZ")
        body.append(f"        return {const('_p4', 'bz-untaken', 'bzB-taken')}")
        body.append("    if _bd != 0:")  # bzG takes: d must be clear
        body.append("        state.enter_fault()")
        body.append(f"        return {const('_p5', 'bzG-taken-fail')}")
        body.append(f"    _bt = regs[{rd_g!r}]")
        body.extend(_BUMP1)
        body.append(f"    regs[{DEST!r}] = _bt")
        body.append(f"    _bz2 = regs[{rz_b!r}][1]")
        body.append("    if _bz2 != 0:")
        body.append("        if _bt[1] != 0:")
        body.append("            state.enter_fault()")
        body.append(f"            return "
                    f"{const('_p6', 'bzG-taken', 'bz-untaken-fail')}")
        body.extend("    " + line for line in _BUMP1)
        body.append(f"        return {const('_p7', 'bzG-taken', 'bz-untaken')}")
        body.append(f"    _br = regs[{rd_b!r}]")
        body.append("    if _bt[1] == 0 or _br[1] != _bt[1]:")
        body.append("        state.enter_fault()")
        body.append(f"        return "
                    f"{const('_p8', 'bzG-taken', 'bzB-taken-fail')}")
        body.append(f"    regs[{PC_G!r}] = _bt")
        body.append(f"    regs[{PC_B!r}] = _br")
        body.append(f"    regs[{DEST!r}] = _GZ")
        body.append(f"    return {const('_p9', 'bzG-taken', 'bzB-taken')}")
        return 2

    if kind is Bz:
        rz, rd = instr.rz, instr.rd
        if instr.color is _GREEN:
            body.append(f"    _bz = regs[{rz!r}][1]")
            body.append(f"    _bd = regs[{DEST!r}][1]")
            body.append("    if _bz != 0:")
            body.append("        if _bd != 0:")
            body.append("            state.enter_fault()")
            body.append(f"            return {const('_p0', 'bz-untaken-fail')}")
            body.extend("    " + line for line in _BUMP1)
            body.append(f"        return {const('_p1', 'bz-untaken')}")
            body.append("    if _bd != 0:")
            body.append("        state.enter_fault()")
            body.append(f"        return {const('_p2', 'bzG-taken-fail')}")
            body.append(f"    _bt = regs[{rd!r}]")
            body.extend(_BUMP1)
            body.append(f"    regs[{DEST!r}] = _bt")
            body.append(f"    return {const('_p3', 'bzG-taken')}")
            return 1
        env["_GZ"] = _GREEN_ZERO
        body.append(f"    _bz = regs[{rz!r}][1]")
        body.append(f"    _bd = regs[{DEST!r}]")
        body.append("    if _bz != 0:")
        body.append("        if _bd[1] != 0:")
        body.append("            state.enter_fault()")
        body.append(f"            return {const('_p0', 'bz-untaken-fail')}")
        body.extend("    " + line for line in _BUMP1)
        body.append(f"        return {const('_p1', 'bz-untaken')}")
        body.append(f"    _br = regs[{rd!r}]")
        body.append("    if _bd[1] == 0 or _br[1] != _bd[1]:")
        body.append("        state.enter_fault()")
        body.append(f"        return {const('_p2', 'bzB-taken-fail')}")
        body.append(f"    regs[{PC_G!r}] = _bd")
        body.append(f"    regs[{PC_B!r}] = _br")
        body.append(f"    regs[{DEST!r}] = _GZ")
        body.append(f"    return {const('_p3', 'bzB-taken')}")
        return 1

    if kind is PlainJmp:
        body.append(f"    _jt = regs[{instr.rd!r}][1]")
        body.append(f"    _pg = regs[{PC_G!r}]")
        body.append(f"    _pb = regs[{PC_B!r}]")
        body.append(f"    regs[{PC_G!r}] = _cv(_CV, (_pg[0], _jt))")
        body.append(f"    regs[{PC_B!r}] = _cv(_CV, (_pb[0], _jt))")
        body.append(f"    return {const('_p0', 'jmp')}")
        return 1

    if kind is PlainBz:
        rz, rd = instr.rz, instr.rd
        body.append(f"    if regs[{rz!r}][1] == 0:")
        body.append(f"        _jt = regs[{rd!r}][1]")
        body.append(f"        _pg = regs[{PC_G!r}]")
        body.append(f"        _pb = regs[{PC_B!r}]")
        body.append(f"        regs[{PC_G!r}] = _cv(_CV, (_pg[0], _jt))")
        body.append(f"        regs[{PC_B!r}] = _cv(_CV, (_pb[0], _jt))")
        body.append(f"        return {const('_p0', 'bz-taken')}")
        body.extend(_BUMP1)
        body.append(f"    return {const('_p1', 'bz-untaken-plain')}")
        return 1

    return 0


def _codegen_chain(interiors: List[Instruction], prefix: Tuple[str, ...],
                   tail_instr: Optional[Instruction],
                   tail_follower: Optional[Instruction],
                   oob_policy) -> Optional[Tuple[int, object]]:
    """Generate one Python function for a whole chain via ``exec``.

    The interiors become straight-line source (no per-instruction call
    overhead), both program counters are bumped once by ``len(interiors)``,
    and the tail -- any single instruction, or an announce/commit pair --
    is inlined behind it with fully-constant return tuples.  Returns
    ``(total_instructions, closure)``, or ``None`` when the tail has no
    template (the caller then falls back to the effect-closure chain).
    """
    env: Dict[str, object] = {"_cv": _new_cv, "_CV": _CV, "_G": _GREEN,
                              "_B": _BLUE}
    lines: List[str] = []
    hoists = set()
    defs: Dict[str, Tuple[str, ...]] = {}
    for index, instr in enumerate(interiors):
        flag = _gen_interior(instr, index, env, lines, defs)
        if flag:
            hoists.add(flag)
    body = ["def _chain(state, regs, emit, rand):"]
    if "q" in hoists:
        body.append("    _q = state.queue._pairs")
    if "obs" in hoists:
        body.append("    _obs = state.observable_min")
    body.extend(lines)
    # Flush: box the final value of every register the interiors defined
    # (intermediate values lived in locals only), then bump both program
    # counters once.  The tail below sees exactly the bank the interpreter
    # would have produced.
    for reg, pending in defs.items():
        if pending[0] == "cv":
            body.append(f"    regs[{reg!r}] = {pending[1]}")
        else:
            body.append(
                f"    regs[{reg!r}] = _cv(_CV, ({pending[1]}, {pending[2]}))")
    count = len(interiors)
    if count:
        body.extend((
            f"    _pg = regs[{PC_G!r}]",
            f"    _pb = regs[{PC_B!r}]",
            f"    regs[{PC_G!r}] = _cv(_CV, (_pg[0], _pg[1] + {count}))",
            f"    regs[{PC_B!r}] = _cv(_CV, (_pb[0], _pb[1] + {count}))",
        ))
    if tail_instr is None:
        env["_prefix"] = prefix
        body.append("    return _prefix")
        tail_count = 0
    else:
        tail_count = _gen_tail(tail_instr, tail_follower, oob_policy, env,
                               body, prefix)
        if tail_count == 0:
            return None
    exec(compile("\n".join(body), "<fused-chain>", "exec"), env)
    return count + tail_count, env["_chain"]


def _make_chain(effects, prefix: Tuple[str, ...], tail):
    """Compose interior effects and an optional tail closure.

    ``prefix`` is the rule tuple for the interiors (``("fetch", r0,
    "fetch", r1, ...)``).  Tail closures return per-outcome constant
    tuples, so the composed return value is memoized by the tail tuple's
    identity -- after the first occurrence of each dynamic outcome the
    chain allocates nothing.
    """
    if tail is None:
        effects = tuple(effects)

        def run_effects_only(state, regs, emit, rand):
            for effect in effects:
                effect(state, regs, emit, rand)
            return prefix

        return run_effects_only

    if not effects:
        return tail

    rmap: Dict[int, Tuple[str, ...]] = {}
    rmap_get = rmap.get

    if len(effects) == 1:
        effect0 = effects[0]

        def run_one(state, regs, emit, rand):
            effect0(state, regs, emit, rand)
            ret = tail(state, regs, emit, rand)
            out = rmap_get(id(ret))
            if out is None:
                out = prefix + ret
                rmap[id(ret)] = out
            return out

        return run_one

    if len(effects) == 2:
        effect0, effect1 = effects

        def run_two(state, regs, emit, rand):
            effect0(state, regs, emit, rand)
            effect1(state, regs, emit, rand)
            ret = tail(state, regs, emit, rand)
            out = rmap_get(id(ret))
            if out is None:
                out = prefix + ret
                rmap[id(ret)] = out
            return out

        return run_two

    effects = tuple(effects)

    def run_many(state, regs, emit, rand):
        for effect in effects:
            effect(state, regs, emit, rand)
        ret = tail(state, regs, emit, rand)
        out = rmap_get(id(ret))
        if out is None:
            out = prefix + ret
            rmap[id(ret)] = out
        return out

    return run_many


def build_fusion_table(
    code: Dict[int, Instruction],
    base: Dict[int, object],
    effects: Dict[int, Tuple[object, str]],
    oob_policy,
) -> Dict[int, Tuple[int, object]]:
    """``address -> (consumed_steps, fused_closure)`` for every address
    where at least two consecutive instructions can run as one dispatch."""
    fused: Dict[int, Tuple[int, object]] = {}
    for address in code:
        chain_effects: List[object] = []
        chain_instrs: List[Instruction] = []
        rules: List[str] = []
        cursor = address
        while len(chain_effects) < MAX_INTERIOR and cursor in effects:
            effect, rule = effects[cursor]
            chain_effects.append(effect)
            chain_instrs.append(code[cursor])
            rules.append(rule)
            cursor += 1
        tail_instr = code.get(cursor)
        follower = code.get(cursor + 1)

        prefix_parts: List[str] = []
        for rule in rules:
            prefix_parts.append("fetch")
            prefix_parts.append(rule)
        prefix = tuple(prefix_parts)
        for rule in prefix:
            assert rule in _STEP_RESULTS, rule

        # Preferred path: one generated function for the whole chain.
        # Requires that no interior reads a program counter (the generated
        # code defers pc bumps to one batched update, so intermediate pc
        # values must be unobservable).
        generated = None
        if all(PC_G not in _INTERIOR_READS[type(instr)](instr)
               and PC_B not in _INTERIOR_READS[type(instr)](instr)
               for instr in chain_instrs):
            generated = _codegen_chain(chain_instrs, prefix, tail_instr,
                                       follower, oob_policy)
        if generated is not None:
            total, closure = generated
            if total >= 2:
                fused[address] = (2 * total, closure)
            continue

        # Fallback: compose the per-instruction effect closures (which bump
        # the pcs as they go) around a closure tail.  Reached when an
        # interior reads a pc, or the tail is an instruction subclass with
        # no source template.
        tail = None
        tail_count = 0
        if tail_instr is not None:
            if (type(tail_instr) is Jmp and tail_instr.color is _GREEN
                    and type(follower) is Jmp and follower.color is _BLUE):
                tail = _fuse_jmp_pair(tail_instr, follower)
                tail_count = 2
            elif (type(tail_instr) is Bz and tail_instr.color is _GREEN
                    and type(follower) is Bz and follower.color is _BLUE):
                tail = _fuse_bz_pair(tail_instr, follower)
                tail_count = 2
            else:
                tail = base.get(cursor)
                tail_count = 1 if tail is not None else 0
        total = len(chain_effects) + tail_count
        if total < 2:
            continue
        fused[address] = (2 * total, _make_chain(chain_effects, prefix, tail))
    return fused
