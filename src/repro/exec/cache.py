"""The shared compiled-program cache.

Compilation is cheap (one pass over code memory) but far from free, and the
same program is executed from many places: every faulty run of a campaign,
every worker process, the recovery executor's replays and the Figure 10
simulator's functional runs.  This module keys compilations by *program
identity* -- a content fingerprint of code memory plus the out-of-bounds
policy baked into the closures -- in a bounded LRU
(:class:`repro.core.caching.LRUCache`), so each distinct program is
compiled once per process no matter how many subsystems execute it.

Programs the compiler rejects are negatively cached (a sentinel, not
``None`` -- ``None`` is the LRU's miss marker), so an uncompilable program
costs one failed compile, not one per run.

A second, general-purpose table (:func:`get_aux`) caches artifacts
*derived* from a compiled program under caller-chosen keys; the timing
simulator uses it for per-block instruction lists and static schedules so
``simulate`` stops re-walking code memory on every call (one entry per
(program, config) pair instead of per scheduled block instance).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.core.caching import LRUCache
from repro.core.instructions import Instruction
from repro.core.semantics import OobPolicy
from repro.exec.compiler import CompilationUnsupported, CompiledExec, compile_program

#: Distinct programs kept compiled per process.  Campaigns, tests and the
#: benchmarks cycle through a few dozen programs at most.
_CACHE_SIZE = 128

#: Negative-cache marker for programs the compiler rejected.
_UNSUPPORTED = object()

_cache: LRUCache = LRUCache(_CACHE_SIZE)
_aux_cache: LRUCache = LRUCache(256)
_lock = threading.Lock()


def code_fingerprint(code: Dict[int, Instruction]) -> Tuple:
    """A hashable identity for code memory (instructions are frozen
    dataclasses, so the sorted item tuple is hashable and content-based)."""
    return tuple(sorted(code.items()))


def get_compiled(
    code: Dict[int, Instruction],
    oob_policy: OobPolicy = OobPolicy.TRAP,
) -> Optional[CompiledExec]:
    """The compiled form of ``code`` under ``oob_policy``, or ``None`` when
    the program cannot be compiled (callers fall back to ``step()``)."""
    from repro.observe import get_registry

    registry = get_registry()
    key = (code_fingerprint(code), oob_policy)
    with _lock:
        cached = _cache.get(key)
    if cached is not None:
        registry.counter("exec_cache_lookups_total", outcome="hit").inc()
        return None if cached is _UNSUPPORTED else cached
    registry.counter("exec_cache_lookups_total", outcome="miss").inc()
    try:
        compiled = compile_program(code, oob_policy)
    except CompilationUnsupported:
        with _lock:
            _cache.put(key, _UNSUPPORTED)
        return None
    with _lock:
        _cache.put(key, compiled)
    return compiled


def warm_program(
    code: Dict[int, Instruction],
    oob_policy: OobPolicy = OobPolicy.TRAP,
) -> str:
    """Ensure ``code`` is compiled into this process's cache, up front.

    Returns ``"hit"`` when the compilation was already cached (the common
    case for a ``fork``-started worker, which inherits the parent's warm
    cache), ``"compiled"`` when this call populated it (a ``spawn``-started
    or restarted worker re-warming after a supervisor pool rebuild), or
    ``"unsupported"`` when the program cannot be compiled and every run
    will use the interpreter.  Campaign workers call this from their pool
    initializer so the first faulty run never pays compilation latency
    inside a supervised chunk deadline.
    """
    key = (code_fingerprint(code), oob_policy)
    with _lock:
        already = _cache.get(key) is not None
    if already:
        return "hit"
    return "unsupported" if get_compiled(code, oob_policy) is None \
        else "compiled"


def get_aux(key: Hashable, build: Callable[[], object]) -> object:
    """A derived artifact under ``key``, built once and cached.

    ``build`` runs outside the lock (it may be slow); concurrent builders
    for the same key are harmless -- last write wins with equal values.
    """
    with _lock:
        cached = _aux_cache.get(key)
    if cached is not None:
        return cached
    value = build()
    if value is not None:
        with _lock:
            _aux_cache.put(key, value)
    return value


def clear_exec_caches() -> None:
    """Drop every cached compilation and derived artifact (tests)."""
    with _lock:
        _cache.clear()
        _aux_cache.clear()


def exec_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters for both tables (benchmarks, tests)."""
    with _lock:
        return {
            "programs": len(_cache),
            "program_hits": _cache.hits,
            "program_misses": _cache.misses,
            "aux_entries": len(_aux_cache),
            "aux_hits": _aux_cache.hits,
            "aux_misses": _aux_cache.misses,
        }
