"""Command-line interface: assemble, check, run, compile, and time programs.

Installed as the ``talft`` console script (also runnable as
``python -m repro.cli``)::

    talft check  program.tal              # assemble + type-check
    talft run    program.tal [--fault r1=42@6] [--max-steps N]
    talft compile program.mwl [--mode ft|baseline|swift] [--emit-tal F]
    talft trace  program.tal [--steps N] [--fault r1=42@6]
    talft time   program.mwl              # Figure 10-style ratios
    talft campaign program.mwl [--samples N]
    talft campaign program.mwl --shards 4 [--workers HOST:PORT,...]
    talft shard-worker --listen 7070      # join a remote worker fleet
    talft journal merge -o OUT IN...      # union shard journals offline
    talft serve [--serve-port 8321]       # the campaign HTTP service

``.tal`` files hold textual TAL_FT assembly; ``.mwl`` files hold MWL
source for the compiler.

``run``, ``trace``, ``time`` and ``campaign`` accept ``--backend``
(default ``compiled``); choices derive from the ``repro.exec.BACKENDS``
registry.  ``run``/``trace``/``time`` offer ``{step,compiled}``;
``campaign`` additionally offers ``vector``, the batch-vectorized lane
engine for SEU sweeps.  Every backend is observationally identical to the
``step()`` interpreter; see ``docs/EXECUTION.md``.

``check``, ``run``, ``time``, ``campaign`` and ``chaos`` accept the
observability flags (see ``docs/OBSERVABILITY.md``):

* ``--metrics PATH`` -- write the unified metrics snapshot on exit
  (JSON at ``PATH`` plus a Prometheus text exposition at ``PATH.prom``);
* ``--progress`` -- live heartbeats/phase timings on stderr;
* ``--events PATH`` -- stream structured JSONL events as they happen.

All three are observational: reports, traces and exit codes are
bit-identical with or without them.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.asm import format_program, parse_program
from repro.compiler import compile_source
from repro.core import Machine, Outcome, RegZap
from repro.core.errors import ReproError
from repro.injection import CampaignConfig, ResilienceConfig, run_campaign
from repro.simulator import DEFAULT_CONFIG, RELAXED_CONFIG, simulate
from repro.types import TypeCheckError


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _load_tal(path: str):
    return parse_program(_read(path))


def _parse_fault(spec: str):
    """``r1=42@6`` -> (RegZap('r1', 42), step 6)."""
    try:
        location, at_step = spec.rsplit("@", 1)
        register, value = location.split("=", 1)
        return RegZap(register.strip(), int(value)), int(at_step)
    except ValueError:
        raise SystemExit(
            f"bad --fault spec {spec!r}; expected REG=VALUE@STEP"
        ) from None


def cmd_check(args: argparse.Namespace) -> int:
    program = _load_tal(args.file)
    try:
        checked = program.check(jobs=args.jobs)
    except TypeCheckError as error:
        print(f"type error: {error}")
        return 1
    print(f"OK: {program.size} instructions, {len(checked.labels)} blocks, "
          f"{len(program.data_psi)} data words -- provably fault tolerant")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    program = _load_tal(args.file)
    machine = Machine(program.boot(), backend=args.backend)
    if args.fault:
        fault, at_step = _parse_fault(args.fault)
        trace = machine.run(max_steps=args.max_steps, fault=fault,
                            fault_at_step=at_step)
    else:
        trace = machine.run(max_steps=args.max_steps)
    print(f"outcome: {trace.outcome.value} after {trace.steps} steps")
    for address, value in trace.outputs:
        print(f"  output: M[{address}] <- {value}")
    return 0 if trace.outcome in (Outcome.HALTED, Outcome.FAULT_DETECTED) else 1


def cmd_compile(args: argparse.Namespace) -> int:
    compiled = compile_source(_read(args.file), mode=args.mode)
    program = compiled.program
    print(f"{args.mode} build: {program.size} instructions, "
          f"{len(compiled.block_order)} blocks")
    if args.mode == "ft":
        program.check()
        print("type check: OK")
    if args.listing:
        print(format_program(program, preconditions=args.preconditions))
    if args.emit_tal:
        from repro.asm import emit_tal

        with open(args.emit_tal, "w") as handle:
            handle.write(emit_tal(program))
        print(f"wrote {args.emit_tal} (re-parseable, typed assembly)")
    return 0


def cmd_time(args: argparse.Namespace) -> int:
    from repro.observe import phase_timer

    source = _read(args.file)
    with phase_timer("compile", mode="baseline"):
        baseline = compile_source(source, mode="baseline")
    with phase_timer("compile", mode="ft"):
        protected = compile_source(source, mode="ft")
    with phase_timer("simulate", config="baseline"):
        base = simulate(baseline, backend=args.backend).cycles
    with phase_timer("simulate", config="ft"):
        ft = simulate(protected, DEFAULT_CONFIG,
                      backend=args.backend).cycles
    with phase_timer("simulate", config="relaxed"):
        relaxed = simulate(protected, RELAXED_CONFIG,
                           backend=args.backend).cycles
    print(f"baseline            {base:8d} cycles")
    print(f"TAL-FT              {ft:8d} cycles  ({ft / base:.3f}x)")
    print(f"TAL-FT w/o ordering {relaxed:8d} cycles  ({relaxed / base:.3f}x)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.faults import apply_fault
    from repro.core.tracing import format_trace, trace_execution

    program = _load_tal(args.file)
    state = program.boot()
    if args.fault:
        fault, at_step = _parse_fault(args.fault)
        # Trace up to the injection point, inject, continue.
        events = trace_execution(state, max_steps=at_step,
                                 backend=args.backend)
        print(format_trace(events))
        apply_fault(state, fault)
        print(f"    *** FAULT INJECTED: {fault.describe()} ***")
        tail = trace_execution(state, max_steps=args.steps - at_step,
                               backend=args.backend)
        for event in tail:
            print(event.format())
    else:
        print(format_trace(trace_execution(state, max_steps=args.steps,
                                           backend=args.backend)))
    print(f"status: {state.status.value}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    if args.resume and not args.journal:
        print("error: --resume requires --journal PATH", file=sys.stderr)
        return 2
    if args.workers and args.shards is None:
        print("error: --workers requires --shards N (the worker fleet "
              "executes a sharded campaign)", file=sys.stderr)
        return 2
    workers = None
    if args.workers:
        from repro.service.protocol import parse_address

        try:
            workers = [parse_address(spec)
                       for spec in args.workers.split(",") if spec.strip()]
        except ValueError as error:
            print(f"error: --workers {error}", file=sys.stderr)
            return 2
        if not workers:
            print("error: --workers must list at least one HOST:PORT "
                  "address", file=sys.stderr)
            return 2
    authkey = None
    if getattr(args, "authkey_file", None) and not workers:
        print("error: --authkey-file only applies with --workers (local "
              "fleets generate their own per-campaign key)",
              file=sys.stderr)
        return 2
    if workers:
        from repro.service.protocol import load_authkey

        try:
            authkey = load_authkey(args.authkey_file)
        except (OSError, ValueError) as error:
            print(f"error: --authkey-file {error}", file=sys.stderr)
            return 2
    compiled = compile_source(_read(args.file), mode="ft")
    compiled.program.check()
    config = CampaignConfig(
        max_injection_steps=args.samples,
        max_values_per_site=3,
        max_sites_per_step=10,
        seed=args.seed,
        step_stride=args.stride,
        checkpoint_interval=args.checkpoint_interval,
        jobs=args.jobs,
        prune=not args.no_prune,
        prune_audit=args.prune_audit,
    )
    resilience = None
    if args.chunk_timeout is not None or args.max_retries is not None:
        kwargs = {}
        if args.chunk_timeout is not None:
            kwargs["chunk_timeout"] = args.chunk_timeout
        if args.max_retries is not None:
            kwargs["max_retries"] = args.max_retries
        resilience = ResilienceConfig(**kwargs)
    if args.shards is not None:
        from repro.service import run_campaign_sharded

        report = run_campaign_sharded(
            compiled.program, config, shards=args.shards, workers=workers,
            backend=args.backend, journal_path=args.journal,
            resume=args.resume, resilience=resilience,
            progress=getattr(args, "progress", False), authkey=authkey)
    else:
        report = run_campaign(compiled.program, config, backend=args.backend,
                              journal_path=args.journal, resume=args.resume,
                              resilience=resilience,
                              progress=getattr(args, "progress", False))
    print(report.summary())
    if report.resilience is not None \
            and any(report.resilience.as_dict().values()):
        # Only when supervision/journaling actually did something --
        # keeping clean --jobs N output identical to --jobs 1.
        print(report.resilience.summary())
    if report.violations:
        for record in report.violations[:10]:
            print(f"  VIOLATION: step {record.step}, "
                  f"{record.fault.describe()} -> {record.result.value}")
        return 1
    return 0


def _chaos_programs(target: str):
    """Resolve a chaos target: a kernel name, ``all``, or a ``.mwl`` path."""
    from repro.workloads import ALL_KERNELS, KERNELS, compile_kernel

    if target == "all":
        names = list(ALL_KERNELS)
    elif target in KERNELS:
        names = [target]
    else:
        compiled = compile_source(_read(target), mode="ft")
        return [(target, compiled.program)]
    return [(name, compile_kernel(name, "ft").program) for name in names]


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.injection.chaos import SCENARIOS, run_scenarios

    if args.scenarios == "all":
        names = sorted(SCENARIOS)
    else:
        names = [name.strip() for name in args.scenarios.split(",")
                 if name.strip()]
        unknown = [name for name in names if name not in SCENARIOS]
        if unknown:
            raise SystemExit(
                f"unknown chaos scenario(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(SCENARIOS))}")
    config = CampaignConfig(
        max_injection_steps=args.samples,
        max_values_per_site=2,
        max_sites_per_step=6,
        seed=args.seed,
        keep_records=True,
        # The longest kernel (gzip) runs ~312k reference steps.
        max_steps=1_000_000,
    )
    from repro.workloads import KERNELS

    failures = 0
    for label, program in _chaos_programs(args.target):
        kernel = label if label in KERNELS else None
        run_names = names
        if kernel is None:
            # Service scenarios submit jobs by kernel name; for .mwl
            # targets they cannot run.  Skip them quietly when the user
            # asked for "all", loudly when they asked by name.
            service_only = [name for name in run_names
                            if SCENARIOS[name].needs_kernel]
            if service_only and args.scenarios == "all":
                run_names = [name for name in run_names
                             if not SCENARIOS[name].needs_kernel]
                print(f"{label:>10s}  skipping "
                      f"{', '.join(service_only)} (service scenarios "
                      "need a kernel-name target)")
        program.check()
        for result in run_scenarios(program, run_names, config,
                                    jobs=args.jobs, kernel=kernel):
            verdict = "PASS" if result.passed else "FAIL"
            print(f"{label:>10s}  {result.scenario:<18s} {verdict}  "
                  f"{result.detail}")
            failures += 0 if result.passed else 1
    if failures:
        print(f"chaos: {failures} scenario run(s) FAILED -- the campaign "
              "runtime lost report parity under infrastructure faults")
        return 1
    print("chaos: all scenario runs passed (reports bit-identical under "
          "infrastructure faults)")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import FuzzConfig, run_fuzz

    config = FuzzConfig(
        programs=args.programs,
        seed=args.seed,
        profile=args.profile,
        kind=args.kind,
        tal_fraction=args.tal_fraction,
        corpus_dir=args.corpus,
        minimize=not args.no_minimize,
        max_failures=args.max_failures,
        progress=args.progress,
    )
    report = run_fuzz(config)
    stage_parts = ", ".join(
        f"{stage}: {count}"
        for stage, count in sorted(report.by_stage.items()))
    print(f"fuzz: seed {config.seed}, {report.programs} program(s) "
          f"({stage_parts}), {report.injections} faulty run(s) classified, "
          f"{report.elapsed:.1f}s")
    for failure in report.failures:
        print(f"  FAILURE #{failure.index} {failure.program.name} "
              f"[{failure.stage}] {failure.detail}")
        if failure.minimized_source is not None:
            print("  minimized reproducer "
                  f"({failure.minimize_checks} oracle calls):")
            for line in failure.minimized_source.rstrip("\n").splitlines():
                print(f"    {line}")
    if report.stopped_early:
        print(f"fuzz: stopped early after {report.failed} failure(s) "
              f"(--max-failures {config.max_failures})")
    if report.failures:
        if args.corpus:
            print(f"fuzz: failures persisted under {args.corpus}")
        return 1
    return 0


def cmd_shard_worker(args: argparse.Namespace) -> int:
    from repro.service import worker
    from repro.service.protocol import load_authkey, parse_address

    try:
        authkey = load_authkey(args.authkey_file)
    except (OSError, ValueError) as error:
        print(f"error: --authkey-file {error}", file=sys.stderr)
        return 2
    if args.connect:
        try:
            address = parse_address(args.connect)
        except ValueError as error:
            print(f"error: --connect {error}", file=sys.stderr)
            return 2
        worker.run_connect(address, authkey=authkey)
    else:
        try:
            host, port = parse_address(args.listen, allow_zero=True)
        except ValueError as error:
            print(f"error: --listen {error}", file=sys.stderr)
            return 2
        try:
            worker.run_listen(host, port, once=args.once, authkey=authkey)
        except ValueError as error:
            print(f"error: --listen {error}", file=sys.stderr)
            return 2
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve_http
    from repro.service.scheduler import parse_tenant_weights

    try:
        weights = parse_tenant_weights(args.tenant_weight)
    except ValueError as error:
        print(f"error: --tenant-weight {error}", file=sys.stderr)
        return 2
    serve_http(args.host, args.serve_port,
               state_dir=args.state_dir,
               max_concurrent_jobs=args.max_concurrent_jobs,
               queue_limit=args.queue_limit,
               job_retention=args.job_retention,
               tenant_weights=weights or None)
    return 0


def cmd_journal_merge(args: argparse.Namespace) -> int:
    from repro.injection.shard import merge_journal_files

    steps, corrupt = merge_journal_files(args.output, args.inputs)
    line = (f"merged {len(args.inputs)} journal(s) -> {args.output}: "
            f"{steps} step(s)")
    if corrupt:
        line += f", {corrupt} corrupt line(s) skipped"
    print(line)
    return 0


def _int_at_least(minimum: int, what: str):
    """An argparse ``type`` that rejects out-of-range integers with a
    friendly error (argparse exits with code 2) instead of letting a bad
    knob traceback deep inside the campaign engine."""
    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{what} must be an integer (got {text!r})") from None
        if value < minimum:
            raise argparse.ArgumentTypeError(
                f"{what} must be at least {minimum} (got {value})")
        return value
    return parse


def _positive_float(what: str):
    def parse(text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{what} must be a number (got {text!r})") from None
        if value <= 0:
            raise argparse.ArgumentTypeError(
                f"{what} must be positive (got {value})")
        return value
    return parse


def _fraction(what: str):
    def parse(text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{what} must be a number (got {text!r})") from None
        if not 0.0 <= value <= 1.0:
            raise argparse.ArgumentTypeError(
                f"{what} must be between 0.0 and 1.0 (got {value})")
        return value
    return parse


def _fuzz_profiles() -> tuple:
    from repro.fuzz.generator import PROFILES

    return tuple(sorted(PROFILES))


def _port_number(what: str):
    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{what} must be an integer (got {text!r})") from None
        if not 0 <= value <= 65535:
            raise argparse.ArgumentTypeError(
                f"{what} must be a port number between 0 and 65535 "
                f"(got {value}; 0 binds an ephemeral port)")
        return value
    return parse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="talft",
        description="TAL_FT: fault-tolerant typed assembly language tools",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_backend(subparser: argparse.ArgumentParser,
                    campaign: bool = False) -> None:
        # Choices and help derive from the one backend registry; commands
        # that drive a single machine only offer the machine-capable
        # subset, campaigns offer everything (including "vector").
        from repro.exec import BACKENDS, MACHINE_BACKENDS

        choices = tuple(BACKENDS) if campaign else MACHINE_BACKENDS
        described = "; ".join(
            f"'{name}': {BACKENDS[name]}" for name in choices)
        subparser.add_argument(
            "--backend", choices=choices, default="compiled",
            help=f"execution backend -- {described}. All backends are "
                 "observationally identical and fall back automatically "
                 "when one cannot run a program")

    def add_observability(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--metrics", metavar="PATH",
            help="write the unified metrics snapshot on exit: JSON at PATH "
                 "plus a Prometheus text exposition at PATH.prom "
                 "(observational only -- results are unchanged)")
        subparser.add_argument(
            "--progress", action="store_true",
            help="print live progress heartbeats (rate, ETA) and phase "
                 "timings to stderr")
        subparser.add_argument(
            "--events", metavar="PATH",
            help="stream structured JSONL events (phases, compilations, "
                 "supervision, journal commits) to PATH as they happen")

    check = commands.add_parser("check", help="assemble and type-check a .tal file")
    check.add_argument("file")
    check.add_argument("--jobs", type=int, default=None,
                       help="check basic blocks across N worker processes "
                            "(0 = one per CPU; results and diagnostics are "
                            "identical to the serial checker)")
    add_observability(check)
    check.set_defaults(handler=cmd_check)

    run = commands.add_parser("run", help="execute a .tal file")
    run.add_argument("file")
    run.add_argument("--fault", help="inject REG=VALUE@STEP")
    run.add_argument("--max-steps", type=int, default=1_000_000)
    add_backend(run)
    add_observability(run)
    run.set_defaults(handler=cmd_run)

    compile_cmd = commands.add_parser("compile", help="compile a .mwl file")
    compile_cmd.add_argument("file")
    compile_cmd.add_argument("--mode", choices=("ft", "baseline", "swift"),
                             default="ft")
    compile_cmd.add_argument("--listing", action="store_true",
                             help="print the generated code")
    compile_cmd.add_argument("--preconditions", action="store_true",
                             help="include block preconditions in the listing")
    compile_cmd.add_argument("--emit-tal", metavar="FILE",
                             help="write the build as re-parseable .tal")
    compile_cmd.set_defaults(handler=cmd_compile)

    time_cmd = commands.add_parser(
        "time", help="Figure 10-style timing of a .mwl file"
    )
    time_cmd.add_argument("file")
    add_backend(time_cmd)
    add_observability(time_cmd)
    time_cmd.set_defaults(handler=cmd_time)

    trace_cmd = commands.add_parser(
        "trace", help="step-by-step execution trace of a .tal file"
    )
    trace_cmd.add_argument("file")
    trace_cmd.add_argument("--steps", type=int, default=100)
    trace_cmd.add_argument("--fault", help="inject REG=VALUE@STEP")
    add_backend(trace_cmd)
    trace_cmd.set_defaults(handler=cmd_trace)

    campaign = commands.add_parser(
        "campaign", help="fault-injection campaign over a .mwl file"
    )
    campaign.add_argument("file")
    campaign.add_argument("--samples",
                          type=_int_at_least(1, "--samples"), default=30,
                          help="number of injection steps sampled (>= 1)")
    campaign.add_argument("--seed", type=int, default=1)
    campaign.add_argument("--jobs",
                          type=_int_at_least(1, "--jobs"), default=1,
                          help="worker processes (>1 fans the campaign out "
                               "across a supervised process pool; results "
                               "are identical to --jobs 1 for the same "
                               "seed)")
    campaign.add_argument("--checkpoint-interval",
                          type=_int_at_least(1, "--checkpoint-interval"),
                          default=32,
                          help="reference-run steps between state "
                               "checkpoints; injection points in between "
                               "are rebuilt by deterministic replay")
    campaign.add_argument("--stride",
                          type=_int_at_least(1, "--stride"), default=1,
                          help="inject at every k-th dynamic step before "
                               "sampling (1 = every step)")
    campaign.add_argument("--journal", metavar="PATH",
                          help="append every completed injection step to a "
                               "durable (fsync'd, checksummed) JSONL "
                               "journal at PATH")
    campaign.add_argument("--resume", action="store_true",
                          help="skip steps already recorded in --journal "
                               "(rejected if the journal belongs to a "
                               "different program or config); the final "
                               "report is bit-identical to an "
                               "uninterrupted run")
    campaign.add_argument("--chunk-timeout", metavar="SECONDS",
                          type=_positive_float("--chunk-timeout"),
                          help="deadline per worker chunk; a hung chunk "
                               "gets its pool recycled and is re-executed")
    campaign.add_argument("--max-retries",
                          type=_int_at_least(0, "--max-retries"),
                          help="chunk re-executions before degrading that "
                               "chunk to in-process serial execution "
                               "(default 2)")
    campaign.add_argument("--no-prune", action="store_true",
                          help="disable masked-fault equivalence pruning "
                               "and execute every fault variant; the "
                               "report is bit-identical either way, "
                               "pruning only changes speed")
    campaign.add_argument("--prune-audit", metavar="P",
                          type=_fraction("--prune-audit"), default=0.0,
                          help="re-execute a random fraction P (0..1) of "
                               "pruned variants and hard-fail if any "
                               "replicated outcome differs from the real "
                               "run (a self-check for the pruning "
                               "analysis; 0 disables)")
    campaign.add_argument("--shards",
                          type=_int_at_least(1, "--shards"), default=None,
                          help="split the campaign into N journal-backed "
                               "shards executed by a worker fleet (local "
                               "forked processes unless --workers is "
                               "given); the merged report is bit-identical "
                               "to a single-process run")
    campaign.add_argument("--workers", metavar="HOST:PORT,...",
                          help="comma-separated addresses of 'talft "
                               "shard-worker --listen' processes to run "
                               "the shards on (requires --shards)")
    campaign.add_argument("--authkey-file", metavar="PATH",
                          help="file holding the shared fleet auth key "
                               "the remote workers were started with "
                               "(default: the TALFT_SHARD_AUTHKEY "
                               "environment variable; requires --workers)")
    add_backend(campaign, campaign=True)
    add_observability(campaign)
    campaign.set_defaults(handler=cmd_campaign)

    fuzz = commands.add_parser(
        "fuzz",
        help="generate random well-typed programs and differentially "
             "verify every backend against the reference semantics",
    )
    fuzz.add_argument("--programs",
                      type=_int_at_least(1, "--programs"), default=100,
                      help="programs to generate and verify (default 100)")
    fuzz.add_argument("--seed", type=int, default=1,
                      help="run seed; program N of a run derives from "
                           "(seed, N), so any finding replays exactly")
    fuzz.add_argument("--profile", choices=_fuzz_profiles(), default=None,
                      help="force one generator profile (default: rotate "
                           "through all of them pseudo-randomly)")
    fuzz.add_argument("--kind", choices=("mwl", "tal"), default=None,
                      help="force source-language (mwl) or direct typed "
                           "assembly (tal) generation (default: mix)")
    fuzz.add_argument("--tal-fraction",
                      type=_fraction("--tal-fraction"), default=0.25,
                      help="fraction of programs generated as direct "
                           "TAL_FT when --kind is not forced "
                           "(default 0.25)")
    fuzz.add_argument("--corpus", metavar="DIR", default=None,
                      help="persist failures and minimized reproducers "
                           "(plus a run manifest) under DIR")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="skip delta-debugging failures down to minimal "
                           "reproducers")
    fuzz.add_argument("--max-failures",
                      type=_int_at_least(0, "--max-failures"), default=10,
                      help="stop after this many failing programs "
                           "(0 = keep going; default 10)")
    add_observability(fuzz)
    fuzz.set_defaults(handler=cmd_fuzz)

    shard_worker = commands.add_parser(
        "shard-worker",
        help="run one shard-campaign worker process (see 'campaign "
             "--shards')",
    )
    fleet_mode = shard_worker.add_mutually_exclusive_group(required=True)
    fleet_mode.add_argument("--connect", metavar="HOST:PORT",
                            help="dial a waiting coordinator, serve it, "
                                 "exit")
    fleet_mode.add_argument("--listen", metavar="[HOST:]PORT",
                            help="accept coordinators on this address "
                                 "(port 0 binds an ephemeral port and "
                                 "prints it)")
    shard_worker.add_argument("--once", action="store_true",
                              help="with --listen: exit after serving the "
                                   "first coordinator connection")
    shard_worker.add_argument("--authkey-file", metavar="PATH",
                              help="file holding the shared fleet auth key "
                                   "(default: the TALFT_SHARD_AUTHKEY "
                                   "environment variable); required to "
                                   "--listen on a non-loopback address, "
                                   "since jobs carry pickled programs")
    shard_worker.set_defaults(handler=cmd_shard_worker)

    serve = commands.add_parser(
        "serve",
        help="run the campaign HTTP service (submit jobs, poll progress, "
             "scrape metrics)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1)")
    serve.add_argument("--serve-port",
                       type=_port_number("--serve-port"), default=8321,
                       help="TCP port for the HTTP endpoint (default 8321; "
                            "0 binds an ephemeral port)")
    serve.add_argument("--state-dir", metavar="DIR", default=None,
                       help="durable state directory: job journal + "
                            "per-job campaign journals; restarting with "
                            "the same DIR restores settled jobs, "
                            "re-enqueues queued ones and resumes "
                            "interrupted ones (default: in-memory only)")
    serve.add_argument("--max-concurrent-jobs",
                       type=_int_at_least(1, "--max-concurrent-jobs"),
                       default=1, metavar="N",
                       help="campaign jobs run in parallel (default 1)")
    serve.add_argument("--queue-limit",
                       type=_int_at_least(1, "--queue-limit"), default=64,
                       metavar="N",
                       help="queued jobs before submissions get 429 + "
                            "Retry-After (default 64)")
    serve.add_argument("--job-retention",
                       type=_int_at_least(1, "--job-retention"),
                       default=256, metavar="N",
                       help="settled jobs kept in the live registry; the "
                            "job journal keeps the full history "
                            "(default 256)")
    serve.add_argument("--tenant-weight", action="append", default=[],
                       metavar="NAME=WEIGHT",
                       help="fair-share weight for a tenant (repeatable; "
                            "unlisted tenants weigh 1.0)")
    serve.set_defaults(handler=cmd_serve)

    journal = commands.add_parser(
        "journal", help="offline campaign-journal tooling")
    journal_actions = journal.add_subparsers(dest="journal_command",
                                             required=True)
    journal_merge = journal_actions.add_parser(
        "merge",
        help="union shard journals into one combined journal that a plain "
             "'campaign --journal X --resume' can replay",
    )
    journal_merge.add_argument("-o", "--output", required=True,
                               help="combined journal to write")
    journal_merge.add_argument("inputs", nargs="+",
                               help="shard journal files to merge (must "
                                    "share one campaign identity header)")
    journal_merge.set_defaults(handler=cmd_journal_merge)

    chaos = commands.add_parser(
        "chaos",
        help="fault-inject the campaign infrastructure itself and assert "
             "report parity",
    )
    chaos.add_argument("target",
                       help="a workload kernel name (e.g. vpr), 'all', or "
                            "a .mwl file path")
    chaos.add_argument("--scenarios", default="all",
                       help="comma-separated scenario names (kill-worker, "
                            "delay-chunk, truncate-journal, "
                            "corrupt-journal, kill-shard-worker, "
                            "kill-remote-shard-worker, kill-service, "
                            "recovery) or 'all'")
    chaos.add_argument("--jobs", type=_int_at_least(2, "--jobs"), default=2,
                       help="pool size for the worker-fault scenarios")
    chaos.add_argument("--samples",
                       type=_int_at_least(1, "--samples"), default=12,
                       help="injection steps sampled per campaign")
    chaos.add_argument("--seed", type=int, default=20260806)
    add_observability(chaos)
    chaos.set_defaults(handler=cmd_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro import observe

    # Observability wiring (subcommands without the flags parse to the
    # getattr defaults).  Everything here is observational; the handler's
    # stdout and exit code are identical with or without it.
    metrics_path = getattr(args, "metrics", None)
    if getattr(args, "progress", False):
        observe.announce_phases(True)
    if getattr(args, "events", None):
        observe.configure_events(args.events)
    try:
        return args.handler(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if metrics_path is not None:
            json_path, prom_path = observe.write_metrics(
                metrics_path, extra={"command": args.command})
            print(f"[talft] metrics written to {json_path} and {prom_path}",
                  file=sys.stderr)
        observe.announce_phases(False)
        observe.close_events()


if __name__ == "__main__":
    raise SystemExit(main())
