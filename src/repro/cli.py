"""Command-line interface: assemble, check, run, compile, and time programs.

Installed as the ``talft`` console script (also runnable as
``python -m repro.cli``)::

    talft check  program.tal              # assemble + type-check
    talft run    program.tal [--fault r1=42@6] [--max-steps N]
    talft compile program.mwl [--mode ft|baseline|swift] [--emit-tal F]
    talft trace  program.tal [--steps N] [--fault r1=42@6]
    talft time   program.mwl              # Figure 10-style ratios
    talft campaign program.mwl [--samples N]

``.tal`` files hold textual TAL_FT assembly; ``.mwl`` files hold MWL
source for the compiler.

``run``, ``trace``, ``time`` and ``campaign`` accept
``--backend {step,compiled}`` (default ``compiled``): the closure-compiled
execution backend is observationally identical to the ``step()``
interpreter and several times faster; see ``docs/EXECUTION.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.asm import format_program, parse_program
from repro.compiler import compile_source
from repro.core import Machine, Outcome, RegZap
from repro.core.errors import ReproError
from repro.injection import CampaignConfig, run_campaign
from repro.simulator import DEFAULT_CONFIG, RELAXED_CONFIG, simulate
from repro.types import TypeCheckError


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _load_tal(path: str):
    return parse_program(_read(path))


def _parse_fault(spec: str):
    """``r1=42@6`` -> (RegZap('r1', 42), step 6)."""
    try:
        location, at_step = spec.rsplit("@", 1)
        register, value = location.split("=", 1)
        return RegZap(register.strip(), int(value)), int(at_step)
    except ValueError:
        raise SystemExit(
            f"bad --fault spec {spec!r}; expected REG=VALUE@STEP"
        ) from None


def cmd_check(args: argparse.Namespace) -> int:
    program = _load_tal(args.file)
    try:
        checked = program.check(jobs=args.jobs)
    except TypeCheckError as error:
        print(f"type error: {error}")
        return 1
    print(f"OK: {program.size} instructions, {len(checked.labels)} blocks, "
          f"{len(program.data_psi)} data words -- provably fault tolerant")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    program = _load_tal(args.file)
    machine = Machine(program.boot(), backend=args.backend)
    if args.fault:
        fault, at_step = _parse_fault(args.fault)
        trace = machine.run(max_steps=args.max_steps, fault=fault,
                            fault_at_step=at_step)
    else:
        trace = machine.run(max_steps=args.max_steps)
    print(f"outcome: {trace.outcome.value} after {trace.steps} steps")
    for address, value in trace.outputs:
        print(f"  output: M[{address}] <- {value}")
    return 0 if trace.outcome in (Outcome.HALTED, Outcome.FAULT_DETECTED) else 1


def cmd_compile(args: argparse.Namespace) -> int:
    compiled = compile_source(_read(args.file), mode=args.mode)
    program = compiled.program
    print(f"{args.mode} build: {program.size} instructions, "
          f"{len(compiled.block_order)} blocks")
    if args.mode == "ft":
        program.check()
        print("type check: OK")
    if args.listing:
        print(format_program(program, preconditions=args.preconditions))
    if args.emit_tal:
        from repro.asm import emit_tal

        with open(args.emit_tal, "w") as handle:
            handle.write(emit_tal(program))
        print(f"wrote {args.emit_tal} (re-parseable, typed assembly)")
    return 0


def cmd_time(args: argparse.Namespace) -> int:
    source = _read(args.file)
    baseline = compile_source(source, mode="baseline")
    protected = compile_source(source, mode="ft")
    base = simulate(baseline, backend=args.backend).cycles
    ft = simulate(protected, DEFAULT_CONFIG, backend=args.backend).cycles
    relaxed = simulate(protected, RELAXED_CONFIG, backend=args.backend).cycles
    print(f"baseline            {base:8d} cycles")
    print(f"TAL-FT              {ft:8d} cycles  ({ft / base:.3f}x)")
    print(f"TAL-FT w/o ordering {relaxed:8d} cycles  ({relaxed / base:.3f}x)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.faults import apply_fault
    from repro.core.tracing import format_trace, trace_execution

    program = _load_tal(args.file)
    state = program.boot()
    if args.fault:
        fault, at_step = _parse_fault(args.fault)
        # Trace up to the injection point, inject, continue.
        events = trace_execution(state, max_steps=at_step,
                                 backend=args.backend)
        print(format_trace(events))
        apply_fault(state, fault)
        print(f"    *** FAULT INJECTED: {fault.describe()} ***")
        tail = trace_execution(state, max_steps=args.steps - at_step,
                               backend=args.backend)
        for event in tail:
            print(event.format())
    else:
        print(format_trace(trace_execution(state, max_steps=args.steps,
                                           backend=args.backend)))
    print(f"status: {state.status.value}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    compiled = compile_source(_read(args.file), mode="ft")
    compiled.program.check()
    config = CampaignConfig(
        max_injection_steps=args.samples,
        max_values_per_site=3,
        max_sites_per_step=10,
        seed=args.seed,
        step_stride=args.stride,
        checkpoint_interval=args.checkpoint_interval,
        jobs=args.jobs,
    )
    report = run_campaign(compiled.program, config, backend=args.backend)
    print(report.summary())
    if report.violations:
        for record in report.violations[:10]:
            print(f"  VIOLATION: step {record.step}, "
                  f"{record.fault.describe()} -> {record.result.value}")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="talft",
        description="TAL_FT: fault-tolerant typed assembly language tools",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_backend(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--backend", choices=("step", "compiled"), default="compiled",
            help="execution backend: the step() interpreter or the "
                 "closure-compiled backend (default; observationally "
                 "identical, falls back to the interpreter automatically)")

    check = commands.add_parser("check", help="assemble and type-check a .tal file")
    check.add_argument("file")
    check.add_argument("--jobs", type=int, default=None,
                       help="check basic blocks across N worker processes "
                            "(0 = one per CPU; results and diagnostics are "
                            "identical to the serial checker)")
    check.set_defaults(handler=cmd_check)

    run = commands.add_parser("run", help="execute a .tal file")
    run.add_argument("file")
    run.add_argument("--fault", help="inject REG=VALUE@STEP")
    run.add_argument("--max-steps", type=int, default=1_000_000)
    add_backend(run)
    run.set_defaults(handler=cmd_run)

    compile_cmd = commands.add_parser("compile", help="compile a .mwl file")
    compile_cmd.add_argument("file")
    compile_cmd.add_argument("--mode", choices=("ft", "baseline", "swift"),
                             default="ft")
    compile_cmd.add_argument("--listing", action="store_true",
                             help="print the generated code")
    compile_cmd.add_argument("--preconditions", action="store_true",
                             help="include block preconditions in the listing")
    compile_cmd.add_argument("--emit-tal", metavar="FILE",
                             help="write the build as re-parseable .tal")
    compile_cmd.set_defaults(handler=cmd_compile)

    time_cmd = commands.add_parser(
        "time", help="Figure 10-style timing of a .mwl file"
    )
    time_cmd.add_argument("file")
    add_backend(time_cmd)
    time_cmd.set_defaults(handler=cmd_time)

    trace_cmd = commands.add_parser(
        "trace", help="step-by-step execution trace of a .tal file"
    )
    trace_cmd.add_argument("file")
    trace_cmd.add_argument("--steps", type=int, default=100)
    trace_cmd.add_argument("--fault", help="inject REG=VALUE@STEP")
    add_backend(trace_cmd)
    trace_cmd.set_defaults(handler=cmd_trace)

    campaign = commands.add_parser(
        "campaign", help="fault-injection campaign over a .mwl file"
    )
    campaign.add_argument("file")
    campaign.add_argument("--samples", type=int, default=30,
                          help="number of injection steps sampled")
    campaign.add_argument("--seed", type=int, default=1)
    campaign.add_argument("--jobs", type=int, default=1,
                          help="worker processes (>1 fans the campaign out "
                               "across a process pool; results are "
                               "identical to --jobs 1 for the same seed)")
    campaign.add_argument("--checkpoint-interval", type=int, default=32,
                          help="reference-run steps between state "
                               "checkpoints; injection points in between "
                               "are rebuilt by deterministic replay")
    campaign.add_argument("--stride", type=int, default=1,
                          help="inject at every k-th dynamic step before "
                               "sampling (1 = every step)")
    add_backend(campaign)
    campaign.set_defaults(handler=cmd_campaign)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
