"""Colors and colored values.

Every value manipulated by the TAL_FT machine is tagged with the *color* of
the redundant computation it belongs to: green (``G``, the leading copy) or
blue (``B``, the trailing copy).  Per the paper (Section 2), color tags on
*values* are fictional -- they never influence run-time behavior -- but they
are preserved by faults and used by the metatheory (similarity relations) and
the type system.  Color tags on *opcodes* (``stG`` vs ``stB``, ...) do affect
evaluation.
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class Color(enum.Enum):
    """The two redundant computation streams."""

    GREEN = "G"
    BLUE = "B"

    def __str__(self) -> str:
        return self.value

    @property
    def other(self) -> "Color":
        """The opposite color (used by similarity and campaign code)."""
        return Color.BLUE if self is Color.GREEN else Color.GREEN


#: Convenient aliases mirroring the paper's ``G`` / ``B`` metavariables.
G = Color.GREEN
B = Color.BLUE


class ColoredValue(NamedTuple):
    """A machine word tagged with the color of the computation it belongs to.

    The paper writes this ``c n``.  Equality of :class:`ColoredValue` includes
    the color; use :attr:`value` when comparing run-time contents, which is
    what the hardware's checks do.
    """

    color: Color
    value: int

    def __str__(self) -> str:
        return f"{self.color}{self.value}"

    def with_value(self, value: int) -> "ColoredValue":
        """A copy holding ``value``; the color tag is preserved.

        This is exactly the shape of the ``reg-zap`` fault rule: faults may
        change the payload arbitrarily but never the (fictional) color.
        """
        return ColoredValue(self.color, value)


def green(value: int) -> ColoredValue:
    """The green colored value ``G value``."""
    return ColoredValue(Color.GREEN, value)


def blue(value: int) -> ColoredValue:
    """The blue colored value ``B value``."""
    return ColoredValue(Color.BLUE, value)
