"""A small bounded LRU cache for the memo tables of the statics layer.

The normalizer and kind checker memoize on hash-consed expression identity
(see :mod:`repro.statics.expressions`); this cache gives those tables a
bounded footprint with least-recently-used eviction, replacing the old
"clear the whole dict when full" policy whose periodic cold-cache cliffs
showed up as latency spikes mid-check.

Built on :class:`collections.OrderedDict`, whose ``move_to_end`` and
``popitem`` are C-implemented; ``get``/``put`` stay O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A bounded mapping that evicts the least-recently-used entry.

    ``None`` is not a valid cached value (``get`` uses it as the miss
    sentinel), which every memo table here satisfies.
    """

    __slots__ = ("_data", "maxsize", "hits", "misses", "_track_at")

    def __init__(self, maxsize: int):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        #: Recency tracking is lazy: while the cache is under half capacity
        #: no entry can be evicted soon, so ``get`` skips the
        #: ``move_to_end`` bookkeeping entirely (it is a measurable cost on
        #: the checker's memo tables, which rarely approach capacity).
        self._track_at = maxsize // 2

    def get(self, key: K) -> Optional[V]:
        data = self._data
        value = data.get(key)
        if value is None:
            self.misses += 1
            return None
        if len(data) >= self._track_at:
            data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
            data[key] = value
            return
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __repr__(self) -> str:
        return (f"<LRUCache {len(self._data)}/{self.maxsize} entries, "
                f"{self.hits} hits, {self.misses} misses>")
