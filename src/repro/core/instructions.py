"""Instruction syntax of the TAL_FT machine (Figure 1 of the paper).

The paper's instruction set is::

    i ::= op rd, rs, rt | op rd, rs, v | ld_c rd, rs | st_c rd, rs
        | mov rd, v | bz_c rz, rd | jmp_c rd

with ALU ops ``op ::= add | sub | mul`` and ``c`` ranging over colors.

Two documented extensions (see DESIGN.md section 5/7):

* **Extra ALU ops** (``slt``, ``and``, ``or``, ``xor``, ``sll``, ``sra``):
  the paper's op set is representative; the typing rules (``op2r-t``,
  ``op1r-t``) are generic in ``op``, and realistic workloads (the MediaBench
  stand-ins) need comparisons, masks and shifts.
* **An explicit ``halt`` instruction**: the paper's programs run forever (a
  stuck fetch is untypeable); benchmarks need to terminate.  ``halt`` is typed
  conservatively (the store queue must be empty) and is safe under faults
  because control can only reach it through the checked control-flow
  protocol.
* **Uncolored baseline instructions** (``st``, ``ld``, ``jmp``, ``bz``):
  these model the *unprotected* ISA used as the Figure 10 baseline.  They are
  executable and timeable but **rejected by the TAL_FT type checker**.

Instructions are immutable dataclasses; programs are tuples of instructions
living in code memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Union

from repro.core.colors import Color, ColoredValue

# ---------------------------------------------------------------------------
# ALU operations
# ---------------------------------------------------------------------------

_SHIFT_CLAMP = 63


def _sll(x: int, y: int) -> int:
    return x << y if 0 <= y <= _SHIFT_CLAMP else 0


def _sra(x: int, y: int) -> int:
    if y < 0:
        return 0
    return x >> min(y, _SHIFT_CLAMP)


#: Denotation of each ALU opcode.  All operate on unbounded Python integers,
#: mirroring the paper's idealized integer words.
ALU_OPS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda x, y: x + y,
    "sub": lambda x, y: x - y,
    "mul": lambda x, y: x * y,
    # Extensions (documented above):
    "slt": lambda x, y: 1 if x < y else 0,
    "seq": lambda x, y: 1 if x == y else 0,
    "sne": lambda x, y: 1 if x != y else 0,
    "and": lambda x, y: x & y,
    "or": lambda x, y: x | y,
    "xor": lambda x, y: x ^ y,
    "sll": _sll,
    "sra": _sra,
}

#: The ops present in the paper's Figure 1.
PAPER_ALU_OPS = ("add", "sub", "mul")


def alu_eval(op: str, x: int, y: int) -> int:
    """Evaluate ALU operation ``op`` on integer operands."""
    try:
        fn = ALU_OPS[op]
    except KeyError:
        raise ValueError(f"unknown ALU op {op!r}") from None
    return fn(x, y)


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Instruction:
    """Base class for all machine instructions."""

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        return repr(self)


@dataclass(frozen=True)
class ArithRRR(Instruction):
    """``op rd, rs, rt`` -- three-register ALU operation (rule ``op2r``)."""

    op: str
    rd: str
    rs: str
    rt: str

    def __str__(self) -> str:
        return f"{self.op} {self.rd}, {self.rs}, {self.rt}"


@dataclass(frozen=True)
class ArithRRI(Instruction):
    """``op rd, rs, c n`` -- ALU operation with colored immediate (``op1r``)."""

    op: str
    rd: str
    rs: str
    imm: ColoredValue

    def __str__(self) -> str:
        return f"{self.op} {self.rd}, {self.rs}, {self.imm}"


@dataclass(frozen=True)
class Mov(Instruction):
    """``mov rd, c n`` -- load a colored constant into a register."""

    rd: str
    imm: ColoredValue

    def __str__(self) -> str:
        return f"mov {self.rd}, {self.imm}"


@dataclass(frozen=True)
class Load(Instruction):
    """``ld_c rd, rs`` -- load from the address in ``rs``.

    The green load (``ldG``) first consults the store queue for a pending
    store to that address (rule ``ldG-queue``); the blue load goes straight
    to memory (``ldB-mem``).
    """

    color: Color
    rd: str
    rs: str

    def __str__(self) -> str:
        return f"ld{self.color} {self.rd}, {self.rs}"


@dataclass(frozen=True)
class Store(Instruction):
    """``st_c rd, rs`` -- store the value in ``rs`` to the address in ``rd``.

    ``stG`` pushes the (address, value) pair onto the front of the store
    queue; ``stB`` compares its own pair against the back of the queue and
    commits it to memory -- the *observable* event -- or signals a fault.
    """

    color: Color
    rd: str
    rs: str

    def __str__(self) -> str:
        return f"st{self.color} {self.rd}, {self.rs}"


@dataclass(frozen=True)
class Jmp(Instruction):
    """``jmp_c rd`` -- half of the two-phase unconditional jump.

    ``jmpG`` announces the target by moving ``rd`` into the destination
    register ``d`` (which must currently be 0); ``jmpB`` checks its ``rd``
    against ``d`` and, on agreement, transfers control.
    """

    color: Color
    rd: str

    def __str__(self) -> str:
        return f"jmp{self.color} {self.rd}"


@dataclass(frozen=True)
class Bz(Instruction):
    """``bz_c rz, rd`` -- half of the two-phase branch-if-zero.

    ``bzG`` conditionally announces the target into ``d``; ``bzB`` commits
    the transfer (or the fall-through, re-checking ``d`` = 0).
    """

    color: Color
    rz: str
    rd: str

    def __str__(self) -> str:
        return f"bz{self.color} {self.rz}, {self.rd}"


@dataclass(frozen=True)
class Halt(Instruction):
    """``halt`` -- stop the machine (extension; see module docstring)."""

    def __str__(self) -> str:
        return "halt"


# ---------------------------------------------------------------------------
# Unprotected baseline instructions (outside the typed fragment)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlainLoad(Instruction):
    """``ld rd, rs`` -- unprotected load, straight from memory."""

    rd: str
    rs: str

    def __str__(self) -> str:
        return f"ld {self.rd}, {self.rs}"


@dataclass(frozen=True)
class PlainStore(Instruction):
    """``st rd, rs`` -- unprotected store; commits (and is observable) at once."""

    rd: str
    rs: str

    def __str__(self) -> str:
        return f"st {self.rd}, {self.rs}"


@dataclass(frozen=True)
class PlainJmp(Instruction):
    """``jmp rd`` -- unprotected jump; sets both program counters."""

    rd: str

    def __str__(self) -> str:
        return f"jmp {self.rd}"


@dataclass(frozen=True)
class PlainBz(Instruction):
    """``bz rz, rd`` -- unprotected branch-if-zero."""

    rz: str
    rd: str

    def __str__(self) -> str:
        return f"bz {self.rz}, {self.rd}"


#: Instructions belonging to the unprotected baseline ISA.
PLAIN_INSTRUCTIONS = (PlainLoad, PlainStore, PlainJmp, PlainBz)


def is_plain(instruction: Instruction) -> bool:
    """True if ``instruction`` belongs to the unprotected baseline ISA."""
    return isinstance(instruction, PLAIN_INSTRUCTIONS)


#: Union type of everything the machine executes.
AnyInstruction = Union[
    ArithRRR, ArithRRI, Mov, Load, Store, Jmp, Bz, Halt,
    PlainLoad, PlainStore, PlainJmp, PlainBz,
]
