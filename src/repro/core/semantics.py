"""Small-step operational semantics of the TAL_FT machine.

This module implements every *non-faulty* transition rule of the paper
(Figures 2, 3, 4 and the failure rules of Appendix A.1); the fault
transitions (``reg-zap``, ``Q-zap``) live in :mod:`repro.core.faults`.

The central judgment is ``S1 -->_k^s S2``: a single step from ``S1`` to
``S2`` incurring ``k`` faults (0 here; 1 in the faults module) and emitting
the observable output ``s`` (a possibly-empty sequence of address-value
pairs written to the memory-mapped output device).  :func:`step` performs one
such transition *in place* and reports ``s`` plus the name of the rule that
fired -- the rule names match the paper exactly, which the test-suite relies
on.

Nondeterminism.  Loads from invalid addresses may either trap
(``ldG-fail``/``ldB-fail``) or yield an arbitrary value
(``ldG-rand``/``ldB-rand``).  Both behaviors exist in the paper's semantics;
which one a given machine exhibits is controlled by :class:`OobPolicy`, and
the arbitrary value by an injectable generator, so the metatheory checkers
can explore both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.colors import Color, ColoredValue, green
from repro.core.errors import MachineStuck
from repro.core.instructions import (
    ArithRRI,
    ArithRRR,
    Bz,
    Halt,
    Instruction,
    Jmp,
    Load,
    Mov,
    PlainBz,
    PlainJmp,
    PlainLoad,
    PlainStore,
    Store,
    alu_eval,
)
from repro.core.registers import DEST, PC_B, PC_G
from repro.core.state import MachineState, Status


class OobPolicy(enum.Enum):
    """What an out-of-bounds load does (the semantics allows either)."""

    #: Trap: rules ``ldG-fail`` / ``ldB-fail`` (a hardware exception).
    TRAP = "trap"
    #: Yield an arbitrary value: rules ``ldG-rand`` / ``ldB-rand``.
    RANDOM = "random"


#: Generates the "arbitrary" value loaded by the ``ld*-rand`` rules.
RandSource = Callable[[], int]


@dataclass(frozen=True)
class StepResult:
    """Outcome of one small step."""

    #: Address-value pairs written to the output device during the step.
    outputs: Tuple[Tuple[int, int], ...]
    #: Name of the operational rule that fired (as in the paper).
    rule: str


def _zero_rand() -> int:
    return 0


def step(
    state: MachineState,
    oob_policy: OobPolicy = OobPolicy.TRAP,
    rand_source: RandSource = _zero_rand,
) -> StepResult:
    """Execute one small step, mutating ``state``.

    Returns the observable output of the step and the rule name.  Raises
    :class:`MachineStuck` when no rule applies (e.g. fetching from an invalid
    code address), and :class:`ReproError` if called on a terminal state.
    """
    if state.is_terminal:
        raise MachineStuck(f"cannot step a terminal state ({state.status.value})")
    if state.ir is None:
        return _fetch(state)
    instruction, state.ir = state.ir, None
    return _execute(state, instruction, oob_policy, rand_source)


def _fetch(state: MachineState) -> StepResult:
    regs = state.regs
    pc_g = regs.value(PC_G)
    pc_b = regs.value(PC_B)
    if pc_g != pc_b:
        # A fault rendered the program counters inequivalent: the hardware
        # detects it at the next fetch (rule fetch-fail).
        state.enter_fault()
        return StepResult((), "fetch-fail")
    if pc_g not in state.code:
        # No rule fires: the machine is stuck.  Progress guarantees this
        # never happens to well-typed states.
        raise MachineStuck(f"fetch from invalid code address {pc_g}")
    state.ir = state.code[pc_g]
    return StepResult((), "fetch")


def _execute(
    state: MachineState,
    instruction: Instruction,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    if isinstance(instruction, ArithRRR):
        return _op2r(state, instruction)
    if isinstance(instruction, ArithRRI):
        return _op1r(state, instruction)
    if isinstance(instruction, Mov):
        return _mov(state, instruction)
    if isinstance(instruction, Load):
        return _load(state, instruction, oob_policy, rand_source)
    if isinstance(instruction, Store):
        return _store(state, instruction)
    if isinstance(instruction, Jmp):
        return _jmp(state, instruction)
    if isinstance(instruction, Bz):
        return _bz(state, instruction)
    if isinstance(instruction, Halt):
        state.halt()
        return StepResult((), "halt")
    if isinstance(instruction, PlainLoad):
        return _plain_load(state, instruction, oob_policy, rand_source)
    if isinstance(instruction, PlainStore):
        return _plain_store(state, instruction)
    if isinstance(instruction, PlainJmp):
        return _plain_jmp(state, instruction)
    if isinstance(instruction, PlainBz):
        return _plain_bz(state, instruction)
    raise MachineStuck(f"unknown instruction {instruction!r}")


# ---------------------------------------------------------------------------
# Basic instructions (Figure 2)
# ---------------------------------------------------------------------------


def _op2r(state: MachineState, instr: ArithRRR) -> StepResult:
    regs = state.regs
    result = alu_eval(instr.op, regs.value(instr.rs), regs.value(instr.rt))
    # The result inherits the color of rt, exactly as in rule op2r.
    regs.bump_pcs()
    regs.set(instr.rd, ColoredValue(regs.color(instr.rt), result))
    return StepResult((), "op2r")


def _op1r(state: MachineState, instr: ArithRRI) -> StepResult:
    regs = state.regs
    result = alu_eval(instr.op, regs.value(instr.rs), instr.imm.value)
    regs.bump_pcs()
    regs.set(instr.rd, ColoredValue(instr.imm.color, result))
    return StepResult((), "op1r")


def _mov(state: MachineState, instr: Mov) -> StepResult:
    state.regs.bump_pcs()
    state.regs.set(instr.rd, instr.imm)
    return StepResult((), "mov")


# ---------------------------------------------------------------------------
# Memory instructions (Figure 3 + Appendix A.1)
# ---------------------------------------------------------------------------


def _load(
    state: MachineState,
    instr: Load,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    regs = state.regs
    address = regs.value(instr.rs)
    if instr.color is Color.GREEN:
        # ldG first checks the store queue for a pending store (ldG-queue),
        # letting the green computation read its own not-yet-committed data.
        hit = state.queue.find(address)
        if hit is not None:
            regs.bump_pcs()
            regs.set(instr.rd, ColoredValue(Color.GREEN, hit[1]))
            return StepResult((), "ldG-queue")
        if address in state.memory:
            value = state.memory[address]
            regs.bump_pcs()
            regs.set(instr.rd, ColoredValue(Color.GREEN, value))
            return StepResult((), "ldG-mem")
        if oob_policy is OobPolicy.TRAP:
            state.enter_fault()
            return StepResult((), "ldG-fail")
        regs.bump_pcs()
        regs.set(instr.rd, ColoredValue(Color.GREEN, rand_source()))
        return StepResult((), "ldG-rand")
    # ldB ignores the queue and goes straight to memory (ldB-mem).
    if address in state.memory:
        value = state.memory[address]
        regs.bump_pcs()
        regs.set(instr.rd, ColoredValue(Color.BLUE, value))
        return StepResult((), "ldB-mem")
    if oob_policy is OobPolicy.TRAP:
        state.enter_fault()
        return StepResult((), "ldB-fail")
    regs.bump_pcs()
    regs.set(instr.rd, ColoredValue(Color.BLUE, rand_source()))
    return StepResult((), "ldB-rand")


def _store(state: MachineState, instr: Store) -> StepResult:
    regs = state.regs
    address = regs.value(instr.rd)
    value = regs.value(instr.rs)
    if instr.color is Color.GREEN:
        # stG-queue: push the announced pair onto the front of the queue.
        state.queue.push_front(address, value)
        regs.bump_pcs()
        return StepResult((), "stG-queue")
    # Blue store: compare against the pair at the back of the queue.
    if len(state.queue) == 0:
        state.enter_fault()
        return StepResult((), "stB-queue-fail")
    queued_address, queued_value = state.queue.back()
    if address != queued_address or value != queued_value:
        # A fault corrupted one of the copies: detected (stB-mem-fail).
        state.enter_fault()
        return StepResult((), "stB-mem-fail")
    state.queue.pop_back()
    state.memory[queued_address] = queued_value
    regs.bump_pcs()
    # Committed writes to device-mapped addresses are the machine's only
    # observable behavior (spill slots live below observable_min).
    if queued_address >= state.observable_min:
        return StepResult(((queued_address, queued_value),), "stB-mem")
    return StepResult((), "stB-mem")


# ---------------------------------------------------------------------------
# Control-flow instructions (Figure 4 + Appendix A.1)
# ---------------------------------------------------------------------------


def _jmp(state: MachineState, instr: Jmp) -> StepResult:
    regs = state.regs
    if instr.color is Color.GREEN:
        if regs.value(DEST) != 0:
            # A green jump while a transfer is already pending means the
            # machine lost track of its control flow: detected (jmpG-fail).
            state.enter_fault()
            return StepResult((), "jmpG-fail")
        target = regs.get(instr.rd)
        regs.bump_pcs()
        regs.set(DEST, target)
        return StepResult((), "jmpG")
    # Blue jump: commit the transfer if both computations agree.
    dest = regs.get(DEST)
    if dest.value == 0 or regs.value(instr.rd) != dest.value:
        state.enter_fault()
        return StepResult((), "jmpB-fail")
    regs.set(PC_G, dest)
    regs.set(PC_B, regs.get(instr.rd))
    regs.set(DEST, green(0))
    return StepResult((), "jmpB")


def _bz(state: MachineState, instr: Bz) -> StepResult:
    regs = state.regs
    z_value = regs.value(instr.rz)
    dest_value = regs.value(DEST)
    if z_value != 0:
        # Fall through -- but only if no transfer is pending; otherwise the
        # two computations disagree about whether the branch is taken.
        if dest_value != 0:
            state.enter_fault()
            return StepResult((), "bz-untaken-fail")
        regs.bump_pcs()
        return StepResult((), "bz-untaken")
    if instr.color is Color.GREEN:
        if dest_value != 0:
            state.enter_fault()
            return StepResult((), "bzG-taken-fail")
        target = regs.get(instr.rd)
        regs.bump_pcs()
        regs.set(DEST, target)
        return StepResult((), "bzG-taken")
    # Blue taken branch: commit, mirroring jmpB.
    if dest_value == 0 or regs.value(instr.rd) != dest_value:
        state.enter_fault()
        return StepResult((), "bzB-taken-fail")
    regs.set(PC_G, regs.get(DEST))
    regs.set(PC_B, regs.get(instr.rd))
    regs.set(DEST, green(0))
    return StepResult((), "bzB-taken")


# ---------------------------------------------------------------------------
# Unprotected baseline instructions (not in the paper's typed fragment)
# ---------------------------------------------------------------------------


def _plain_load(
    state: MachineState,
    instr: PlainLoad,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    regs = state.regs
    address = regs.value(instr.rs)
    if address in state.memory:
        value = state.memory[address]
        regs.bump_pcs()
        regs.set(instr.rd, ColoredValue(Color.GREEN, value))
        return StepResult((), "ld-mem")
    if oob_policy is OobPolicy.TRAP:
        state.enter_fault()
        return StepResult((), "ld-fail")
    regs.bump_pcs()
    regs.set(instr.rd, ColoredValue(Color.GREEN, rand_source()))
    return StepResult((), "ld-rand")


def _plain_store(state: MachineState, instr: PlainStore) -> StepResult:
    regs = state.regs
    address = regs.value(instr.rd)
    value = regs.value(instr.rs)
    state.memory[address] = value
    regs.bump_pcs()
    if address >= state.observable_min:
        return StepResult(((address, value),), "st-mem")
    return StepResult((), "st-mem")


def _plain_jmp(state: MachineState, instr: PlainJmp) -> StepResult:
    regs = state.regs
    target = regs.value(instr.rd)
    regs.set(PC_G, regs.get(PC_G).with_value(target))
    regs.set(PC_B, regs.get(PC_B).with_value(target))
    return StepResult((), "jmp")


def _plain_bz(state: MachineState, instr: PlainBz) -> StepResult:
    regs = state.regs
    if regs.value(instr.rz) == 0:
        target = regs.value(instr.rd)
        regs.set(PC_G, regs.get(PC_G).with_value(target))
        regs.set(PC_B, regs.get(PC_B).with_value(target))
        return StepResult((), "bz-taken")
    regs.bump_pcs()
    return StepResult((), "bz-untaken-plain")
