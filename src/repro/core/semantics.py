"""Small-step operational semantics of the TAL_FT machine.

This module implements every *non-faulty* transition rule of the paper
(Figures 2, 3, 4 and the failure rules of Appendix A.1); the fault
transitions (``reg-zap``, ``Q-zap``) live in :mod:`repro.core.faults`.

The central judgment is ``S1 -->_k^s S2``: a single step from ``S1`` to
``S2`` incurring ``k`` faults (0 here; 1 in the faults module) and emitting
the observable output ``s`` (a possibly-empty sequence of address-value
pairs written to the memory-mapped output device).  :func:`step` performs one
such transition *in place* and reports ``s`` plus the name of the rule that
fired -- the rule names match the paper exactly, which the test-suite relies
on.

Nondeterminism.  Loads from invalid addresses may either trap
(``ldG-fail``/``ldB-fail``) or yield an arbitrary value
(``ldG-rand``/``ldB-rand``).  Both behaviors exist in the paper's semantics;
which one a given machine exhibits is controlled by :class:`OobPolicy`, and
the arbitrary value by an injectable generator, so the metatheory checkers
can explore both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.colors import Color, ColoredValue, green
from repro.core.errors import MachineStuck, ReproError
from repro.core.instructions import (
    ArithRRI,
    ArithRRR,
    Bz,
    Halt,
    Instruction,
    Jmp,
    Load,
    Mov,
    PlainBz,
    PlainJmp,
    PlainLoad,
    PlainStore,
    Store,
    alu_eval,
)
from repro.core.registers import DEST, PC_B, PC_G
from repro.core.state import MachineState, Status


class OobPolicy(enum.Enum):
    """What an out-of-bounds load does (the semantics allows either)."""

    #: Trap: rules ``ldG-fail`` / ``ldB-fail`` (a hardware exception).
    TRAP = "trap"
    #: Yield an arbitrary value: rules ``ldG-rand`` / ``ldB-rand``.
    RANDOM = "random"


#: Generates the "arbitrary" value loaded by the ``ld*-rand`` rules.
RandSource = Callable[[], int]


@dataclass(frozen=True)
class StepResult:
    """Outcome of one small step."""

    #: Address-value pairs written to the output device during the step.
    outputs: Tuple[Tuple[int, int], ...]
    #: Name of the operational rule that fired (as in the paper).
    rule: str


def _zero_rand() -> int:
    return 0


#: Direct tuple construction for ColoredValue: skips the generated
#: NamedTuple ``__new__`` wrapper.  The interpreter allocates a colored
#: value on nearly every executed instruction, so this is measurable.
_new_cv = tuple.__new__


#: Preallocated results for the output-free rules.  ``StepResult`` is frozen,
#: so sharing one instance per rule is safe and saves an allocation on every
#: step of every run -- campaigns execute millions of steps.
_RESULTS = {
    name: StepResult((), name)
    for name in (
        "fetch", "fetch-fail", "op2r", "op1r", "mov",
        "ldG-queue", "ldG-mem", "ldG-fail", "ldG-rand",
        "ldB-mem", "ldB-fail", "ldB-rand",
        "stG-queue", "stB-queue-fail", "stB-mem-fail", "stB-mem",
        "jmpG", "jmpG-fail", "jmpB", "jmpB-fail",
        "bz-untaken", "bz-untaken-fail", "bzG-taken", "bzG-taken-fail",
        "bzB-taken", "bzB-taken-fail", "halt",
        "ld-mem", "ld-fail", "ld-rand", "st-mem",
        "jmp", "bz-taken", "bz-untaken-plain",
    )
}

#: Every rule name the semantics can emit.  The compiled backend
#: (``repro.exec``) and its parity tests enumerate against this set: a
#: closure returning a rule outside it is a codegen bug by definition.
KNOWN_RULES = frozenset(_RESULTS)


def step(
    state: MachineState,
    oob_policy: OobPolicy = OobPolicy.TRAP,
    rand_source: RandSource = _zero_rand,
) -> StepResult:
    """Execute one small step, mutating ``state``.

    Returns the observable output of the step and the rule name.  Raises
    :class:`MachineStuck` when no rule applies (e.g. fetching from an invalid
    code address), and :class:`ReproError` if called on a terminal state.
    """
    if state.status is not Status.RUNNING:
        raise MachineStuck(f"cannot step a terminal state ({state.status.value})")
    instruction = state.ir
    if instruction is None:
        return _fetch(state)
    state.ir = None
    return _execute(state, instruction, oob_policy, rand_source)


def _fetch(state: MachineState) -> StepResult:
    try:
        regs = state.regs._regs
        pc_g = regs[PC_G][1]
        pc_b = regs[PC_B][1]
    except KeyError as missing:
        raise ReproError(
            f"register {missing.args[0]!r} is not in the bank") from None
    if pc_g != pc_b:
        # A fault rendered the program counters inequivalent: the hardware
        # detects it at the next fetch (rule fetch-fail).
        state.enter_fault()
        return _RESULTS["fetch-fail"]
    instruction = state.code.get(pc_g)
    if instruction is None:
        # No rule fires: the machine is stuck.  Progress guarantees this
        # never happens to well-typed states.
        raise MachineStuck(f"fetch from invalid code address {pc_g}")
    state.ir = instruction
    return _RESULTS["fetch"]


def _execute(
    state: MachineState,
    instruction: Instruction,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    handler = _DISPATCH.get(type(instruction))
    if handler is None:
        handler = _dispatch_subclass(instruction)
    return handler(state, instruction, oob_policy, rand_source)


def _dispatch_subclass(instruction: Instruction):
    """Dispatch-table miss: resolve subclasses of the known instruction
    types once, then cache the handler under the concrete type."""
    for base, handler in _DISPATCH_BASES:
        if isinstance(instruction, base):
            _DISPATCH[type(instruction)] = handler
            return handler
    raise MachineStuck(f"unknown instruction {instruction!r}")


# ---------------------------------------------------------------------------
# Basic instructions (Figure 2)
# ---------------------------------------------------------------------------


def _op2r(
    state: MachineState,
    instr: ArithRRR,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    regs = state.regs
    rt = regs.get(instr.rt)
    result = alu_eval(instr.op, regs.value(instr.rs), rt[1])
    # The result inherits the color of rt, exactly as in rule op2r.
    regs.bump_pcs()
    regs.set(instr.rd, _new_cv(ColoredValue, (rt[0], result)))
    return _RESULTS["op2r"]


def _op1r(
    state: MachineState,
    instr: ArithRRI,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    regs = state.regs
    imm = instr.imm
    result = alu_eval(instr.op, regs.value(instr.rs), imm[1])
    regs.bump_pcs()
    regs.set(instr.rd, _new_cv(ColoredValue, (imm[0], result)))
    return _RESULTS["op1r"]


def _mov(
    state: MachineState,
    instr: Mov,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    regs = state.regs
    regs.bump_pcs()
    regs.set(instr.rd, instr.imm)
    return _RESULTS["mov"]


def _halt(
    state: MachineState,
    instr: Halt,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    state.halt()
    return _RESULTS["halt"]


# ---------------------------------------------------------------------------
# Memory instructions (Figure 3 + Appendix A.1)
# ---------------------------------------------------------------------------


def _load(
    state: MachineState,
    instr: Load,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    regs = state.regs
    address = regs.value(instr.rs)
    if instr.color is Color.GREEN:
        # ldG first checks the store queue for a pending store (ldG-queue),
        # letting the green computation read its own not-yet-committed data.
        hit = state.queue.find(address)
        if hit is not None:
            regs.bump_pcs()
            regs.set(instr.rd, _new_cv(ColoredValue, (Color.GREEN, hit[1])))
            return _RESULTS["ldG-queue"]
        if address in state.memory:
            value = state.memory[address]
            regs.bump_pcs()
            regs.set(instr.rd, _new_cv(ColoredValue, (Color.GREEN, value)))
            return _RESULTS["ldG-mem"]
        if oob_policy is OobPolicy.TRAP:
            state.enter_fault()
            return _RESULTS["ldG-fail"]
        regs.bump_pcs()
        regs.set(instr.rd, ColoredValue(Color.GREEN, rand_source()))
        return _RESULTS["ldG-rand"]
    # ldB ignores the queue and goes straight to memory (ldB-mem).
    if address in state.memory:
        value = state.memory[address]
        regs.bump_pcs()
        regs.set(instr.rd, _new_cv(ColoredValue, (Color.BLUE, value)))
        return _RESULTS["ldB-mem"]
    if oob_policy is OobPolicy.TRAP:
        state.enter_fault()
        return _RESULTS["ldB-fail"]
    regs.bump_pcs()
    regs.set(instr.rd, ColoredValue(Color.BLUE, rand_source()))
    return _RESULTS["ldB-rand"]


def _store(
    state: MachineState,
    instr: Store,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    regs = state.regs
    address = regs.value(instr.rd)
    value = regs.value(instr.rs)
    if instr.color is Color.GREEN:
        # stG-queue: push the announced pair onto the front of the queue.
        state.queue.push_front(address, value)
        regs.bump_pcs()
        return _RESULTS["stG-queue"]
    # Blue store: compare against the pair at the back of the queue.
    queue = state.queue
    if len(queue) == 0:
        state.enter_fault()
        return _RESULTS["stB-queue-fail"]
    queued_address, queued_value = queue.back()
    if address != queued_address or value != queued_value:
        # A fault corrupted one of the copies: detected (stB-mem-fail).
        state.enter_fault()
        return _RESULTS["stB-mem-fail"]
    queue.pop_back()
    state.memory[queued_address] = queued_value
    regs.bump_pcs()
    # Committed writes to device-mapped addresses are the machine's only
    # observable behavior (spill slots live below observable_min).
    if queued_address >= state.observable_min:
        return StepResult(((queued_address, queued_value),), "stB-mem")
    return _RESULTS["stB-mem"]


# ---------------------------------------------------------------------------
# Control-flow instructions (Figure 4 + Appendix A.1)
# ---------------------------------------------------------------------------


def _jmp(
    state: MachineState,
    instr: Jmp,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    regs = state.regs
    if instr.color is Color.GREEN:
        if regs.value(DEST) != 0:
            # A green jump while a transfer is already pending means the
            # machine lost track of its control flow: detected (jmpG-fail).
            state.enter_fault()
            return _RESULTS["jmpG-fail"]
        target = regs.get(instr.rd)
        regs.bump_pcs()
        regs.set(DEST, target)
        return _RESULTS["jmpG"]
    # Blue jump: commit the transfer if both computations agree.
    dest = regs.get(DEST)
    if dest.value == 0 or regs.value(instr.rd) != dest.value:
        state.enter_fault()
        return _RESULTS["jmpB-fail"]
    regs.set(PC_G, dest)
    regs.set(PC_B, regs.get(instr.rd))
    regs.set(DEST, green(0))
    return _RESULTS["jmpB"]


def _bz(
    state: MachineState,
    instr: Bz,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    regs = state.regs
    z_value = regs.value(instr.rz)
    dest_value = regs.value(DEST)
    if z_value != 0:
        # Fall through -- but only if no transfer is pending; otherwise the
        # two computations disagree about whether the branch is taken.
        if dest_value != 0:
            state.enter_fault()
            return _RESULTS["bz-untaken-fail"]
        regs.bump_pcs()
        return _RESULTS["bz-untaken"]
    if instr.color is Color.GREEN:
        if dest_value != 0:
            state.enter_fault()
            return _RESULTS["bzG-taken-fail"]
        target = regs.get(instr.rd)
        regs.bump_pcs()
        regs.set(DEST, target)
        return _RESULTS["bzG-taken"]
    # Blue taken branch: commit, mirroring jmpB.
    if dest_value == 0 or regs.value(instr.rd) != dest_value:
        state.enter_fault()
        return _RESULTS["bzB-taken-fail"]
    regs.set(PC_G, regs.get(DEST))
    regs.set(PC_B, regs.get(instr.rd))
    regs.set(DEST, green(0))
    return _RESULTS["bzB-taken"]


# ---------------------------------------------------------------------------
# Unprotected baseline instructions (not in the paper's typed fragment)
# ---------------------------------------------------------------------------


def _plain_load(
    state: MachineState,
    instr: PlainLoad,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    regs = state.regs
    address = regs.value(instr.rs)
    if address in state.memory:
        value = state.memory[address]
        regs.bump_pcs()
        regs.set(instr.rd, _new_cv(ColoredValue, (Color.GREEN, value)))
        return _RESULTS["ld-mem"]
    if oob_policy is OobPolicy.TRAP:
        state.enter_fault()
        return _RESULTS["ld-fail"]
    regs.bump_pcs()
    regs.set(instr.rd, ColoredValue(Color.GREEN, rand_source()))
    return _RESULTS["ld-rand"]


def _plain_store(
    state: MachineState,
    instr: PlainStore,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    regs = state.regs
    address = regs.value(instr.rd)
    value = regs.value(instr.rs)
    state.memory[address] = value
    regs.bump_pcs()
    if address >= state.observable_min:
        return StepResult(((address, value),), "st-mem")
    return _RESULTS["st-mem"]


def _plain_jmp(
    state: MachineState,
    instr: PlainJmp,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    regs = state.regs
    target = regs.value(instr.rd)
    regs.set(PC_G, regs.get(PC_G).with_value(target))
    regs.set(PC_B, regs.get(PC_B).with_value(target))
    return _RESULTS["jmp"]


def _plain_bz(
    state: MachineState,
    instr: PlainBz,
    oob_policy: OobPolicy,
    rand_source: RandSource,
) -> StepResult:
    regs = state.regs
    if regs.value(instr.rz) == 0:
        target = regs.value(instr.rd)
        regs.set(PC_G, regs.get(PC_G).with_value(target))
        regs.set(PC_B, regs.get(PC_B).with_value(target))
        return _RESULTS["bz-taken"]
    regs.bump_pcs()
    return _RESULTS["bz-untaken-plain"]


# ---------------------------------------------------------------------------
# Dispatch table
# ---------------------------------------------------------------------------

#: Fast path: concrete instruction type -> handler.  Populated lazily for
#: subclasses via :func:`_dispatch_subclass`; the isinstance chain the table
#: replaces cost up to 12 checks per executed instruction.
_DISPATCH = {
    ArithRRR: _op2r,
    ArithRRI: _op1r,
    Mov: _mov,
    Load: _load,
    Store: _store,
    Jmp: _jmp,
    Bz: _bz,
    Halt: _halt,
    PlainLoad: _plain_load,
    PlainStore: _plain_store,
    PlainJmp: _plain_jmp,
    PlainBz: _plain_bz,
}

#: Slow-path resolution order for instruction subclasses; mirrors the
#: original isinstance chain so subclass dispatch behaves identically.
_DISPATCH_BASES = tuple(_DISPATCH.items())
