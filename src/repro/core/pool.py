"""Shared process-pool plumbing for the parallel engines.

Both parallel subsystems -- fault-injection campaigns
(:mod:`repro.injection.parallel`) and per-block type checking
(:mod:`repro.types.parallel`) -- partition independent work items into
contiguous chunks, fan them out over a ``fork``-preferring process pool,
and merge results deterministically in submission order.  This module
holds the pieces they share.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Sequence, TypeVar

T = TypeVar("T")

#: Chunks handed out per worker; >1 smooths out uneven per-item cost.
CHUNKS_PER_WORKER = 4


def default_jobs() -> int:
    """The worker count ``jobs=0``/``jobs=None`` resolves to."""
    return os.cpu_count() or 1


def resolve_jobs(jobs, items: int) -> int:
    """Normalize a ``jobs`` knob against the number of work items."""
    if jobs is None or jobs <= 0:
        jobs = default_jobs()
    return max(1, min(jobs, items))


def chunk(items: Sequence[T], chunks: int) -> List[List[T]]:
    """Split ``items`` into up to ``chunks`` contiguous, balanced parts."""
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    parts: List[List[T]] = []
    start = 0
    for index in range(chunks):
        end = start + size + (1 if index < extra else 0)
        parts.append(list(items[start:end]))
        start = end
    return parts


def mp_context():
    """Prefer ``fork`` (cheap, inherits the interpreter state); fall back
    to the platform default where it is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def terminate_pool(pool) -> None:
    """Tear a ``ProcessPoolExecutor`` down *now*, without waiting.

    ``Executor.shutdown(wait=True)`` -- what a ``with`` block runs on
    ``KeyboardInterrupt`` -- blocks until every queued chunk finishes,
    which against a hung worker means forever and against a long campaign
    means an unresponsive Ctrl-C.  This helper cancels queued work, sends
    SIGTERM to the workers, escalates to SIGKILL if any survive, and reaps
    them, so neither processes nor their pipes leak.  Safe to call on a
    pool that is already broken or shut down.
    """
    # _processes may already be None after an internal shutdown.
    processes = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive: pool already broken
        pass
    for process in processes:
        try:
            if process.is_alive():
                process.terminate()
        except Exception:  # pragma: no cover - already reaped
            pass
    for process in processes:
        try:
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - stubborn worker
                process.kill()
                process.join(timeout=1.0)
        except Exception:  # pragma: no cover - already reaped
            pass
