"""Exception hierarchy shared across the TAL_FT reproduction.

Every error raised by the library derives from :class:`ReproError`, so client
code can catch a single type.  Subsystems define more specific errors (the
assembler raises :class:`AsmError`, the type checker
:class:`~repro.types.errors.TypeCheckError`, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class MachineStuck(ReproError):
    """No operational rule applies to the current machine state.

    The paper's semantics is intentionally partial: e.g. fetching from an
    address outside the domain of code memory has no applicable rule.  The
    Progress theorem guarantees well-typed states never get stuck, so hitting
    this exception on checked code indicates a bug in the checker or machine.
    """


class InvalidFault(ReproError):
    """A fault descriptor does not apply to the given machine state.

    Raised e.g. when asked to zap a queue slot of an empty queue, or to apply
    a second fault in a run that already used its single-event-upset budget.
    """


class AsmError(ReproError):
    """Syntax or resolution error in textual TAL_FT assembly."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, col {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class CompileError(ReproError):
    """The MWL compiler could not translate the source program."""


class SourceError(ReproError):
    """Syntax or semantic error in an MWL source program."""

    def __init__(self, message: str, line: int = 0):
        location = f" (line {line})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
