"""The machine runner: multi-step execution with observable-output traces.

The paper extends the single-step judgment to ``S1 -->*_k^s S2`` (``n`` steps,
``k`` faults, cumulative output ``s``).  :class:`Machine` provides that as an
iterator-style runner that:

* records the observable output sequence (the address-value pairs committed
  to the memory-mapped output device),
* optionally injects a single fault before a chosen step (the SEU budget is
  enforced here), and
* classifies how the run ended (:class:`Outcome`).

This is the workhorse shared by the examples, the metatheory checkers and
the fault-injection campaigns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.errors import MachineStuck
from repro.core.faults import Fault, apply_fault
from repro.core.semantics import (
    _DISPATCH,
    _dispatch_subclass,
    _fetch,
    OobPolicy,
    RandSource,
    StepResult,
    step,
)
from repro.core.state import MachineState, Status


class Outcome(enum.Enum):
    """How a bounded run ended."""

    HALTED = "halted"
    FAULT_DETECTED = "fault-detected"
    STUCK = "stuck"
    RUNNING = "running"  # step budget exhausted


@dataclass
class Trace:
    """The result of running a machine for some number of steps."""

    outcome: Outcome
    #: The observable behavior: committed (address, value) pairs, in order.
    outputs: List[Tuple[int, int]]
    #: Total small steps taken (fetches count as steps, as in the paper).
    steps: int
    #: Names of the rules that fired, in order (useful in tests/debugging).
    rules: List[str] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return self.outcome is Outcome.FAULT_DETECTED


class Machine:
    """Runs a :class:`MachineState` under a fault budget.

    The paper's model (and all of its theorems) assume a Single Event
    Upset: ``fault_budget`` defaults to 1.  A larger budget steps outside
    the model -- useful for demonstrating that the guarantees are tight
    (see ``benchmarks/bench_fault_model_boundary.py``).
    """

    def __init__(
        self,
        state: MachineState,
        oob_policy: OobPolicy = OobPolicy.TRAP,
        rand_source: RandSource = lambda: 0,
        record_rules: bool = False,
        fault_budget: int = 1,
        backend: str = "compiled",
    ):
        # Imported here: repro.exec imports this module at its top level,
        # so the registry cannot be a module-level import.  A Machine
        # drives one state, hence the MACHINE_BACKENDS subset (the vector
        # engine only exists at campaign granularity).
        from repro.exec import MACHINE_BACKENDS, require_backend

        require_backend(backend, MACHINE_BACKENDS)
        self.state = state
        self.oob_policy = oob_policy
        self.rand_source = rand_source
        self.record_rules = record_rules
        self.fault_budget = fault_budget
        self.faults_used = 0
        self.backend = backend

    def inject(self, fault: Fault) -> None:
        """Apply one fault transition now (counts against the budget)."""
        if self.faults_used >= self.fault_budget:
            raise MachineStuck(
                f"fault budget exhausted ({self.fault_budget} allowed)"
            )
        apply_fault(self.state, fault)
        self.faults_used += 1

    def step(self) -> StepResult:
        """One small step of the non-faulty semantics."""
        return step(self.state, self.oob_policy, self.rand_source)

    def run(
        self,
        max_steps: int = 1_000_000,
        fault: Optional[Fault] = None,
        fault_at_step: int = 0,
        faults: Optional[List[Tuple[int, Fault]]] = None,
    ) -> Trace:
        """Run until a terminal state or ``max_steps``.

        If ``fault`` is given it is injected just before step
        ``fault_at_step`` (0 injects before the first step).  ``faults``
        schedules several injections as (step, fault) pairs -- only legal
        when the machine was built with a matching ``fault_budget``.
        """
        schedule: List[Tuple[int, Fault]] = list(faults or [])
        if fault is not None:
            schedule.append((fault_at_step, fault))
        if schedule:
            schedule.sort(key=lambda pair: pair[0])
        if self.backend == "compiled":
            # Local import: repro.exec depends on this module for Trace.
            from repro.exec import compiled_for, run_compiled

            compiled = compiled_for(self.state, self.oob_policy)
            if compiled is not None:
                if not schedule:
                    return run_compiled(
                        self.state, compiled, max_steps=max_steps,
                        rand_source=self.rand_source,
                        rules=[] if self.record_rules else None,
                    )
                return self._run_compiled_scheduled(
                    compiled, run_compiled, schedule, max_steps
                )
            # Uncompilable program or uncovered register bank: fall back to
            # the interpreter loops below.
        outputs: List[Tuple[int, int]] = []
        rules: List[str] = []
        steps_taken = 0
        state = self.state
        if not schedule and not self.record_rules:
            # Fast loop for the common case (no pending injections, no rule
            # recording): fetch/dispatch inlined from the semantics module,
            # per-step attribute lookups hoisted, schedule checks skipped.
            # Campaign faulty runs live here.
            oob_policy = self.oob_policy
            rand_source = self.rand_source
            running = Status.RUNNING
            extend = outputs.extend
            dispatch_get = _DISPATCH.get
            while steps_taken < max_steps and state.status is running:
                try:
                    instruction = state.ir
                    if instruction is None:
                        result = _fetch(state)
                    else:
                        state.ir = None
                        handler = dispatch_get(type(instruction))
                        if handler is None:
                            handler = _dispatch_subclass(instruction)
                        result = handler(state, instruction, oob_policy,
                                         rand_source)
                except MachineStuck:
                    return Trace(Outcome.STUCK, outputs, steps_taken, rules)
                if result.outputs:
                    extend(result.outputs)
                steps_taken += 1
        else:
            while steps_taken < max_steps:
                if state.is_terminal:
                    break
                while schedule and schedule[0][0] == steps_taken:
                    # Faults strike only ordinary states; a schedule entry
                    # that lands on a terminal state simply never fires.
                    self.inject(schedule.pop(0)[1])
                try:
                    result = self.step()
                except MachineStuck:
                    return Trace(Outcome.STUCK, outputs, steps_taken, rules)
                outputs.extend(result.outputs)
                if self.record_rules:
                    rules.append(result.rule)
                steps_taken += 1
        if self.state.status is Status.HALTED:
            outcome = Outcome.HALTED
        elif self.state.status is Status.FAULT_DETECTED:
            outcome = Outcome.FAULT_DETECTED
        else:
            outcome = Outcome.RUNNING
        return Trace(outcome, outputs, steps_taken, rules)

    def _run_compiled_scheduled(
        self,
        compiled,
        run_compiled,
        schedule: List[Tuple[int, Fault]],
        max_steps: int,
    ) -> Trace:
        """Segmented compiled run around a fault schedule.

        Each segment runs the compiled driver exactly up to the next
        scheduled injection step, the fault is applied, and execution
        resumes.  Splitting segments at injection indices is what lets a
        zap land *between* the original small steps even where the compiled
        table fuses them -- the driver never dispatches a fused entry
        across a segment boundary.
        """
        outputs: List[Tuple[int, int]] = []
        rules: Optional[List[str]] = [] if self.record_rules else None
        steps_taken = 0
        state = self.state
        while steps_taken < max_steps and not state.is_terminal:
            while schedule and schedule[0][0] == steps_taken:
                # Faults strike only ordinary states; budget violations
                # propagate exactly as in the interpreter loop.
                self.inject(schedule.pop(0)[1])
            if schedule and schedule[0][0] > steps_taken:
                segment_end = min(schedule[0][0], max_steps)
            else:
                # Empty schedule, or a stale head entry (scheduled before
                # the current step) -- the interpreter loop would never
                # fire it, or anything behind it, either.
                segment_end = max_steps
            trace = run_compiled(
                state, compiled, max_steps=segment_end - steps_taken,
                rand_source=self.rand_source, outputs=outputs, rules=rules,
            )
            steps_taken += trace.steps
            if trace.outcome is Outcome.STUCK:
                return Trace(Outcome.STUCK, outputs, steps_taken,
                             rules if rules is not None else [])
        if state.status is Status.HALTED:
            outcome = Outcome.HALTED
        elif state.status is Status.FAULT_DETECTED:
            outcome = Outcome.FAULT_DETECTED
        else:
            outcome = Outcome.RUNNING
        return Trace(outcome, outputs, steps_taken,
                     rules if rules is not None else [])


def run_to_completion(
    state: MachineState,
    max_steps: int = 1_000_000,
    oob_policy: OobPolicy = OobPolicy.TRAP,
) -> Trace:
    """Convenience wrapper: run a fresh state fault-free."""
    return Machine(state, oob_policy=oob_policy).run(max_steps=max_steps)
