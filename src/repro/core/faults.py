"""The formal fault model: Single Event Upset transitions (Section 2.1).

The paper makes its fault assumptions explicit as three operational rules:

* ``reg-zap`` -- any single register's payload is replaced by an arbitrary
  value; the (fictional) color tag is preserved;
* ``Q-zap1`` -- the *address* component of some store-queue pair is replaced;
* ``Q-zap2`` -- the *value* component of some store-queue pair is replaced.

Code memory and value memory sit outside the sphere of replication (assumed
protected, e.g. by ECC) and never fault.  Under the SEU assumption at most
one fault occurs per execution; enforcing that budget is the job of the
runners in :mod:`repro.core.machine` and :mod:`repro.injection`.

A fault is represented as a small immutable descriptor that can be applied
to a machine state; :func:`fault_sites` enumerates every descriptor shape
applicable to a given state, which the exhaustive campaigns combine with a
representative set of replacement values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.core.errors import InvalidFault
from repro.core.state import MachineState


@dataclass(frozen=True)
class RegZap:
    """Rule ``reg-zap``: register ``reg`` comes to hold ``new_value``.

    Applies to *any* register, including the program counters and the
    destination register -- this is how the model captures control-flow
    faults.
    """

    reg: str
    new_value: int

    def describe(self) -> str:
        return f"reg-zap {self.reg} := {self.new_value}"


@dataclass(frozen=True)
class QueueZapAddress:
    """Rule ``Q-zap1``: the address of queue pair ``index`` becomes ``new_value``."""

    index: int
    new_value: int

    def describe(self) -> str:
        return f"Q-zap1 Q[{self.index}].addr := {self.new_value}"


@dataclass(frozen=True)
class QueueZapValue:
    """Rule ``Q-zap2``: the value of queue pair ``index`` becomes ``new_value``."""

    index: int
    new_value: int

    def describe(self) -> str:
        return f"Q-zap2 Q[{self.index}].value := {self.new_value}"


Fault = Union[RegZap, QueueZapAddress, QueueZapValue]


def apply_fault(state: MachineState, fault: Fault) -> None:
    """Apply one fault transition to ``state`` in place.

    Raises :class:`InvalidFault` if the descriptor does not fit the state
    (unknown register, queue index out of range, terminal state).
    """
    if state.is_terminal:
        raise InvalidFault("faults strike only ordinary (running) states")
    if isinstance(fault, RegZap):
        try:
            old = state.regs.get(fault.reg)
        except Exception as exc:
            raise InvalidFault(str(exc)) from None
        # reg-zap replaces the payload but preserves the color tag.
        state.regs.set(fault.reg, old.with_value(fault.new_value))
        return
    if isinstance(fault, (QueueZapAddress, QueueZapValue)):
        pairs = state.queue.pairs()
        if not 0 <= fault.index < len(pairs):
            raise InvalidFault(
                f"queue index {fault.index} out of range (|Q| = {len(pairs)})"
            )
        address, value = pairs[fault.index]
        if isinstance(fault, QueueZapAddress):
            state.queue.replace(fault.index, (fault.new_value, value))
        else:
            state.queue.replace(fault.index, (address, fault.new_value))
        return
    raise InvalidFault(f"unknown fault descriptor {fault!r}")


def is_effective(state: MachineState, fault: Fault) -> bool:
    """True if applying ``fault`` would actually change ``state``.

    Ineffective faults (writing the value already present) are legal under
    the model but trivially tolerated; campaigns may skip them.
    """
    if isinstance(fault, RegZap):
        return state.regs.value(fault.reg) != fault.new_value
    pairs = state.queue.pairs()
    if not 0 <= fault.index < len(pairs):
        return False
    address, value = pairs[fault.index]
    if isinstance(fault, QueueZapAddress):
        return address != fault.new_value
    return value != fault.new_value


def fault_sites(state: MachineState) -> Iterator[Fault]:
    """Every fault *site* of ``state``, with a placeholder value of 0.

    Campaign engines substitute their own replacement values; this function
    just enumerates where a particle strike could land: every register and
    both components of every store-queue pair.
    """
    for name in state.regs.names():
        yield RegZap(name, 0)
    for index in range(len(state.queue)):
        yield QueueZapAddress(index, 0)
        yield QueueZapValue(index, 0)
