"""Machine states of the TAL_FT abstract machine (Figure 1).

A machine state ``S`` is either the distinguished ``fault`` state (the
hardware has *detected* a transient fault), our ``halted`` extension, or an
ordinary tuple ``(R, C, M, Q, ir)``:

* ``R`` -- the register bank, a total function from register names to
  :class:`~repro.core.colors.ColoredValue`;
* ``C`` -- code memory, mapping integer addresses (1-based; address 0 is
  never valid code) to instructions;
* ``M`` -- value memory, mapping integer addresses to integers;
* ``Q`` -- the store queue of pending (address, value) pairs standing between
  the processor and the memory-mapped output device;
* ``ir`` -- the current instruction, or ``None`` when the next instruction
  must be fetched.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.core.colors import Color, ColoredValue, blue, green
from repro.core.errors import ReproError
from repro.core.instructions import Instruction
from repro.core.registers import DEST, PC_B, PC_G, gpr_range, is_register

_new_cv = tuple.__new__


class RegisterFile:
    """The register bank ``R``: a total map from register names to values.

    ``R(a)`` is :meth:`get`, ``R[a -> v]`` is :meth:`set`, and the paper's
    ``R++`` (increment both program counters) is :meth:`bump_pcs`.
    ``Rval(a)`` / ``Rcol(a)`` are :meth:`value` / :meth:`color`.

    The bank is mutable for speed; :meth:`clone` takes a snapshot.
    """

    __slots__ = ("_regs",)

    def __init__(self, regs: Mapping[str, ColoredValue]):
        self._regs: Dict[str, ColoredValue] = dict(regs)
        for name in self._regs:
            if not is_register(name):
                raise ValueError(f"not a register name: {name!r}")

    @classmethod
    def initial(
        cls,
        entry: int,
        num_gprs: int = 64,
        gpr_colors: Optional[Mapping[str, Color]] = None,
    ) -> "RegisterFile":
        """A boot register bank.

        Both program counters point at ``entry``; the destination register
        holds green 0; every general-purpose register holds 0 with the color
        given by ``gpr_colors`` (default: green).
        """
        regs: Dict[str, ColoredValue] = {
            PC_G: green(entry),
            PC_B: blue(entry),
            DEST: green(0),
        }
        colors = gpr_colors or {}
        for name in gpr_range(num_gprs):
            regs[name] = ColoredValue(colors.get(name, Color.GREEN), 0)
        return cls(regs)

    def get(self, name: str) -> ColoredValue:
        """``R(a)`` -- the colored value in register ``name``."""
        try:
            return self._regs[name]
        except KeyError:
            raise ReproError(f"register {name!r} is not in the bank") from None

    def value(self, name: str) -> int:
        """``Rval(a)`` -- the integer payload of register ``name``."""
        # Tuple indexing instead of the NamedTuple property: this runs on
        # every operand read of every executed instruction.
        try:
            return self._regs[name][1]
        except KeyError:
            raise ReproError(f"register {name!r} is not in the bank") from None

    def color(self, name: str) -> Color:
        """``Rcol(a)`` -- the color tag of register ``name``."""
        try:
            return self._regs[name][0]
        except KeyError:
            raise ReproError(f"register {name!r} is not in the bank") from None

    def set(self, name: str, value: ColoredValue) -> None:
        """``R[a -> v]`` (in place)."""
        if name not in self._regs:
            raise ReproError(f"register {name!r} is not in the bank")
        self._regs[name] = value

    def bump_pcs(self) -> None:
        """``R++`` -- advance both program counters by one instruction."""
        regs = self._regs
        pc_g = regs[PC_G]
        pc_b = regs[PC_B]
        # tuple.__new__ directly: skips the generated NamedTuple __new__
        # wrapper on the two hottest allocations in the interpreter.
        regs[PC_G] = _new_cv(ColoredValue, (pc_g[0], pc_g[1] + 1))
        regs[PC_B] = _new_cv(ColoredValue, (pc_b[0], pc_b[1] + 1))

    def names(self) -> Iterator[str]:
        """All register names in the bank."""
        return iter(self._regs)

    def clone(self) -> "RegisterFile":
        return RegisterFile(self._regs)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RegisterFile) and self._regs == other._regs

    def __repr__(self) -> str:
        pcs = f"pcG={self._regs[PC_G]}, pcB={self._regs[PC_B]}, d={self._regs[DEST]}"
        return f"<RegisterFile {pcs}, {len(self._regs) - 3} gprs>"


class StoreQueue:
    """The store queue ``Q`` of pending (address, value) pairs.

    ``stG`` pushes onto the *front*; ``stB`` inspects and pops the *back*.
    ``find(Q, n)`` (used by ``ldG``) scans from the front -- the most recent
    pending store to an address wins.

    Index 0 of the underlying deque is the front (newest entry); pushing
    there is O(1) (``appendleft``), as is popping the back.
    """

    __slots__ = ("_pairs",)

    def __init__(self, pairs: Iterable[Tuple[int, int]] = ()):
        self._pairs: Deque[Tuple[int, int]] = deque(pairs)

    def push_front(self, address: int, value: int) -> None:
        self._pairs.appendleft((address, value))

    def back(self) -> Tuple[int, int]:
        """The oldest pending pair (the one ``stB`` must match)."""
        if not self._pairs:
            raise ReproError("store queue is empty")
        return self._pairs[-1]

    def pop_back(self) -> Tuple[int, int]:
        if not self._pairs:
            raise ReproError("store queue is empty")
        return self._pairs.pop()

    def find(self, address: int) -> Optional[Tuple[int, int]]:
        """The paper's ``find(Q, n)``: first pair for ``address``, front first."""
        for pair in self._pairs:
            if pair[0] == address:
                return pair
        return None

    def pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The queue contents, front (newest) first."""
        return tuple(self._pairs)

    def replace(self, index: int, pair: Tuple[int, int]) -> None:
        """Overwrite the pair at ``index`` (used by the Q-zap fault rules)."""
        self._pairs[index] = pair

    def clone(self) -> "StoreQueue":
        return StoreQueue(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StoreQueue) and self._pairs == other._pairs

    def __repr__(self) -> str:
        return f"StoreQueue({self._pairs!r})"


class Status(enum.Enum):
    """Execution status of a machine state."""

    RUNNING = "running"
    #: The hardware detected a transient fault (the paper's ``fault`` state).
    FAULT_DETECTED = "fault"
    #: The machine executed ``halt`` (extension; see instructions module).
    HALTED = "halted"


class MachineState:
    """An ordinary machine state ``(R, C, M, Q, ir)`` plus a status flag.

    The state is mutable -- the semantics updates it in place -- and
    :meth:`clone` snapshots everything except code memory, which is immutable
    by assumption (it sits outside the sphere of replication and is never
    written).
    """

    __slots__ = ("regs", "code", "memory", "queue", "ir", "status",
                 "observable_min")

    def __init__(
        self,
        regs: RegisterFile,
        code: Mapping[int, Instruction],
        memory: Dict[int, int],
        queue: Optional[StoreQueue] = None,
        ir: Optional[Instruction] = None,
        status: Status = Status.RUNNING,
        observable_min: int = 0,
    ):
        if 0 in code:
            raise ReproError("address 0 is not a valid code address")
        self.regs = regs
        self.code = code
        self.memory = memory
        self.queue = queue if queue is not None else StoreQueue()
        self.ir = ir
        self.status = status
        #: First address mapped to the output device.  Committed stores
        #: below this address (e.g. compiler spill slots) update memory but
        #: are not externally observable.  The default (0) makes every
        #: store observable, the conservative reading of the paper.
        self.observable_min = observable_min

    @property
    def is_terminal(self) -> bool:
        return self.status is not Status.RUNNING

    def enter_fault(self) -> None:
        """Transition to the hardware-detected ``fault`` state."""
        self.status = Status.FAULT_DETECTED
        self.ir = None

    def halt(self) -> None:
        self.status = Status.HALTED
        self.ir = None

    def clone(self) -> "MachineState":
        return MachineState(
            regs=self.regs.clone(),
            code=self.code,
            memory=dict(self.memory),
            queue=self.queue.clone(),
            ir=self.ir,
            status=self.status,
            observable_min=self.observable_min,
        )

    def __repr__(self) -> str:
        if self.status is Status.FAULT_DETECTED:
            return "<MachineState fault>"
        if self.status is Status.HALTED:
            return "<MachineState halted>"
        return (
            f"<MachineState pcG={self.regs.value(PC_G)} "
            f"pcB={self.regs.value(PC_B)} ir={self.ir} |Q|={len(self.queue)}>"
        )
