"""Register names of the TAL_FT machine.

The machine has:

* general-purpose registers ``r1 .. rN`` (metavariable ``r`` in the paper),
* two program counters ``pcG`` and ``pcB`` -- one per computation color --
  which agree unless a fault has struck one of them, and
* the *destination register* ``d`` used by the two-phase control-flow
  protocol (``jmpG``/``bzG`` announce a target into ``d``; ``jmpB``/``bzB``
  check and commit it).

Registers are represented as interned strings (``"r7"``, ``"pcG"``, ``"pcB"``,
``"d"``), which keeps machine states cheap to copy and hash.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Tuple

#: The green program counter.
PC_G = "pcG"
#: The blue program counter.
PC_B = "pcB"
#: The destination register used by the control-flow check protocol.
DEST = "d"

#: The special (non-general-purpose) registers.
SPECIAL_REGISTERS: Tuple[str, str, str] = (PC_G, PC_B, DEST)

_GPR_RE = re.compile(r"^r([1-9][0-9]*)$")


def gpr(index: int) -> str:
    """The name of general-purpose register ``index`` (1-based)."""
    if index < 1:
        raise ValueError(f"general-purpose registers are numbered from 1, got {index}")
    return f"r{index}"


@lru_cache(maxsize=4096)
def is_gpr(name: str) -> bool:
    """True if ``name`` names a general-purpose register.

    Memoized: register names are a small interned set and this predicate
    sits on the type checker's hottest path (register-file validation).
    """
    return _GPR_RE.match(name) is not None


def is_register(name: str) -> bool:
    """True if ``name`` names any machine register (general or special)."""
    return name in SPECIAL_REGISTERS or is_gpr(name)


def gpr_index(name: str) -> int:
    """The 1-based index of a general-purpose register name."""
    match = _GPR_RE.match(name)
    if match is None:
        raise ValueError(f"not a general-purpose register: {name!r}")
    return int(match.group(1))


def gpr_range(count: int) -> Tuple[str, ...]:
    """The names ``r1 .. rcount`` in order."""
    return tuple(gpr(i) for i in range(1, count + 1))
