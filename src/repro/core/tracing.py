"""Execution tracing: human-readable step-by-step machine logs.

A debugging aid for anyone writing TAL_FT assembly or compiler passes:
records, for every small step, the rule that fired, the instruction (on
execute steps), every register the step changed, the store-queue contents
and any observable output.

Used by ``talft trace`` and handy in tests when a rule misbehaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.colors import ColoredValue
from repro.core.errors import MachineStuck
from repro.core.registers import PC_G
from repro.core.semantics import OobPolicy, step
from repro.core.state import MachineState


@dataclass(frozen=True)
class TraceEvent:
    """One small step of the machine."""

    step: int
    rule: str
    #: Code address of the instruction (execute steps) or the fetch target.
    address: int
    #: The instruction executed, or None for fetch/terminal steps.
    instruction: Optional[object]
    #: Registers whose value changed: name -> (before, after).
    changes: Dict[str, Tuple[ColoredValue, ColoredValue]]
    #: Store-queue contents after the step (front first).
    queue: Tuple[Tuple[int, int], ...]
    #: Observable output of the step.
    outputs: Tuple[Tuple[int, int], ...]

    def format(self) -> str:
        what = str(self.instruction) if self.instruction is not None else ""
        parts = [f"{self.step:5d}  @{self.address:<5d} {self.rule:16s} {what}"]
        for name, (before, after) in sorted(self.changes.items()):
            if name in ("pcG", "pcB"):
                continue  # pc churn is noise; transfers show via the rule
            parts.append(f"    {name}: {before} -> {after}")
        if self.outputs:
            for address, value in self.outputs:
                parts.append(f"    OUTPUT M[{address}] <- {value}")
        if self.queue:
            rendered = ", ".join(f"({a},{v})" for a, v in self.queue)
            parts.append(f"    queue: [{rendered}]")
        return "\n".join(parts)


def trace_execution(
    state: MachineState,
    max_steps: int = 200,
    oob_policy: OobPolicy = OobPolicy.TRAP,
    backend: str = "step",
) -> List[TraceEvent]:
    """Run ``state`` for up to ``max_steps``, recording every step.

    ``backend="compiled"`` reconstructs the same per-step events through
    the closure backend (:func:`repro.exec.trace_events_compiled`), which
    is faster on long traces; the interpreter remains the default here
    because tracing is a debugging aid and the interpreter *is* the
    specification being debugged.
    """
    if backend not in ("step", "compiled"):
        raise ValueError(f"unknown backend {backend!r}")
    if backend == "compiled":
        from repro.exec import trace_events_compiled

        return trace_events_compiled(state, max_steps, oob_policy)
    events: List[TraceEvent] = []
    step_index = 0
    while step_index < max_steps and not state.is_terminal:
        address = state.regs.value(PC_G)
        instruction = state.ir
        before = {name: state.regs.get(name) for name in state.regs.names()}
        try:
            result = step(state, oob_policy)
        except MachineStuck:
            break
        # Register changes are diffed even on the terminal step: a rule
        # that writes a register *and* halts in the same step must still
        # show that final write in the trace.
        changes = {
            name: (before[name], state.regs.get(name))
            for name in before
            if state.regs.get(name) != before[name]
        }
        events.append(TraceEvent(
            step=step_index,
            rule=result.rule,
            address=address,
            instruction=instruction,
            changes=changes,
            queue=state.queue.pairs(),
            outputs=result.outputs,
        ))
        step_index += 1
    return events


def format_trace(events: List[TraceEvent]) -> str:
    """The whole trace as one printable block."""
    return "\n".join(event.format() for event in events)
