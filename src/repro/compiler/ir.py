"""Three-address IR and control-flow graph for the MWL compiler.

The IR is deliberately small: constants, ALU operations (register or
immediate operand), loads and stores through computed addresses, organized
into basic blocks ending in a terminator (goto / branch-if-zero / halt).
Virtual registers are unlimited; register allocation maps them onto the
machine's general-purpose registers later.

The reliability transformation (:mod:`repro.compiler.duplication`) runs at
this level -- "immediately before register allocation and scheduling", as
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union


@dataclass(frozen=True)
class VReg:
    """A virtual register."""

    index: int

    def __str__(self) -> str:
        return f"v{self.index}"


#: An operand: a virtual register or an integer immediate.
Operand = Union[VReg, int]


@dataclass(frozen=True)
class IConst:
    """``dst <- value``."""

    dst: VReg
    value: int

    def __str__(self) -> str:
        return f"{self.dst} = {self.value}"


@dataclass(frozen=True)
class IBin:
    """``dst <- lhs op rhs`` (``rhs`` may be an immediate)."""

    op: str
    dst: VReg
    lhs: VReg
    rhs: Operand

    def __str__(self) -> str:
        return f"{self.dst} = {self.op} {self.lhs}, {self.rhs}"


@dataclass(frozen=True)
class ILoad:
    """``dst <- M[addr]``."""

    dst: VReg
    addr: VReg

    def __str__(self) -> str:
        return f"{self.dst} = load {self.addr}"


@dataclass(frozen=True)
class IStore:
    """``M[addr] <- src`` -- an observable write."""

    addr: VReg
    src: VReg

    def __str__(self) -> str:
        return f"store {self.addr} <- {self.src}"


IROp = Union[IConst, IBin, ILoad, IStore]


@dataclass(frozen=True)
class TGoto:
    target: str

    def __str__(self) -> str:
        return f"goto {self.target}"


@dataclass(frozen=True)
class TBranchZero:
    """If ``cond`` is zero go to ``if_zero``, else ``if_nonzero``."""

    cond: VReg
    if_zero: str
    if_nonzero: str

    def __str__(self) -> str:
        return f"bz {self.cond} ? {self.if_zero} : {self.if_nonzero}"


@dataclass(frozen=True)
class THalt:
    def __str__(self) -> str:
        return "halt"


Terminator = Union[TGoto, TBranchZero, THalt]


@dataclass
class Block:
    name: str
    ops: List[IROp] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def __str__(self) -> str:
        body = "\n".join(f"  {op}" for op in self.ops)
        return f"{self.name}:\n{body}\n  {self.terminator}"


@dataclass
class CFG:
    """A control-flow graph with a stable block order (layout order)."""

    entry: str
    blocks: Dict[str, Block] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)

    def add(self, block: Block) -> Block:
        if block.name in self.blocks:
            raise ValueError(f"duplicate block {block.name!r}")
        self.blocks[block.name] = block
        self.order.append(block.name)
        return block

    def block(self, name: str) -> Block:
        return self.blocks[name]

    def successors(self, name: str) -> Tuple[str, ...]:
        terminator = self.blocks[name].terminator
        if isinstance(terminator, TGoto):
            return (terminator.target,)
        if isinstance(terminator, TBranchZero):
            return (terminator.if_zero, terminator.if_nonzero)
        return ()

    def iter_blocks(self) -> Iterator[Block]:
        for name in self.order:
            yield self.blocks[name]

    def __str__(self) -> str:
        return "\n".join(str(self.blocks[name]) for name in self.order)


def op_uses(op: IROp) -> Tuple[VReg, ...]:
    """Virtual registers read by ``op``."""
    if isinstance(op, IConst):
        return ()
    if isinstance(op, IBin):
        uses = [op.lhs]
        if isinstance(op.rhs, VReg):
            uses.append(op.rhs)
        return tuple(uses)
    if isinstance(op, ILoad):
        return (op.addr,)
    if isinstance(op, IStore):
        return (op.addr, op.src)
    raise TypeError(f"not an IR op: {op!r}")


def op_def(op: IROp) -> Optional[VReg]:
    """The virtual register written by ``op``, if any."""
    if isinstance(op, (IConst, IBin, ILoad)):
        return op.dst
    return None


def terminator_uses(terminator: Terminator) -> Tuple[VReg, ...]:
    if isinstance(terminator, TBranchZero):
        return (terminator.cond,)
    return ()
