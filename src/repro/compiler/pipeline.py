"""The compilation pipeline: MWL source text to machine programs.

Mirrors the paper's flow: the reliability transformation is applied to the
low-level code "immediately before register allocation and scheduling".

::

    parse -> check -> lower to IR -> CFG cleanup -> [fold constants]
          -> {baseline | fault-tolerant} backend (regalloc + emission)

Scheduling is a *timing-model* concern in this reproduction (the emitted
functional order is already legal), so it lives in
:mod:`repro.simulator.schedule`.
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.backend import (
    CompiledProgram,
    emit_baseline,
    emit_fault_tolerant,
)
from repro.compiler.frontend import LoweredProgram, lower_program
from repro.compiler.layout import MemoryLayout, compute_layout
from repro.compiler.passes import (
    eliminate_dead_code,
    fold_constants,
    propagate_copies,
    remove_empty_blocks,
)
from repro.core.errors import CompileError
from repro.lang.check import check_source
from repro.lang.parser import parse_source


def lower_source(source: str, optimize: bool = True) -> LoweredProgram:
    """Front half of the pipeline: source text to cleaned-up IR."""
    ast = parse_source(source)
    check_source(ast)
    lowered = lower_program(ast)
    remove_empty_blocks(lowered.cfg)
    if optimize:
        # Iterate the sound scalar optimizations to a (bounded) fixpoint:
        # folding exposes copies, copy propagation exposes dead code.
        for _ in range(3):
            changed = fold_constants(lowered.cfg)
            changed += propagate_copies(lowered.cfg)
            changed += eliminate_dead_code(lowered.cfg)
            if not changed:
                break
    return lowered


def compile_source(
    source: str,
    mode: str = "ft",
    num_gprs: int = 64,
    optimize: bool = True,
    cross_color_cse: bool = False,
) -> CompiledProgram:
    """Compile MWL source.

    ``mode`` selects the backend: ``"ft"`` (the paper's reliability
    transformation; output type-checks), ``"baseline"`` (unprotected), or
    ``"swift"`` (software-only duplication with compare-and-branch checks;
    see :mod:`repro.compiler.swift`).  ``cross_color_cse`` injects the
    deliberately unsound Section 2.2 optimization into the FT backend.
    """
    lowered = lower_source(source, optimize=optimize)
    if mode != "ft" and cross_color_cse:
        raise CompileError("cross-color CSE only applies to the FT backend")
    if mode == "baseline":
        return emit_baseline(lowered, num_gprs=num_gprs)
    if mode == "ft":
        return emit_fault_tolerant(
            lowered, num_gprs=num_gprs, cross_color_cse=cross_color_cse
        )
    if mode == "swift":
        from repro.compiler.swift import emit_software_only

        return emit_software_only(lowered, num_gprs=num_gprs)
    raise CompileError(f"unknown backend mode {mode!r}")
