"""Liveness analysis and linear-scan register allocation.

Each virtual register receives a single physical register for its whole
live range (no splitting, no spilling): ranges are derived from an
iterative backward liveness analysis over the CFG, extended to cover any
block where the value is live-in or live-out (which handles loops).  If
the program needs more registers than the pool provides, compilation fails
with a :class:`~repro.core.errors.CompileError` -- the machine is built
with 64 general-purpose registers precisely so realistic kernels fit (the
FT backend splits them into a green pool and a blue pool of 32 each).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.errors import CompileError
from repro.compiler.ir import (
    CFG,
    IROp,
    VReg,
    op_def,
    op_uses,
    terminator_uses,
)


def block_liveness(cfg: CFG) -> Tuple[Dict[str, Set[VReg]], Dict[str, Set[VReg]]]:
    """Iterative backward dataflow: (live_in, live_out) per block."""
    use: Dict[str, Set[VReg]] = {}
    defs: Dict[str, Set[VReg]] = {}
    for block in cfg.iter_blocks():
        used: Set[VReg] = set()
        defined: Set[VReg] = set()
        for op in block.ops:
            for vreg in op_uses(op):
                if vreg not in defined:
                    used.add(vreg)
            dst = op_def(op)
            if dst is not None:
                defined.add(dst)
        for vreg in terminator_uses(block.terminator):
            if vreg not in defined:
                used.add(vreg)
        use[block.name] = used
        defs[block.name] = defined

    live_in: Dict[str, Set[VReg]] = {name: set() for name in cfg.order}
    live_out: Dict[str, Set[VReg]] = {name: set() for name in cfg.order}
    changed = True
    while changed:
        changed = False
        for name in reversed(cfg.order):
            out: Set[VReg] = set()
            for successor in cfg.successors(name):
                out |= live_in[successor]
            new_in = use[name] | (out - defs[name])
            if out != live_out[name] or new_in != live_in[name]:
                live_out[name] = out
                live_in[name] = new_in
                changed = True
    return live_in, live_out


@dataclass(frozen=True)
class LiveRange:
    vreg: VReg
    start: int
    end: int


def live_ranges(cfg: CFG) -> List[LiveRange]:
    """Conservative whole-lifetime ranges over a global layout numbering."""
    live_in, live_out = block_liveness(cfg)

    position = 0
    block_span: Dict[str, Tuple[int, int]] = {}
    op_positions: Dict[str, List[int]] = {}
    for block in cfg.iter_blocks():
        start = position
        positions = []
        for _ in block.ops:
            positions.append(position)
            position += 1
        terminator_position = position
        position += 1
        block_span[block.name] = (start, terminator_position)
        op_positions[block.name] = positions

    starts: Dict[VReg, int] = {}
    ends: Dict[VReg, int] = {}

    def touch(vreg: VReg, at: int) -> None:
        starts[vreg] = min(starts.get(vreg, at), at)
        ends[vreg] = max(ends.get(vreg, at), at)

    for block in cfg.iter_blocks():
        span_start, span_end = block_span[block.name]
        for vreg in live_in[block.name]:
            touch(vreg, span_start)
        for vreg in live_out[block.name]:
            touch(vreg, span_end)
        for op, at in zip(block.ops, op_positions[block.name]):
            for vreg in op_uses(op):
                touch(vreg, at)
            dst = op_def(op)
            if dst is not None:
                touch(dst, at)
        for vreg in terminator_uses(block.terminator):
            touch(vreg, span_end)

    return sorted(
        (LiveRange(vreg, starts[vreg], ends[vreg]) for vreg in starts),
        key=lambda r: (r.start, r.end, r.vreg.index),
    )


def linear_scan(
    ranges: Sequence[LiveRange],
    pool: Sequence[str],
) -> Dict[VReg, str]:
    """Allocate each range a register from ``pool``.

    The free list is a FIFO (round-robin reuse): a just-freed register goes
    to the back of the queue, so physical registers are recycled as late as
    possible.  This minimizes false (WAR/WAW) dependences in the generated
    code -- which matters for the in-order timing model, where eager reuse
    serializes independent work.

    Raises :class:`CompileError` if the pool is exhausted (see
    :mod:`repro.compiler.spill` for the spilling allocator).
    """
    from collections import deque

    free = deque(pool)
    active: List[Tuple[int, VReg, str]] = []  # (end, vreg, reg)
    assignment: Dict[VReg, str] = {}
    for rng in ranges:
        still_active = []
        for end, vreg, reg in active:
            if end < rng.start:
                free.append(reg)
            else:
                still_active.append((end, vreg, reg))
        active = still_active
        if not free:
            raise CompileError(
                f"register pressure too high: {len(active) + 1} values live "
                f"at once, pool has {len(pool)} registers"
            )
        reg = free.popleft()
        assignment[rng.vreg] = reg
        active.append((rng.end, rng.vreg, reg))
    return assignment


def allocate(cfg: CFG, pool: Sequence[str]) -> Dict[VReg, str]:
    """Liveness + linear scan over ``cfg`` with the given register pool."""
    return linear_scan(live_ranges(cfg), pool)
