"""Lowering: MWL abstract syntax to the three-address IR.

Responsibilities:

* flatten expressions into IR ops over fresh virtual registers;
* desugar the comparison / logical operators onto the machine's ALU
  (``<=`` becomes ``slt`` + ``xor``; ``&&`` becomes ``sne`` + ``and``; ...);
* compile array accesses to masked-region addressing
  (``base + (index & mask)``);
* keep scalars (globals and locals) entirely in virtual registers --
  array cells are the only memory and hence the only observable output;
* inline every function call (the checker has rejected recursion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import CompileError
from repro.compiler.ir import (
    Block,
    CFG,
    IBin,
    IConst,
    ILoad,
    IStore,
    Operand,
    TBranchZero,
    TGoto,
    THalt,
    VReg,
)
from repro.compiler.layout import MemoryLayout, compute_layout
from repro.lang.ast import (
    ArrayAssign,
    Assign,
    Binary,
    Call,
    Expr,
    ExprStmt,
    If,
    Index,
    IntLit,
    Name,
    Return,
    SourceProgram,
    Stmt,
    Unary,
    VarDecl,
    While,
)


class _ReturnValue(Exception):
    def __init__(self, vreg: Optional[VReg]):
        self.vreg = vreg


@dataclass
class LoweredProgram:
    cfg: CFG
    layout: MemoryLayout
    source: SourceProgram


class _Lowering:
    def __init__(self, program: SourceProgram, layout: MemoryLayout):
        self.program = program
        self.layout = layout
        self.cfg = CFG(entry="entry")
        self.current = self.cfg.add(Block("entry"))
        self.next_vreg = 0
        self.next_block = 0
        #: global name -> vreg holding its current value
        self.globals: Dict[str, VReg] = {}

    # -- plumbing ------------------------------------------------------------

    def fresh(self) -> VReg:
        self.next_vreg += 1
        return VReg(self.next_vreg)

    def fresh_block(self, hint: str) -> Block:
        self.next_block += 1
        return self.cfg.add(Block(f"{hint}{self.next_block}"))

    def emit(self, op) -> None:
        if self.current.terminator is not None:
            raise CompileError("emitting into a terminated block")
        self.current.ops.append(op)

    def terminate(self, terminator) -> None:
        if self.current.terminator is None:
            self.current.terminator = terminator

    def switch_to(self, block: Block) -> None:
        self.current = block

    # -- program -------------------------------------------------------------

    def lower(self) -> LoweredProgram:
        for global_var in self.program.globals:
            vreg = self.fresh()
            self.emit(IConst(vreg, global_var.init))
            self.globals[global_var.name] = vreg
        frame: Dict[str, VReg] = {}
        self.lower_body(self.program.main, frame)
        self.terminate(THalt())
        return LoweredProgram(self.cfg, self.layout, self.program)

    # -- statements -----------------------------------------------------------

    def lower_body(self, body: Tuple[Stmt, ...], frame: Dict[str, VReg]) -> None:
        for stmt in body:
            self.lower_stmt(stmt, frame)

    def lower_stmt(self, stmt: Stmt, frame: Dict[str, VReg]) -> None:
        if isinstance(stmt, VarDecl):
            frame[stmt.name] = self.lower_expr(stmt.init, frame)
        elif isinstance(stmt, Assign):
            value = self.lower_expr(stmt.value, frame)
            if stmt.name in frame:
                frame[stmt.name] = value
            elif stmt.name in self.globals:
                self.globals[stmt.name] = value
            else:
                raise CompileError(f"unknown variable {stmt.name!r}")
        elif isinstance(stmt, ArrayAssign):
            # Source order: index expression, then value.  The mask+add
            # that turn the index into an address are pure, so they are
            # materialized *after* the value, right next to the IStore:
            # the value may span blocks (an inlined call with branches),
            # and an address computed before a branch reaches the join
            # block typed as a plain int (the generated preconditions
            # generalize live registers), which the FT type checker
            # rightly rejects as a store address.
            index_reg = self.lower_expr(stmt.index, frame)
            value = self.lower_expr(stmt.value, frame)
            address = self.materialize_address(stmt.array, index_reg)
            self.emit(IStore(address, value))
        elif isinstance(stmt, If):
            self.lower_if(stmt, frame)
        elif isinstance(stmt, While):
            self.lower_while(stmt, frame)
        elif isinstance(stmt, ExprStmt):
            assert isinstance(stmt.expr, Call)
            self.lower_call(stmt.expr, frame, want_value=False)
        elif isinstance(stmt, Return):
            value = (
                self.lower_expr(stmt.value, frame)
                if stmt.value is not None else None
            )
            raise _ReturnValue(value)
        else:
            raise CompileError(f"unknown statement {stmt!r}")

    def lower_if(self, stmt: If, frame: Dict[str, VReg]) -> None:
        cond = self.lower_expr(stmt.cond, frame)
        then_block = self.fresh_block("then")
        else_block = self.fresh_block("else")
        join_block = self.fresh_block("join")
        self.terminate(TBranchZero(cond, else_block.name, then_block.name))

        # Mutable scalar state (globals + locals) must agree at the join:
        # lower both arms from the same snapshot, then reconcile by emitting
        # copies of diverging values into fresh join registers.
        snapshot_globals = dict(self.globals)
        snapshot_frame = dict(frame)

        self.switch_to(then_block)
        self.lower_body(stmt.then_body, frame)
        then_exit = self.current
        then_globals = dict(self.globals)
        then_frame = dict(frame)

        self.globals = dict(snapshot_globals)
        frame.clear()
        frame.update(snapshot_frame)
        self.switch_to(else_block)
        self.lower_body(stmt.else_body, frame)
        else_exit = self.current
        else_globals = dict(self.globals)
        else_frame = dict(frame)

        merged_globals, copies = _merge_maps(
            then_globals, else_globals, self.fresh
        )
        merged_frame, frame_copies = _merge_maps(
            then_frame, else_frame, self.fresh
        )
        then_copies = copies[0] + frame_copies[0]
        else_copies = copies[1] + frame_copies[1]

        for dst, src in then_copies:
            then_exit.ops.append(IBin("add", dst, src, 0))
        for dst, src in else_copies:
            else_exit.ops.append(IBin("add", dst, src, 0))
        if then_exit.terminator is None:
            then_exit.terminator = TGoto(join_block.name)
        if else_exit.terminator is None:
            else_exit.terminator = TGoto(join_block.name)

        self.globals = merged_globals
        frame.clear()
        # Arm-local declarations are block-scoped: only names that existed
        # before the if survive the join.
        frame.update({name: reg for name, reg in merged_frame.items()
                      if name in snapshot_frame})
        self.switch_to(join_block)

    def lower_while(self, stmt: While, frame: Dict[str, VReg]) -> None:
        # Loop-carried scalars need stable registers across iterations:
        # copy every live scalar into a fresh "loop register" before entry,
        # and copy back into the same registers at the end of the body.
        loop_vars = list(self.globals.keys()) + list(frame.keys())
        loop_regs: Dict[str, VReg] = {}
        for name in loop_vars:
            fresh = self.fresh()
            source = frame.get(name, self.globals.get(name))
            self.emit(IBin("add", fresh, source, 0))
            loop_regs[name] = fresh
        for name in loop_regs:
            if name in frame:
                frame[name] = loop_regs[name]
            else:
                self.globals[name] = loop_regs[name]

        head = self.fresh_block("head")
        body = self.fresh_block("body")
        exit_block = self.fresh_block("exit")
        self.terminate(TGoto(head.name))

        self.switch_to(head)
        cond = self.lower_expr(stmt.cond, frame)
        self.terminate(TBranchZero(cond, exit_block.name, body.name))

        self.switch_to(body)
        names_before_body = set(frame)
        self.lower_body(stmt.body, frame)
        # Copy mutated scalars back into the loop registers.
        for name, reg in loop_regs.items():
            current = frame.get(name, self.globals.get(name))
            if current != reg:
                self.emit(IBin("add", reg, current, 0))
                if name in frame:
                    frame[name] = reg
                else:
                    self.globals[name] = reg
        self.terminate(TGoto(head.name))

        # Body-local declarations are block-scoped.
        for name in [n for n in frame if n not in names_before_body]:
            del frame[name]
        self.switch_to(exit_block)

    # -- expressions ---------------------------------------------------------

    def lower_address(self, array: str, index: Expr,
                      frame: Dict[str, VReg]) -> VReg:
        index_reg = self.lower_expr(index, frame)
        return self.materialize_address(array, index_reg)

    def materialize_address(self, array: str, index_reg: VReg) -> VReg:
        """Mask an already-evaluated index and add the array base.

        Emitted in the *current* block: the type checker re-derives
        reference-ness of the address from these two instructions, so
        they must share a block with the load/store that consumes it.
        """
        slot = self.layout.slot(array)
        masked = self.fresh()
        self.emit(IBin("and", masked, index_reg, slot.mask))
        address = self.fresh()
        self.emit(IBin("add", address, masked, slot.base))
        return address

    def lower_expr(self, expr: Expr, frame: Dict[str, VReg]) -> VReg:
        if isinstance(expr, IntLit):
            vreg = self.fresh()
            self.emit(IConst(vreg, expr.value))
            return vreg
        if isinstance(expr, Name):
            if expr.ident in frame:
                return frame[expr.ident]
            if expr.ident in self.globals:
                return self.globals[expr.ident]
            raise CompileError(f"unknown variable {expr.ident!r}")
        if isinstance(expr, Index):
            address = self.lower_address(expr.array, expr.index, frame)
            dst = self.fresh()
            self.emit(ILoad(dst, address))
            return dst
        if isinstance(expr, Binary):
            return self.lower_binary(expr, frame)
        if isinstance(expr, Unary):
            operand = self.lower_expr(expr.operand, frame)
            dst = self.fresh()
            if expr.op == "-":
                zero = self.fresh()
                self.emit(IConst(zero, 0))
                self.emit(IBin("sub", dst, zero, operand))
            elif expr.op == "!":
                self.emit(IBin("seq", dst, operand, 0))
            else:
                raise CompileError(f"unknown unary operator {expr.op!r}")
            return dst
        if isinstance(expr, Call):
            result = self.lower_call(expr, frame, want_value=True)
            assert result is not None
            return result
        raise CompileError(f"unknown expression {expr!r}")

    #: Direct ALU mappings.
    _DIRECT = {"+": "add", "-": "sub", "*": "mul", "<": "slt", "==": "seq",
               "!=": "sne", "&": "and", "|": "or", "^": "xor",
               "<<": "sll", ">>": "sra"}

    def lower_binary(self, expr: Binary, frame: Dict[str, VReg]) -> VReg:
        left = self.lower_expr(expr.left, frame)
        right = self.lower_expr(expr.right, frame)
        dst = self.fresh()
        op = expr.op
        if op in self._DIRECT:
            self.emit(IBin(self._DIRECT[op], dst, left, right))
            return dst
        if op == ">":
            self.emit(IBin("slt", dst, right, left))
            return dst
        if op == "<=":
            # a <= b  ==  !(b < a)
            flag = self.fresh()
            self.emit(IBin("slt", flag, right, left))
            self.emit(IBin("xor", dst, flag, 1))
            return dst
        if op == ">=":
            flag = self.fresh()
            self.emit(IBin("slt", flag, left, right))
            self.emit(IBin("xor", dst, flag, 1))
            return dst
        if op == "&&":
            left_bool = self.fresh()
            right_bool = self.fresh()
            self.emit(IBin("sne", left_bool, left, 0))
            self.emit(IBin("sne", right_bool, right, 0))
            self.emit(IBin("and", dst, left_bool, right_bool))
            return dst
        if op == "||":
            left_bool = self.fresh()
            right_bool = self.fresh()
            self.emit(IBin("sne", left_bool, left, 0))
            self.emit(IBin("sne", right_bool, right, 0))
            self.emit(IBin("or", dst, left_bool, right_bool))
            return dst
        raise CompileError(f"unknown operator {op!r}")

    def lower_call(self, call: Call, frame: Dict[str, VReg],
                   want_value: bool) -> Optional[VReg]:
        function = self.program.function(call.func)
        assert function is not None
        callee_frame: Dict[str, VReg] = {}
        for param, arg in zip(function.params, call.args):
            callee_frame[param] = self.lower_expr(arg, frame)
        try:
            self.lower_body(function.body, callee_frame)
        except _ReturnValue as signal:
            if want_value and signal.vreg is None:
                raise CompileError(
                    f"{call.func!r} returns no value"
                ) from None
            return signal.vreg
        if want_value:
            raise CompileError(f"{call.func!r} returns no value")
        return None


def _merge_maps(then_map, else_map, fresh):
    """Reconcile scalar maps at an if-join; returns the merged map and the
    copies each arm must perform ((then_copies, else_copies)).

    Names declared inside only one arm are block-scoped (the semantic
    checker forbids using them after the join) and simply go out of scope
    here.
    """
    merged = {}
    then_copies: List[Tuple[VReg, VReg]] = []
    else_copies: List[Tuple[VReg, VReg]] = []
    for name in then_map:
        if name not in else_map:
            continue  # declared only in the then-arm: out of scope
        then_reg = then_map[name]
        else_reg = else_map[name]
        if then_reg == else_reg:
            merged[name] = then_reg
        else:
            joined = fresh()
            merged[name] = joined
            then_copies.append((joined, then_reg))
            else_copies.append((joined, else_reg))
    return merged, (then_copies, else_copies)


def lower_program(program: SourceProgram,
                  layout: Optional[MemoryLayout] = None) -> LoweredProgram:
    """Lower a checked MWL program to IR."""
    layout = layout or compute_layout(program)
    return _Lowering(program, layout).lower()
