"""A SWIFT-style *software-only* backend: the paper's foil.

Section 2.2 of the paper argues that software-only duplication cannot be
made airtight: "No matter what sophisticated software checking is
performed just before a conventional store instruction, it will be undone
if a fault strikes between the check and execution of the store" -- the
Time-Of-Check-Time-Of-Use (TOCTOU) window that TAL_FT's checking store
queue closes in hardware.

This backend makes that argument measurable.  It implements the essence
of SWIFT (Reis et al., CGO 2005) on the *plain* ISA:

* the computation is duplicated into disjoint register pools, exactly as
  in the TAL_FT backend;
* before every store, compare instructions check that the two copies of
  the address and of the value agree, branching to an error handler on
  mismatch; only then does a single conventional store execute;
* before every conditional branch, the two copies of the condition are
  compared the same way;
* the error handler announces detection by writing a sentinel to a
  dedicated **error port** address and halting.

The result is real software fault tolerance -- most faults are caught --
but with two measurable deficiencies the benchmarks expose
(``bench_swift_comparison.py``):

1. **coverage**: faults landing in the TOCTOU window (after the compares,
   before the store consumes the registers) corrupt output silently;
2. **overhead**: every protected store costs four extra instructions plus
   an error-target ``mov``, where the hybrid design pays one extra store
   micro-op.

Software-only output is, of course, rejected by the TAL_FT type checker
(it is plain-ISA code) -- there is nothing to prove about it, which is
the paper's point.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.colors import Color, ColoredValue
from repro.core.errors import CompileError
from repro.core.instructions import (
    ArithRRI,
    ArithRRR,
    Halt,
    Instruction,
    Mov,
    PlainBz,
    PlainJmp,
    PlainLoad,
    PlainStore,
)
from repro.core.registers import gpr
from repro.compiler.backend import CompiledProgram, _Emitter, _PendingMov, _block_bodies
from repro.compiler.frontend import LoweredProgram
from repro.compiler.ir import (
    Block,
    IBin,
    IConst,
    ILoad,
    IStore,
    TBranchZero,
    TGoto,
    THalt,
    VReg,
)
from repro.compiler.spill import SpillState, allocate_with_spilling
from repro.program import Program

#: The error handler's detection sentinel lands here (an address far above
#: any array; present in initial memory so the store is well-defined).
ERROR_PORT = 1 << 20

#: Label of the synthesized error-handler block.
ERROR_LABEL = "__swift_error"


def emit_software_only(
    lowered: LoweredProgram, num_gprs: int = 64
) -> CompiledProgram:
    """The software-only (SWIFT-style) backend."""
    cfg = lowered.cfg
    if ERROR_LABEL in cfg.blocks:
        raise CompileError(f"block name {ERROR_LABEL} is reserved")
    half = num_gprs // 2
    check_temp = gpr(half)  # holds compare results
    target_temp = gpr(num_gprs)  # holds branch/error targets
    green_pool = [gpr(i) for i in range(1, half)]
    blue_pool = [gpr(i) for i in range(half + 1, num_gprs)]
    spill_state = SpillState()
    while True:
        green_assign, spill_state = allocate_with_spilling(
            cfg, green_pool, spill_state
        )
        slots_before = len(spill_state.slots)
        blue_assign, spill_state = allocate_with_spilling(
            cfg, blue_pool, spill_state
        )
        if len(spill_state.slots) == slots_before:
            break

    def green(vreg: VReg) -> str:
        return green_assign[vreg]

    def blue(vreg: VReg) -> str:
        return blue_assign[vreg]

    emitter = _Emitter(cfg)

    def check_equal(out: List[object], first: str, second: str) -> None:
        """seq t, first, second ; bz-to-error when the copies disagree."""
        out.append(ArithRRR("seq", check_temp, first, second))
        out.append(_PendingMov(target_temp, Color.GREEN, ERROR_LABEL))
        # PlainBz branches when its condition is zero: seq yields 0 on
        # mismatch, so this transfers to the handler exactly on divergence.
        out.append(PlainBz(check_temp, target_temp))

    for block in cfg.iter_blocks():
        out: List[object] = []
        for op in block.ops:
            if isinstance(op, IConst):
                out.append(Mov(green(op.dst),
                               ColoredValue(Color.GREEN, op.value)))
                out.append(Mov(blue(op.dst),
                               ColoredValue(Color.GREEN, op.value)))
            elif isinstance(op, IBin):
                if isinstance(op.rhs, VReg):
                    out.append(ArithRRR(op.op, green(op.dst), green(op.lhs),
                                        green(op.rhs)))
                    out.append(ArithRRR(op.op, blue(op.dst), blue(op.lhs),
                                        blue(op.rhs)))
                else:
                    imm = ColoredValue(Color.GREEN, op.rhs)
                    out.append(ArithRRI(op.op, green(op.dst), green(op.lhs),
                                        imm))
                    out.append(ArithRRI(op.op, blue(op.dst), blue(op.lhs),
                                        imm))
            elif isinstance(op, ILoad):
                out.append(PlainLoad(green(op.dst), green(op.addr)))
                out.append(PlainLoad(blue(op.dst), blue(op.addr)))
            elif isinstance(op, IStore):
                # The SWIFT check-then-store sequence.  The window between
                # the last compare and the store is the TOCTOU exposure.
                check_equal(out, green(op.addr), blue(op.addr))
                check_equal(out, green(op.src), blue(op.src))
                out.append(PlainStore(green(op.addr), green(op.src)))
            else:
                raise CompileError(f"unknown IR op {op!r}")
        terminator = block.terminator
        following = emitter.next_in_layout(block.name)
        if isinstance(terminator, THalt):
            out.append(Halt())
        elif isinstance(terminator, TGoto):
            if terminator.target != following:
                out.append(_PendingMov(target_temp, Color.GREEN,
                                       terminator.target))
                out.append(PlainJmp(target_temp))
        elif isinstance(terminator, TBranchZero):
            check_equal(out, green(terminator.cond), blue(terminator.cond))
            out.append(_PendingMov(target_temp, Color.GREEN,
                                   terminator.if_zero))
            out.append(PlainBz(green(terminator.cond), target_temp))
            if terminator.if_nonzero != following:
                out.append(_PendingMov(target_temp, Color.GREEN,
                                       terminator.if_nonzero))
                out.append(PlainJmp(target_temp))
        else:
            raise CompileError(f"block {block.name} lacks a terminator")
        emitter.blocks[block.name] = out

    # The error handler: announce detection on the error port, then stop.
    emitter.blocks[ERROR_LABEL] = [
        Mov(check_temp, ColoredValue(Color.GREEN, ERROR_PORT)),
        Mov(target_temp, ColoredValue(Color.GREEN, 1)),
        PlainStore(check_temp, target_temp),
        Halt(),
    ]
    handler_order = list(cfg.order) + [ERROR_LABEL]

    addresses: Dict[str, int] = {}
    cursor = 1
    for name in handler_order:
        addresses[name] = cursor
        cursor += len(emitter.blocks[name])
    code = {}
    for name in handler_order:
        address = addresses[name]
        for pending in emitter.blocks[name]:
            if isinstance(pending, _PendingMov):
                code[address] = Mov(
                    pending.rd,
                    ColoredValue(pending.color, addresses[pending.target]),
                )
            else:
                code[address] = pending
            address += 1

    layout = lowered.layout
    initial_memory = layout.initial_memory(lowered.source)
    initial_memory[ERROR_PORT] = 0
    for slot in spill_state.slots:
        initial_memory[slot] = 0
    observable_min = 0
    if spill_state.slots:
        from repro.compiler.layout import DATA_BASE

        observable_min = DATA_BASE

    program = Program(
        code=code,
        label_types={},  # plain-ISA code: outside the typed fragment
        data_psi={},
        hints={},
        entry=addresses[cfg.entry],
        initial_memory=initial_memory,
        num_gprs=num_gprs,
        labels_by_name=dict(addresses),
        observable_min=observable_min,
    )
    bodies = {
        name: list(range(addresses[name],
                         addresses[name] + len(emitter.blocks[name])))
        for name in handler_order
    }
    return CompiledProgram(
        program=program,
        block_order=handler_order,
        block_addresses=addresses,
        block_bodies=bodies,
        mode="swift",
        lowered=lowered,
    )
