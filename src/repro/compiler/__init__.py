"""The MWL compiler: lowering, the reliability transformation, backends."""

from repro.compiler.backend import (
    CompiledProgram,
    emit_baseline,
    emit_fault_tolerant,
)
from repro.compiler.frontend import LoweredProgram, lower_program
from repro.compiler.ir import (
    CFG,
    Block,
    IBin,
    IConst,
    ILoad,
    IStore,
    TBranchZero,
    TGoto,
    THalt,
    VReg,
)
from repro.compiler.layout import DATA_BASE, ArraySlot, MemoryLayout, compute_layout
from repro.compiler.passes import (
    eliminate_dead_code,
    fold_constants,
    propagate_copies,
    remove_empty_blocks,
)
from repro.compiler.pipeline import compile_source, lower_source
from repro.compiler.regalloc import allocate, block_liveness, linear_scan, live_ranges

__all__ = [
    "ArraySlot",
    "Block",
    "CFG",
    "CompiledProgram",
    "DATA_BASE",
    "IBin",
    "IConst",
    "ILoad",
    "IStore",
    "LoweredProgram",
    "MemoryLayout",
    "TBranchZero",
    "TGoto",
    "THalt",
    "VReg",
    "allocate",
    "block_liveness",
    "compile_source",
    "compute_layout",
    "emit_baseline",
    "emit_fault_tolerant",
    "eliminate_dead_code",
    "fold_constants",
    "linear_scan",
    "live_ranges",
    "lower_program",
    "lower_source",
    "propagate_copies",
    "remove_empty_blocks",
]
