"""Data-memory layout for compiled MWL programs.

Arrays are the only memory-resident objects.  Each array's storage is
rounded up to a power of two and placed at a base address in the data
segment (which starts well above any plausible code segment -- code and
data addresses must be disjoint because the heap typing ``Psi`` covers
both).  An access ``a[i]`` compiles to ``base + (i & mask)``, the
masked-region addressing scheme the extended checker recognizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.errors import CompileError
from repro.lang.ast import SourceProgram
from repro.lang.interp import storage_size

#: First data address; code addresses beyond this are rejected.
DATA_BASE = 65536


@dataclass(frozen=True)
class ArraySlot:
    base: int
    declared_size: int
    storage: int

    @property
    def mask(self) -> int:
        return self.storage - 1


@dataclass
class MemoryLayout:
    """Base addresses and masks for every array."""

    slots: Dict[str, ArraySlot]

    def slot(self, name: str) -> ArraySlot:
        try:
            return self.slots[name]
        except KeyError:
            raise CompileError(f"no array named {name!r}") from None

    def address_of(self, array: str, index: int) -> int:
        slot = self.slot(array)
        return slot.base + (index & slot.mask)

    def describe(self, address: int) -> Tuple[str, int]:
        """Map a data address back to (array, index) -- for test reporting."""
        for name, slot in self.slots.items():
            if slot.base <= address < slot.base + slot.storage:
                return name, address - slot.base
        raise CompileError(f"address {address} is not in any array")

    def initial_memory(self, program: SourceProgram) -> Dict[int, int]:
        memory: Dict[int, int] = {}
        for array in program.arrays:
            slot = self.slot(array.name)
            for offset in range(slot.storage):
                value = array.init[offset] if offset < len(array.init) else 0
                memory[slot.base + offset] = value
        return memory


def compute_layout(program: SourceProgram, base: int = DATA_BASE) -> MemoryLayout:
    """Assign each array a power-of-two-sized slot starting at ``base``."""
    slots: Dict[str, ArraySlot] = {}
    cursor = base
    for array in program.arrays:
        storage = storage_size(array.size)
        slots[array.name] = ArraySlot(cursor, array.size, storage)
        cursor += storage
    return MemoryLayout(slots)
