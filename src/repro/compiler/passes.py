"""CFG cleanup passes run between lowering and code generation.

* :func:`remove_empty_blocks` -- drops blocks with no operations and an
  unconditional goto, redirecting their predecessors.  (Code generation
  needs every surviving block to emit at least one instruction, since a
  label must name an instruction address.)
* :func:`fold_constants` -- forward constant folding within blocks;
* :func:`propagate_copies` -- forward copy propagation within blocks
  (the lowering emits ``dst <- src + 0`` copies at joins and loop
  boundaries; locally redundant ones disappear here);
* :func:`eliminate_dead_code` -- removes side-effect-free operations
  whose results are never used (global liveness).

All three are *sound*: they commute with the reliability transformation
because the green and blue copies optimize identically -- the foil to the
deliberately unsound cross-color CSE of Section 2.2, which the type
checker rejects.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.instructions import alu_eval
from repro.compiler.ir import (
    CFG,
    IBin,
    IConst,
    ILoad,
    IStore,
    TBranchZero,
    TGoto,
    VReg,
)


def remove_empty_blocks(cfg: CFG) -> None:
    """Drop empty fall-through blocks, redirecting all references."""
    changed = True
    while changed:
        changed = False
        for name in list(cfg.order):
            block = cfg.blocks[name]
            if block.ops or not isinstance(block.terminator, TGoto):
                continue
            target = block.terminator.target
            if target == name:
                continue  # empty self-loop: keep (emits an explicit jump)
            # Redirect every reference from `name` to `target`.
            for other in cfg.iter_blocks():
                terminator = other.terminator
                if isinstance(terminator, TGoto) and terminator.target == name:
                    other.terminator = TGoto(target)
                elif isinstance(terminator, TBranchZero):
                    if_zero = terminator.if_zero
                    if_nonzero = terminator.if_nonzero
                    if if_zero == name or if_nonzero == name:
                        other.terminator = TBranchZero(
                            terminator.cond,
                            target if if_zero == name else if_zero,
                            target if if_nonzero == name else if_nonzero,
                        )
            if cfg.entry == name:
                cfg.entry = target
            del cfg.blocks[name]
            cfg.order.remove(name)
            changed = True
    # The entry block must come first in layout order (it is the boot
    # address); removal above may have promoted another block.
    if cfg.order and cfg.order[0] != cfg.entry:
        cfg.order.remove(cfg.entry)
        cfg.order.insert(0, cfg.entry)


def fold_constants(cfg: CFG) -> int:
    """Forward constant folding within each block.  Returns folds done.

    Tracks registers holding known constants; replaces ``IBin`` whose
    operands are all known with an ``IConst`` of the computed value, and
    propagates constant operands into immediate positions.  Sound: it
    commutes with the reliability transformation because both copies fold
    identically.
    """
    folds = 0
    for block in cfg.iter_blocks():
        known: Dict[VReg, int] = {}
        new_ops = []
        for op in block.ops:
            if isinstance(op, IConst):
                known[op.dst] = op.value
                new_ops.append(op)
                continue
            if isinstance(op, IBin):
                lhs_value = known.get(op.lhs)
                rhs_value = (
                    op.rhs if isinstance(op.rhs, int) else known.get(op.rhs)
                )
                if lhs_value is not None and rhs_value is not None:
                    value = alu_eval(op.op, lhs_value, rhs_value)
                    known[op.dst] = value
                    new_ops.append(IConst(op.dst, value))
                    folds += 1
                    continue
                if isinstance(op.rhs, VReg) and rhs_value is not None:
                    new_ops.append(IBin(op.op, op.dst, op.lhs, rhs_value))
                    known.pop(op.dst, None)
                    folds += 1
                    continue
                known.pop(op.dst, None)
                new_ops.append(op)
                continue
            if isinstance(op, ILoad):
                known.pop(op.dst, None)
            new_ops.append(op)
        block.ops = new_ops
    return folds


def _is_copy(op: IBin) -> bool:
    return isinstance(op, IBin) and op.op == "add" and op.rhs == 0


def propagate_copies(cfg: CFG) -> int:
    """Forward copy propagation within each block.  Returns rewrites done.

    Tracks ``dst <- src`` copies (lowered as ``dst = src + 0``) and
    replaces later uses of ``dst`` by ``src`` until either side is
    redefined.  Copies consumed by other blocks (loop registers, join
    registers) keep their definitions; dead ones fall to
    :func:`eliminate_dead_code`.
    """
    from repro.compiler.ir import TBranchZero

    rewrites = 0
    for block in cfg.iter_blocks():
        alias: Dict[VReg, VReg] = {}

        def resolve(vreg: VReg) -> VReg:
            seen = set()
            while vreg in alias and vreg not in seen:
                seen.add(vreg)
                vreg = alias[vreg]
            return vreg

        def kill(vreg: VReg) -> None:
            alias.pop(vreg, None)
            for key in [k for k, v in alias.items() if v == vreg]:
                alias.pop(key)

        new_ops = []
        for op in block.ops:
            if isinstance(op, IBin):
                lhs = resolve(op.lhs)
                rhs = resolve(op.rhs) if isinstance(op.rhs, VReg) else op.rhs
                if lhs != op.lhs or rhs != op.rhs:
                    rewrites += 1
                op = IBin(op.op, op.dst, lhs, rhs)
                kill(op.dst)
                if _is_copy(op) and op.lhs != op.dst:
                    alias[op.dst] = op.lhs
            elif isinstance(op, ILoad):
                addr = resolve(op.addr)
                if addr != op.addr:
                    rewrites += 1
                op = ILoad(op.dst, addr)
                kill(op.dst)
            elif isinstance(op, IStore):
                addr = resolve(op.addr)
                src = resolve(op.src)
                if addr != op.addr or src != op.src:
                    rewrites += 1
                op = IStore(addr, src)
            elif isinstance(op, IConst):
                kill(op.dst)
            new_ops.append(op)
        block.ops = new_ops
        terminator = block.terminator
        if isinstance(terminator, TBranchZero):
            cond = resolve(terminator.cond)
            if cond != terminator.cond:
                rewrites += 1
                block.terminator = TBranchZero(
                    cond, terminator.if_zero, terminator.if_nonzero
                )
    return rewrites


def eliminate_dead_code(cfg: CFG) -> int:
    """Remove side-effect-free ops whose results are never used.

    Uses global block liveness, iterating to a fixpoint (removing one dead
    op can kill its operands' last uses).  Stores are never removed; loads
    are (their only effect in the fault-free semantics is the value).
    """
    from repro.compiler.ir import op_def, op_uses, terminator_uses
    from repro.compiler.regalloc import block_liveness

    removed_total = 0
    while True:
        _live_in, live_out = block_liveness(cfg)
        removed = 0
        for block in cfg.iter_blocks():
            live = set(live_out[block.name])
            for vreg in terminator_uses(block.terminator):
                live.add(vreg)
            new_ops = []
            for op in reversed(block.ops):
                dst = op_def(op)
                if dst is not None and dst not in live \
                        and not isinstance(op, IStore):
                    removed += 1
                    continue
                if dst is not None:
                    live.discard(dst)
                for vreg in op_uses(op):
                    live.add(vreg)
                new_ops.append(op)
            new_ops.reverse()
            block.ops = new_ops
        removed_total += removed
        if not removed:
            return removed_total
