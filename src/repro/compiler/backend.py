"""Code generation: IR to machine programs.

Two backends share the block layout and register-allocation machinery:

* :func:`emit_baseline` -- the *unprotected* backend: one copy of the
  computation using the plain (uncolored) ISA subset.  This is the
  Figure 10 baseline.  Its output executes and can be timed but is
  rejected by the type checker, exactly as an ordinary binary would be.

* :func:`emit_fault_tolerant` -- the reliability transformation of the
  paper: every computation is duplicated into a green and a blue copy
  (running in disjoint register pools), stores become ``stG``/``stB``
  pairs checked through the store queue, and control flow becomes the
  two-phase announce/commit protocol through the destination register.
  Every block gets a generated precondition (a solved-form static context
  pairing each live value's green and blue copies on a shared expression
  variable), so the emitted program **type-checks** -- the paper's
  compiler-debugging story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.colors import Color, ColoredValue
from repro.core.errors import CompileError
from repro.core.instructions import (
    ArithRRI,
    ArithRRR,
    Bz,
    Halt,
    Instruction,
    Jmp,
    Load,
    Mov,
    PlainBz,
    PlainJmp,
    PlainLoad,
    PlainStore,
    Store,
)
from repro.core.registers import DEST, PC_B, PC_G, gpr
from repro.compiler.frontend import LoweredProgram
from repro.compiler.ir import (
    CFG,
    IBin,
    IConst,
    ILoad,
    IStore,
    TBranchZero,
    TGoto,
    THalt,
    VReg,
)
from repro.compiler.regalloc import allocate, block_liveness
from repro.program import Program
from repro.statics.expressions import IntConst, Var
from repro.statics.kinds import KIND_INT, KIND_MEM, KindContext
from repro.types.syntax import (
    INT,
    CodeType,
    RegAssign,
    RegFileType,
    RegType,
    StaticContext,
)


@dataclass
class CompiledProgram:
    """A machine program plus the block structure the timing model needs."""

    program: Program
    #: Block layout order (label names).
    block_order: List[str]
    #: Label name -> first instruction address.
    block_addresses: Dict[str, int]
    #: Label name -> addresses of its instructions, in order.
    block_bodies: Dict[str, List[int]]
    #: "baseline" or "ft".
    mode: str
    #: The lowering this was produced from (layout, source).
    lowered: LoweredProgram = None

    def instructions_of(self, label: str) -> List[Instruction]:
        return [self.program.code[a] for a in self.block_bodies[label]]


# A pending instruction: concrete, or a mov whose immediate is a label.
@dataclass
class _PendingMov:
    rd: str
    color: Color
    target: str  # label


_Pending = object  # Union[Instruction, _PendingMov]


class _Emitter:
    """Shared two-pass emission: symbolic blocks, then address patching."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.blocks: Dict[str, List[_Pending]] = {}

    def layout(self) -> Tuple[Dict[str, int], int]:
        addresses: Dict[str, int] = {}
        cursor = 1
        for name in self.cfg.order:
            addresses[name] = cursor
            cursor += len(self.blocks[name])
        return addresses, cursor

    def finalize(self, addresses: Dict[str, int]) -> Dict[int, Instruction]:
        code: Dict[int, Instruction] = {}
        for name in self.cfg.order:
            address = addresses[name]
            for pending in self.blocks[name]:
                if isinstance(pending, _PendingMov):
                    code[address] = Mov(
                        pending.rd,
                        ColoredValue(pending.color, addresses[pending.target]),
                    )
                else:
                    code[address] = pending
                address += 1
        return code

    def next_in_layout(self, name: str) -> Optional[str]:
        index = self.cfg.order.index(name)
        if index + 1 < len(self.cfg.order):
            return self.cfg.order[index + 1]
        return None


# ---------------------------------------------------------------------------
# Baseline backend
# ---------------------------------------------------------------------------


def emit_baseline(lowered: LoweredProgram, num_gprs: int = 64) -> CompiledProgram:
    """The unprotected backend (plain ISA, single copy)."""
    from repro.compiler.spill import allocate_with_spilling

    cfg = lowered.cfg
    temp = gpr(num_gprs)
    pool = [gpr(i) for i in range(1, num_gprs)]
    assignment, spill_state = allocate_with_spilling(cfg, pool)

    def reg(vreg: VReg) -> str:
        return assignment[vreg]

    emitter = _Emitter(cfg)
    for block in cfg.iter_blocks():
        out: List[_Pending] = []
        for op in block.ops:
            if isinstance(op, IConst):
                out.append(Mov(reg(op.dst), ColoredValue(Color.GREEN, op.value)))
            elif isinstance(op, IBin):
                if isinstance(op.rhs, VReg):
                    out.append(ArithRRR(op.op, reg(op.dst), reg(op.lhs),
                                        reg(op.rhs)))
                else:
                    out.append(ArithRRI(op.op, reg(op.dst), reg(op.lhs),
                                        ColoredValue(Color.GREEN, op.rhs)))
            elif isinstance(op, ILoad):
                out.append(PlainLoad(reg(op.dst), reg(op.addr)))
            elif isinstance(op, IStore):
                out.append(PlainStore(reg(op.addr), reg(op.src)))
            else:
                raise CompileError(f"unknown IR op {op!r}")
        terminator = block.terminator
        following = emitter.next_in_layout(block.name)
        if isinstance(terminator, THalt):
            out.append(Halt())
        elif isinstance(terminator, TGoto):
            if terminator.target != following:
                out.append(_PendingMov(temp, Color.GREEN, terminator.target))
                out.append(PlainJmp(temp))
        elif isinstance(terminator, TBranchZero):
            out.append(_PendingMov(temp, Color.GREEN, terminator.if_zero))
            out.append(PlainBz(reg(terminator.cond), temp))
            if terminator.if_nonzero != following:
                out.append(_PendingMov(temp, Color.GREEN,
                                       terminator.if_nonzero))
                out.append(PlainJmp(temp))
        else:
            raise CompileError(f"block {block.name} lacks a terminator")
        emitter.blocks[block.name] = out

    addresses, _end = emitter.layout()
    code = emitter.finalize(addresses)
    layout = lowered.layout
    initial_memory = layout.initial_memory(lowered.source)
    observable_min = 0
    if spill_state.slots:
        from repro.compiler.layout import DATA_BASE

        for slot in spill_state.slots:
            initial_memory[slot] = 0
        observable_min = DATA_BASE
    program = Program(
        code=code,
        label_types={},  # untyped: the baseline is outside the fragment
        data_psi={},
        hints={},
        entry=addresses[cfg.entry],
        initial_memory=initial_memory,
        num_gprs=num_gprs,
        labels_by_name=dict(addresses),
        observable_min=observable_min,
    )
    return CompiledProgram(
        program=program,
        block_order=list(cfg.order),
        block_addresses=addresses,
        block_bodies=_block_bodies(emitter, addresses),
        mode="baseline",
        lowered=lowered,
    )


# ---------------------------------------------------------------------------
# Fault-tolerant backend (the reliability transformation)
# ---------------------------------------------------------------------------


def emit_fault_tolerant(
    lowered: LoweredProgram,
    num_gprs: int = 64,
    cross_color_cse: bool = False,
) -> CompiledProgram:
    """The TAL_FT backend: duplicate, check, and annotate with types.

    ``cross_color_cse`` enables the deliberately *unsound* optimization of
    Section 2.2: the blue copies of address/value computations are merged
    with their green counterparts, producing code the type checker rejects
    (and fault injection shows to be silently corruptible).
    """
    from repro.compiler.spill import SpillState, allocate_with_spilling

    cfg = lowered.cfg
    half = num_gprs // 2
    green_temp = gpr(half)
    blue_temp = gpr(num_gprs)
    green_pool = [gpr(i) for i in range(1, half)]
    blue_pool = [gpr(i) for i in range(half + 1, num_gprs)]
    # Green allocation may spill (rewriting the CFG); blue then allocates
    # over the rewritten CFG with an equal-sized pool, so it cannot need
    # further spills -- the loop guards against that invariant breaking.
    spill_state = SpillState()
    while True:
        green_assign, spill_state = allocate_with_spilling(
            cfg, green_pool, spill_state
        )
        slots_before = len(spill_state.slots)
        blue_assign, spill_state = allocate_with_spilling(
            cfg, blue_pool, spill_state
        )
        if len(spill_state.slots) == slots_before:
            break
    live_in, _live_out = block_liveness(cfg)

    def green(vreg: VReg) -> str:
        return green_assign[vreg]

    def blue(vreg: VReg) -> str:
        if cross_color_cse:
            return green_assign[vreg]  # the Section 2.2 bug, on purpose
        return blue_assign[vreg]

    emitter = _Emitter(cfg)
    for block in cfg.iter_blocks():
        out: List[_Pending] = []
        for op in block.ops:
            if isinstance(op, IConst):
                out.append(Mov(green(op.dst),
                               ColoredValue(Color.GREEN, op.value)))
                if not cross_color_cse:
                    out.append(Mov(blue(op.dst),
                                   ColoredValue(Color.BLUE, op.value)))
            elif isinstance(op, IBin):
                if isinstance(op.rhs, VReg):
                    out.append(ArithRRR(op.op, green(op.dst), green(op.lhs),
                                        green(op.rhs)))
                    if not cross_color_cse:
                        out.append(ArithRRR(op.op, blue(op.dst), blue(op.lhs),
                                            blue(op.rhs)))
                else:
                    out.append(ArithRRI(op.op, green(op.dst), green(op.lhs),
                                        ColoredValue(Color.GREEN, op.rhs)))
                    if not cross_color_cse:
                        out.append(ArithRRI(op.op, blue(op.dst), blue(op.lhs),
                                            ColoredValue(Color.BLUE, op.rhs)))
            elif isinstance(op, ILoad):
                out.append(Load(Color.GREEN, green(op.dst), green(op.addr)))
                if not cross_color_cse:
                    out.append(Load(Color.BLUE, blue(op.dst), blue(op.addr)))
            elif isinstance(op, IStore):
                out.append(Store(Color.GREEN, green(op.addr), green(op.src)))
                out.append(Store(Color.BLUE, blue(op.addr), blue(op.src)))
            else:
                raise CompileError(f"unknown IR op {op!r}")
        terminator = block.terminator
        following = emitter.next_in_layout(block.name)
        if isinstance(terminator, THalt):
            out.append(Halt())
        elif isinstance(terminator, TGoto):
            if terminator.target != following:
                out.append(_PendingMov(green_temp, Color.GREEN,
                                       terminator.target))
                out.append(_PendingMov(blue_temp, Color.BLUE,
                                       terminator.target))
                out.append(Jmp(Color.GREEN, green_temp))
                out.append(Jmp(Color.BLUE, blue_temp))
        elif isinstance(terminator, TBranchZero):
            out.append(_PendingMov(green_temp, Color.GREEN,
                                   terminator.if_zero))
            out.append(_PendingMov(blue_temp, Color.BLUE, terminator.if_zero))
            out.append(Bz(Color.GREEN, green(terminator.cond), green_temp))
            out.append(Bz(Color.BLUE, blue(terminator.cond), blue_temp))
            if terminator.if_nonzero != following:
                out.append(_PendingMov(green_temp, Color.GREEN,
                                       terminator.if_nonzero))
                out.append(_PendingMov(blue_temp, Color.BLUE,
                                       terminator.if_nonzero))
                out.append(Jmp(Color.GREEN, green_temp))
                out.append(Jmp(Color.BLUE, blue_temp))
        else:
            raise CompileError(f"block {block.name} lacks a terminator")
        emitter.blocks[block.name] = out

    addresses, _end = emitter.layout()
    code = emitter.finalize(addresses)

    # -- data segment and heap typing ----------------------------------------
    from repro.types.syntax import RefType

    layout = lowered.layout
    initial_memory = layout.initial_memory(lowered.source)
    data_psi = {address: RefType(INT) for address in initial_memory}
    observable_min = 0
    if spill_state.slots:
        from repro.compiler.layout import DATA_BASE

        for slot in spill_state.slots:
            initial_memory[slot] = 0
            data_psi[slot] = RefType(INT)
        observable_min = DATA_BASE

    # -- generated block preconditions ----------------------------------------
    gpr_colors = {name: Color.BLUE for name in blue_pool + [blue_temp]}
    label_types: Dict[int, CodeType] = {}
    for name in cfg.order:
        address = addresses[name]
        if name == cfg.entry:
            context = _entry_context(address, num_gprs, gpr_colors)
        else:
            context = _block_context(
                address, name, live_in[name], green_assign, blue_assign,
                green_pool + [green_temp], blue_pool + [blue_temp],
            )
        label_types[address] = CodeType(context)

    program = Program(
        code=code,
        label_types=label_types,
        data_psi=data_psi,
        hints={},  # solved-form preconditions: the checker infers all substs
        entry=addresses[cfg.entry],
        initial_memory=initial_memory,
        num_gprs=num_gprs,
        labels_by_name=dict(addresses),
        gpr_colors=gpr_colors,
        observable_min=observable_min,
    )
    return CompiledProgram(
        program=program,
        block_order=list(cfg.order),
        block_addresses=addresses,
        block_bodies=_block_bodies(emitter, addresses),
        mode="ft",
        lowered=lowered,
    )


def _entry_context(
    address: int, num_gprs: int, gpr_colors: Dict[str, Color]
) -> StaticContext:
    """Boot precondition: every register zero at its pool color."""
    from repro.types.syntax import make_entry_gamma

    gamma = make_entry_gamma(num_gprs, address, gpr_colors)
    return StaticContext(
        delta=KindContext({"m0": KIND_MEM}),
        gamma=gamma,
        queue=(),
        mem=Var("m0"),
    )


def _block_context(
    address: int,
    name: str,
    live_in: Set[VReg],
    green_assign: Dict[VReg, str],
    blue_assign: Dict[VReg, str],
    green_regs: Sequence[str],
    blue_regs: Sequence[str],
) -> StaticContext:
    """The solved-form precondition of an interior block.

    Each live value's green and blue registers share one expression
    variable -- the formal statement that the two copies agree; every other
    register is generalized with its own fresh variable.
    """
    bindings: Dict[str, object] = {f"m_{name}": KIND_MEM}
    assigns: Dict[str, RegAssign] = {
        PC_G: RegType(Color.GREEN, INT, IntConst(address)),
        PC_B: RegType(Color.BLUE, INT, IntConst(address)),
        DEST: RegType(Color.GREEN, INT, IntConst(0)),
    }
    live_green: Dict[str, str] = {}
    live_blue: Dict[str, str] = {}
    for vreg in sorted(live_in, key=lambda v: v.index):
        var_name = f"x{vreg.index}"
        bindings[var_name] = KIND_INT
        live_green[green_assign[vreg]] = var_name
        live_blue[blue_assign[vreg]] = var_name
    for reg in green_regs:
        var_name = live_green.get(reg)
        if var_name is None:
            var_name = f"ug_{reg}"
            bindings[var_name] = KIND_INT
        assigns[reg] = RegType(Color.GREEN, INT, Var(var_name))
    for reg in blue_regs:
        var_name = live_blue.get(reg)
        if var_name is None:
            var_name = f"ub_{reg}"
            bindings[var_name] = KIND_INT
        assigns[reg] = RegType(Color.BLUE, INT, Var(var_name))
    return StaticContext(
        delta=KindContext(bindings),  # type: ignore[arg-type]
        gamma=RegFileType(assigns),
        queue=(),
        mem=Var(f"m_{name}"),
    )


def _block_bodies(
    emitter: _Emitter, addresses: Dict[str, int]
) -> Dict[str, List[int]]:
    bodies: Dict[str, List[int]] = {}
    for name, pendings in emitter.blocks.items():
        start = addresses[name]
        bodies[name] = list(range(start, start + len(pendings)))
    return bodies
